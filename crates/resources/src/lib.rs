//! FPGA resource-usage model for the StRoM NIC.
//!
//! Reproduces the resource numbers of the paper analytically:
//!
//! - **Table 3** — StRoM on the VCU118 (XCVU9P): 92 K LUTs / 181 BRAMs /
//!   115 K FFs at 10 G versus 122 K / 402 / 214 K at 100 G, for 500 QPs.
//! - **§6.1** — on the 7VX690T, the 10 G design uses 24 % of logic and
//!   9 % of on-chip memory at 500 QPs; growing to 16,000 QPs costs less
//!   than 1 % more logic but raises BRAM usage to 20 %.
//! - **§7.1** — "the numbers of used on-chip memory and registers have
//!   doubled, while the logic consumption has increased by 32 %" from
//!   10 G to 100 G, because widening the datapath 8× doubles buffers and
//!   registers but leaves the state structures and TLB untouched.
//!
//! The model is a per-module cost table (MAC, RoCE pipelines, DMA engine,
//! TLB, Controller, StRoM arbitration) with three scaling inputs: datapath
//! width (buffers and pipeline registers), queue-pair count (state tables,
//! ~66 B of BRAM state per QP), and TLB entries (48-bit physical address
//! each). Module constants are calibrated against Table 3; device factors
//! capture the older Virtex-7 toolchain/packing differences.

pub mod device;
pub mod model;

pub use device::Device;
pub use model::{DesignConfig, ResourceModel, Usage};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_10g_on_vcu118() {
        let u = ResourceModel::new().estimate(&DesignConfig::ten_gig(), Device::xcvu9p());
        // Paper: 92 K LUTs (7.8 %), 181 BRAM (8.4 %), 115 K FFs (4.8 %).
        assert!(
            (u.luts as f64 - 92_000.0).abs() / 92_000.0 < 0.02,
            "luts = {}",
            u.luts
        );
        assert!(
            (u.bram36 as f64 - 181.0).abs() / 181.0 < 0.02,
            "bram = {}",
            u.bram36
        );
        assert!(
            (u.ffs as f64 - 115_000.0).abs() / 115_000.0 < 0.02,
            "ffs = {}",
            u.ffs
        );
        assert!((u.lut_fraction - 0.078).abs() < 0.005);
        assert!((u.bram_fraction - 0.084).abs() < 0.005);
        assert!((u.ff_fraction - 0.048).abs() < 0.005);
    }

    #[test]
    fn table3_100g_on_vcu118() {
        let u = ResourceModel::new().estimate(&DesignConfig::hundred_gig(), Device::xcvu9p());
        // Paper: 122 K LUTs (10.3 %), 402 BRAM (18.6 %), 214 K FFs (9.1 %).
        assert!(
            (u.luts as f64 - 122_000.0).abs() / 122_000.0 < 0.02,
            "luts = {}",
            u.luts
        );
        assert!(
            (u.bram36 as f64 - 402.0).abs() / 402.0 < 0.02,
            "bram = {}",
            u.bram36
        );
        assert!(
            (u.ffs as f64 - 214_000.0).abs() / 214_000.0 < 0.02,
            "ffs = {}",
            u.ffs
        );
    }

    #[test]
    fn section71_scaling_claims() {
        // "on-chip memory and registers have doubled, while the logic
        // consumption has increased by 32 %".
        let m = ResourceModel::new();
        let u10 = m.estimate(&DesignConfig::ten_gig(), Device::xcvu9p());
        let u100 = m.estimate(&DesignConfig::hundred_gig(), Device::xcvu9p());
        let lut_growth = u100.luts as f64 / u10.luts as f64;
        let bram_growth = u100.bram36 as f64 / u10.bram36 as f64;
        let ff_growth = u100.ffs as f64 / u10.ffs as f64;
        assert!(
            (1.28..1.38).contains(&lut_growth),
            "lut growth = {lut_growth}"
        );
        assert!(
            (1.9..2.4).contains(&bram_growth),
            "bram growth = {bram_growth}"
        );
        assert!((1.75..2.05).contains(&ff_growth), "ff growth = {ff_growth}");
    }

    #[test]
    fn section61_virtex7_percentages() {
        // "uses only 24% of the available logic resources … For 500 queue
        // pairs (QPs) 9% of the on-chip memory is occupied."
        let u = ResourceModel::new().estimate(&DesignConfig::ten_gig(), Device::xc7vx690t());
        assert!(
            (u.lut_fraction - 0.24).abs() < 0.015,
            "logic = {}",
            u.lut_fraction
        );
        assert!(
            (u.bram_fraction - 0.09).abs() < 0.01,
            "bram = {}",
            u.bram_fraction
        );
    }

    #[test]
    fn section61_qp_scaling() {
        // "the logic resource usage stays within 1% when going from 500 to
        // 16,000 QPs, the on-chip memory usage on the other hand increases
        // to 20%".
        let m = ResourceModel::new();
        let small = m.estimate(&DesignConfig::ten_gig(), Device::xc7vx690t());
        let mut big_cfg = DesignConfig::ten_gig();
        big_cfg.num_qps = 16_000;
        let big = m.estimate(&big_cfg, Device::xc7vx690t());
        assert!(
            big.lut_fraction - small.lut_fraction < 0.01,
            "logic grew by {}",
            big.lut_fraction - small.lut_fraction
        );
        assert!(
            (big.bram_fraction - 0.20).abs() < 0.015,
            "bram = {}",
            big.bram_fraction
        );
    }
}
