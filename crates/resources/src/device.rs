//! The FPGA devices used in the paper, with their resource capacities.

/// An FPGA device's resource capacities (and the calibration factors that
/// capture toolchain/packing differences between device families).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Marketing name, e.g. "XCVU9P (VCU118)".
    pub name: &'static str,
    /// Available LUTs.
    pub luts: u64,
    /// Available flip-flops.
    pub ffs: u64,
    /// Available 36 Kb block RAMs.
    pub bram36: u64,
    /// LUT inflation factor of this device's toolchain relative to the
    /// UltraScale+ baseline the model is calibrated on.
    pub lut_factor: f64,
    /// FF inflation factor.
    pub ff_factor: f64,
    /// BRAM packing factor (how many baseline BRAM equivalents one of
    /// this device's BRAMs absorbs).
    pub bram_factor: f64,
}

impl Device {
    /// Xilinx UltraScale+ XCVU9P on the VCU118 board — the 100 G platform
    /// and the common device of Table 3 (§7.1: "To have a fair resource
    /// comparison … we compare the StRoM 100 G implementation on VCU118
    /// with the StRoM 10 G implementation for the same FPGA").
    pub fn xcvu9p() -> Self {
        Device {
            name: "XCVU9P (VCU118)",
            luts: 1_182_240,
            ffs: 2_364_480,
            bram36: 2_160,
            lut_factor: 1.0,
            ff_factor: 1.0,
            bram_factor: 1.0,
        }
    }

    /// Xilinx Virtex-7 XC7VX690T on the Alpha Data ADM-PCIE-7V3 — the
    /// 10 G prototype platform (§6.1). The older 7-series toolchain maps
    /// the same RTL to ~13 % more LUTs, while its BRAM packing absorbs
    /// the design into fewer RAMB36 blocks (calibrated against §6.1's
    /// 24 % logic / 9 % BRAM at 500 QPs).
    pub fn xc7vx690t() -> Self {
        Device {
            name: "XC7VX690T (ADM-PCIE-7V3)",
            luts: 433_200,
            ffs: 866_400,
            bram36: 1_470,
            lut_factor: 1.13,
            ff_factor: 1.10,
            bram_factor: 0.73,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_are_the_published_ones() {
        let vu = Device::xcvu9p();
        assert_eq!(vu.luts, 1_182_240);
        assert_eq!(vu.bram36, 2_160);
        let v7 = Device::xc7vx690t();
        assert_eq!(v7.luts, 433_200);
        assert_eq!(v7.bram36, 1_470);
    }

    #[test]
    fn ultrascale_is_the_calibration_baseline() {
        let vu = Device::xcvu9p();
        assert_eq!(vu.lut_factor, 1.0);
        assert_eq!(vu.bram_factor, 1.0);
    }
}
