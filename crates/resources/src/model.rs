//! The per-module cost model.

use crate::device::Device;

/// The design parameters that drive resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignConfig {
    /// Datapath width in bytes (8 at 10 G, 64 at 100 G).
    pub datapath_bytes: u64,
    /// Number of supported queue pairs (a compile-time parameter, §4.1).
    pub num_qps: u64,
    /// TLB entries (16,384 default, §4.2).
    pub tlb_entries: u64,
}

impl DesignConfig {
    /// The 10 G design point of Table 3 (500 QPs).
    pub fn ten_gig() -> Self {
        DesignConfig {
            datapath_bytes: 8,
            num_qps: 500,
            tlb_entries: 16_384,
        }
    }

    /// The 100 G design point of Table 3 (500 QPs).
    pub fn hundred_gig() -> Self {
        DesignConfig {
            datapath_bytes: 64,
            num_qps: 500,
            tlb_entries: 16_384,
        }
    }
}

/// Estimated usage on a concrete device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Usage {
    /// LUTs consumed.
    pub luts: u64,
    /// Flip-flops consumed.
    pub ffs: u64,
    /// RAMB36 blocks consumed.
    pub bram36: u64,
    /// Fraction of the device's LUTs.
    pub lut_fraction: f64,
    /// Fraction of the device's FFs.
    pub ff_fraction: f64,
    /// Fraction of the device's BRAMs.
    pub bram_fraction: f64,
}

/// One module's cost: a base plus width- and QP-proportional terms.
#[derive(Debug, Clone, Copy)]
pub struct ModuleCost {
    /// Module name for breakdowns.
    pub name: &'static str,
    /// Base LUTs (at the 8 B datapath).
    pub lut_base: f64,
    /// Extra LUTs per datapath byte beyond 8.
    pub lut_per_width_byte: f64,
    /// Base FFs.
    pub ff_base: f64,
    /// Extra FFs per datapath byte beyond 8.
    pub ff_per_width_byte: f64,
    /// Base BRAMs.
    pub bram_base: f64,
    /// Extra BRAMs per datapath byte beyond 8 (wider FIFOs/buffers).
    pub bram_per_width_byte: f64,
}

/// The resource model: module table plus per-QP and per-TLB-entry state.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    modules: Vec<ModuleCost>,
    /// BRAM bits of state per queue pair: State Table (PSN windows for
    /// both roles), MSN Table, Retransmission Timer, Multi-Queue metadata
    /// — roughly 66 B per QP.
    bram_bits_per_qp: f64,
    /// LUTs per queue pair (address decoding grows slowly).
    luts_per_qp: f64,
    /// Bits per TLB entry (one 48-bit physical address, §4.2).
    bits_per_tlb_entry: f64,
}

/// Bits per RAMB36.
const BRAM_BITS: f64 = 36_864.0;

impl Default for ResourceModel {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceModel {
    /// The model calibrated against Table 3 (VCU118, 500 QPs).
    pub fn new() -> Self {
        // Module constants in LUTs/FFs (absolute) and BRAMs, fitted so the
        // totals land on Table 3; the split across modules follows the
        // paper's description (the MAC and the RoCE pipelines scale with
        // datapath width; the TLB and Controller do not, §7.1).
        let modules = vec![
            ModuleCost {
                name: "ethernet-mac",
                lut_base: 14_000.0,
                lut_per_width_byte: 107.0,
                ff_base: 18_000.0,
                ff_per_width_byte: 286.0,
                bram_base: 18.0,
                bram_per_width_byte: 0.55,
            },
            ModuleCost {
                name: "roce-rx-pipeline",
                lut_base: 22_000.0,
                lut_per_width_byte: 178.0,
                ff_base: 28_000.0,
                ff_per_width_byte: 500.0,
                bram_base: 58.0,
                bram_per_width_byte: 1.60,
            },
            ModuleCost {
                name: "roce-tx-pipeline",
                lut_base: 18_000.0,
                lut_per_width_byte: 143.0,
                ff_base: 22_000.0,
                ff_per_width_byte: 393.0,
                bram_base: 46.0,
                bram_per_width_byte: 1.20,
            },
            ModuleCost {
                name: "dma-engine",
                lut_base: 20_000.0,
                lut_per_width_byte: 36.0,
                ff_base: 28_000.0,
                ff_per_width_byte: 214.0,
                bram_base: 26.0,
                bram_per_width_byte: 0.63,
            },
            ModuleCost {
                name: "controller",
                lut_base: 4_000.0,
                lut_per_width_byte: 0.0,
                ff_base: 5_000.0,
                ff_per_width_byte: 18.0,
                bram_base: 2.0,
                bram_per_width_byte: 0.0,
            },
            ModuleCost {
                name: "strom-arbitration",
                lut_base: 8_000.0,
                lut_per_width_byte: 71.0,
                ff_base: 6_000.0,
                ff_per_width_byte: 321.0,
                bram_base: 2.0,
                bram_per_width_byte: 0.0,
            },
            ModuleCost {
                name: "tlb",
                lut_base: 6_000.0,
                lut_per_width_byte: 0.0,
                ff_base: 8_000.0,
                ff_per_width_byte: 36.0,
                bram_base: 0.0, // Counted via bits_per_tlb_entry.
                bram_per_width_byte: 0.0,
            },
        ];
        Self {
            modules,
            bram_bits_per_qp: 527.0,
            luts_per_qp: 0.2,
            bits_per_tlb_entry: 48.0,
        }
    }

    /// The per-module cost table (for breakdown reports).
    pub fn modules(&self) -> &[ModuleCost] {
        &self.modules
    }

    /// Estimates the NIC's usage for `cfg` on `device`.
    pub fn estimate(&self, cfg: &DesignConfig, device: Device) -> Usage {
        let dw = (cfg.datapath_bytes.saturating_sub(8)) as f64;
        let mut luts = 0.0;
        let mut ffs = 0.0;
        let mut bram = 0.0;
        for m in &self.modules {
            luts += m.lut_base + m.lut_per_width_byte * dw;
            ffs += m.ff_base + m.ff_per_width_byte * dw;
            bram += m.bram_base + m.bram_per_width_byte * dw;
        }
        luts += self.luts_per_qp * cfg.num_qps as f64;
        bram += self.bram_bits_per_qp * cfg.num_qps as f64 / BRAM_BITS;
        bram += (self.bits_per_tlb_entry * cfg.tlb_entries as f64 / BRAM_BITS).ceil();

        let luts = (luts * device.lut_factor).round() as u64;
        let ffs = (ffs * device.ff_factor).round() as u64;
        let bram36 = (bram * device.bram_factor).ceil() as u64;
        Usage {
            luts,
            ffs,
            bram36,
            lut_fraction: luts as f64 / device.luts as f64,
            ff_fraction: ffs as f64 / device.ffs as f64,
            bram_fraction: bram36 as f64 / device.bram36 as f64,
        }
    }

    /// Estimates the extra resources a kernel with `state_bits` of on-chip
    /// state and roughly `relative_logic` of the RoCE stack's logic needs
    /// — used to check that kernels fit next to the NIC (§3.4's first
    /// condition).
    pub fn kernel_overhead(&self, state_bits: u64, relative_logic: f64) -> (u64, u64) {
        let luts = (40_000.0 * relative_logic).round() as u64;
        let brams = (state_bits as f64 / BRAM_BITS).ceil() as u64;
        (luts, brams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_growth_is_monotone() {
        let m = ResourceModel::new();
        let d = Device::xcvu9p();
        let mut prev = 0u64;
        for w in [8u64, 16, 32, 64] {
            let u = m.estimate(
                &DesignConfig {
                    datapath_bytes: w,
                    num_qps: 500,
                    tlb_entries: 16_384,
                },
                d,
            );
            assert!(u.luts > prev, "width {w}");
            prev = u.luts;
        }
    }

    #[test]
    fn tlb_contributes_22_brams() {
        // 16,384 entries × 48 bits = 786 Kb → 22 RAMB36 (§4.2's 32 GB).
        let m = ResourceModel::new();
        let d = Device::xcvu9p();
        let with = m.estimate(&DesignConfig::ten_gig(), d);
        let without = m.estimate(
            &DesignConfig {
                tlb_entries: 0,
                ..DesignConfig::ten_gig()
            },
            d,
        );
        assert_eq!(with.bram36 - without.bram36, 22);
    }

    #[test]
    fn qp_state_is_about_66_bytes() {
        let m = ResourceModel::new();
        assert!((500.0..560.0).contains(&m.bram_bits_per_qp));
    }

    #[test]
    fn kernel_overhead_is_additive() {
        let m = ResourceModel::new();
        // The HLL kernel: 16,384 registers × 6 bits ≈ 3 BRAMs.
        let (luts, brams) = m.kernel_overhead(16_384 * 6, 0.15);
        assert_eq!(brams, 3);
        assert!(luts > 0);
        // The whole NIC + a couple of kernels still fits a mid-range
        // device with room to spare ("allowing the deployment of multiple
        // StRoM kernels", §6.1).
        let u = m.estimate(&DesignConfig::ten_gig(), Device::xc7vx690t());
        assert!(u.lut_fraction + 4.0 * luts as f64 / 433_200.0 < 0.6);
    }

    #[test]
    fn module_breakdown_sums_to_total() {
        let m = ResourceModel::new();
        let d = Device::xcvu9p();
        let cfg = DesignConfig::ten_gig();
        let total = m.estimate(&cfg, d);
        let module_luts: f64 = m.modules().iter().map(|x| x.lut_base).sum();
        assert!(module_luts as u64 <= total.luts);
    }
}
