//! Multi-threaded CPU HyperLogLog — the Fig 13a baseline.
//!
//! §7.2 runs an "optimized (AVX2), multi-threaded CPU only implementation"
//! on an i7-7700 (4 cores / 8 SMT threads) while StRoM streams data into
//! memory, measuring 4.64 / 9.28 / 18.40 / 24.40 Gbit/s at 1 / 2 / 4 / 8
//! threads. The computation "is memory bound as it uses a hash table to
//! approximate how many times it sees an item, inducing many random memory
//! accesses", and it competes with the NIC's DMA writes for memory.
//!
//! Two artifacts live here:
//!
//! - [`parallel_hll`]: a real multi-threaded implementation (shared-
//!   nothing per-thread sketches merged at the end, on std scoped
//!   threads) used for functional verification and the benchmarks;
//! - [`CpuHllModel`]: the calibrated timing model of the paper's numbers —
//!   linear scaling across the 4 physical cores plus a ~33 % SMT bonus,
//!   with each item costing one dependent DRAM access.

use strom_kernels::hll::HyperLogLog;
use strom_sim::time::TimeDelta;

/// Timing model of the paper's CPU HLL throughput.
#[derive(Debug, Clone, Copy)]
pub struct CpuHllModel {
    /// Per-8-byte-item cost on one thread, in picoseconds. 13,790 ps ≈
    /// one dependent random DRAM access ⇒ 4.64 Gbit/s per thread — the
    /// paper's single-thread measurement.
    pub per_item_ps: TimeDelta,
    /// Physical cores (4 on the i7-7700).
    pub physical_cores: u32,
    /// Speedup factor from running two SMT threads per core (Fig 13a:
    /// 24.40 / 18.40 ≈ 1.33).
    pub smt_factor: f64,
}

impl Default for CpuHllModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuHllModel {
    /// The calibrated i7-7700 model.
    pub fn new() -> Self {
        CpuHllModel {
            per_item_ps: 13_790,
            physical_cores: 4,
            smt_factor: 1.326,
        }
    }

    /// Single-thread throughput in Gbit/s over 8 B items.
    pub fn single_thread_gbps(&self) -> f64 {
        64.0 / (self.per_item_ps as f64 / 1000.0) // bits per ns = Gbit/s.
    }

    /// Modeled throughput at `threads` threads, in Gbit/s.
    pub fn throughput_gbps(&self, threads: u32) -> f64 {
        let base = self.single_thread_gbps();
        let cores = threads.min(self.physical_cores) as f64;
        if threads <= self.physical_cores {
            base * threads as f64
        } else {
            // Beyond the physical cores, SMT adds a sublinear bonus,
            // interpolated up to 2 threads per core.
            let extra = (threads - self.physical_cores) as f64 / self.physical_cores as f64;
            base * cores * (1.0 + (self.smt_factor - 1.0) * extra.min(1.0))
        }
    }

    /// Modeled time to digest `bytes` of 8 B items with `threads` threads.
    pub fn digest_time(&self, bytes: u64, threads: u32) -> TimeDelta {
        let gbps = self.throughput_gbps(threads);
        ((bytes as f64 * 8.0 / gbps) * 1000.0) as TimeDelta // ps.
    }
}

/// Computes HLL over `data` (little-endian 8 B items) with `threads`
/// worker threads: shard the buffer, sketch privately, merge — the
/// shared-nothing structure an optimized CPU implementation uses.
///
/// Returns the merged sketch.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn parallel_hll(data: &[u8], threads: usize, precision: u8) -> HyperLogLog {
    assert!(threads > 0, "need at least one thread");
    let items = data.len() / 8;
    if threads == 1 || items < threads * 1024 {
        let mut sketch = HyperLogLog::new(precision);
        for chunk in data[..items * 8].chunks_exact(8) {
            sketch.add_item(chunk.try_into().expect("sized"));
        }
        return sketch;
    }
    let per_thread = items.div_ceil(threads);
    let sketches = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = (t * per_thread).min(items);
            let end = ((t + 1) * per_thread).min(items);
            let shard = &data[start * 8..end * 8];
            handles.push(s.spawn(move || {
                let mut sketch = HyperLogLog::new(precision);
                for chunk in shard.chunks_exact(8) {
                    sketch.add_item(chunk.try_into().expect("sized"));
                }
                sketch
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut merged = HyperLogLog::new(precision);
    for s in &sketches {
        merged.merge(s);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64) -> Vec<u8> {
        (0..n).flat_map(|i| i.to_le_bytes()).collect()
    }

    #[test]
    fn model_reproduces_fig_13a() {
        let m = CpuHllModel::new();
        let points = [(1u32, 4.64f64), (2, 9.28), (4, 18.40), (8, 24.40)];
        for (threads, paper) in points {
            let got = m.throughput_gbps(threads);
            let err = (got - paper).abs() / paper;
            assert!(
                err < 0.05,
                "{threads} threads: model {got:.2} vs paper {paper} Gbit/s"
            );
        }
    }

    #[test]
    fn model_never_reaches_line_rate() {
        // The Fig 13 takeaway: even 8 threads stay far below 100 Gbit/s.
        let m = CpuHllModel::new();
        assert!(m.throughput_gbps(8) < 30.0);
    }

    #[test]
    fn digest_time_inverts_throughput() {
        let m = CpuHllModel::new();
        let t = m.digest_time(1 << 30, 4);
        let secs = t as f64 / 1e12;
        let gbps = (1u64 << 30) as f64 * 8.0 / 1e9 / secs;
        assert!((gbps - m.throughput_gbps(4)).abs() < 0.1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = items(200_000);
        let seq = parallel_hll(&data, 1, 12);
        let par = parallel_hll(&data, 8, 12);
        assert_eq!(
            seq.estimate(),
            par.estimate(),
            "sharding + merge must not change the sketch"
        );
    }

    #[test]
    fn estimates_are_accurate() {
        let n = 500_000u64;
        let data = items(n);
        let sketch = parallel_hll(&data, 4, 14);
        let e = sketch.estimate();
        let rel = (e - n as f64).abs() / n as f64;
        assert!(rel < 0.04, "estimate = {e} for n = {n}");
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let data = items(100);
        let sketch = parallel_hll(&data, 8, 10);
        assert!((sketch.estimate() - 100.0).abs() < 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = parallel_hll(&[], 0, 10);
    }
}
