//! Client-driven remote data-structure access over one-sided RDMA READs.
//!
//! This is the access pattern of Pilaf \[36\] and FaRM \[13\] the paper uses
//! as its main baseline: the client issues an RDMA READ per pointer hop,
//! parses the element locally, and issues the next READ — "each traversal
//! involves a network round trip resulting in a linear increase of the
//! latency with the length of the list" (§6.2).
//!
//! All helpers run against the simulated [`Testbed`] so baseline and
//! StRoM numbers come from the same wire, PCIe, and host-cost models.

use strom_kernels::layouts::{ht_layout, ELEMENT_SIZE};
use strom_nic::{Testbed, WorkRequest};
use strom_sim::time::Time;
use strom_wire::bth::Qpn;

/// A one-sided client bound to a testbed node, with a scratch buffer for
/// landing READ responses.
pub struct OneSidedClient {
    /// Client node id.
    pub node: usize,
    /// Queue pair used for all operations.
    pub qpn: Qpn,
    /// Scratch buffer base (pinned on the client).
    scratch: u64,
    /// Rotating offset within the scratch buffer so each READ gets a
    /// fresh watch window.
    cursor: u64,
    /// Scratch size.
    scratch_len: u64,
}

impl OneSidedClient {
    /// Creates a client; `scratch` must be pinned memory of `scratch_len`
    /// bytes on `node`.
    pub fn new(node: usize, qpn: Qpn, scratch: u64, scratch_len: u64) -> Self {
        Self {
            node,
            qpn,
            scratch,
            cursor: 0,
            scratch_len,
        }
    }

    fn next_slot(&mut self, len: u64) -> u64 {
        if self.cursor + len > self.scratch_len {
            self.cursor = 0;
        }
        let addr = self.scratch + self.cursor;
        // Keep slots 64 B aligned to mirror real completion buffers.
        self.cursor += len.div_ceil(64) * 64;
        addr
    }

    /// Issues one blocking RDMA READ; returns `(bytes, completion_time)`.
    pub fn read_blocking(
        &mut self,
        tb: &mut Testbed,
        remote_vaddr: u64,
        len: u32,
    ) -> (Vec<u8>, Time) {
        let slot = self.next_slot(u64::from(len));
        let watch = tb.add_watch(self.node, slot, u64::from(len));
        tb.post(
            self.node,
            self.qpn,
            WorkRequest::Read {
                remote_vaddr,
                local_vaddr: slot,
                len,
            },
        );
        let t = tb.run_until_watch(watch);
        (tb.mem(self.node).read(slot, len as usize), t)
    }

    /// Linked-list lookup via repeated READs (Fig 7's "RDMA READ" line):
    /// one round trip per element plus one for the value.
    ///
    /// Returns `(value_bytes, end_time, round_trips)`; the value is empty
    /// if the key was not found.
    pub fn list_lookup(
        &mut self,
        tb: &mut Testbed,
        head: u64,
        key: u64,
        value_size: u32,
    ) -> (Vec<u8>, Time, u32) {
        let mut addr = head;
        let mut rtts = 0;
        loop {
            let (elem, _) = self.read_blocking(tb, addr, ELEMENT_SIZE as u32);
            rtts += 1;
            let elem_key = u64::from_le_bytes(elem[0..8].try_into().expect("sized"));
            let next = u64::from_le_bytes(elem[8..16].try_into().expect("sized"));
            let value_ptr = u64::from_le_bytes(elem[16..24].try_into().expect("sized"));
            if elem_key == key {
                let (value, t) = self.read_blocking(tb, value_ptr, value_size);
                return (value, t, rtts + 1);
            }
            if next == 0 {
                return (Vec::new(), tb.now(), rtts);
            }
            addr = next;
        }
    }

    /// Hash-table GET via two READs (Fig 8's "RDMA READ" line, best case):
    /// entry, then value.
    ///
    /// Returns `(value_bytes, end_time)`; empty if the key missed.
    pub fn hash_table_get(
        &mut self,
        tb: &mut Testbed,
        entry_addr: u64,
        key: u64,
    ) -> (Vec<u8>, Time) {
        let (entry, _) = self.read_blocking(tb, entry_addr, ELEMENT_SIZE as u32);
        for pos in ht_layout::BUCKET_KEY_POS {
            let off = usize::from(pos) * 4;
            let k = u64::from_le_bytes(entry[off..off + 8].try_into().expect("sized"));
            if k == key {
                let ptr = u64::from_le_bytes(entry[off + 8..off + 16].try_into().expect("sized"));
                let len = u32::from_le_bytes(entry[off + 16..off + 20].try_into().expect("sized"));
                let (value, t) = self.read_blocking(tb, ptr, len);
                return (value, t);
            }
        }
        (Vec::new(), tb.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_kernels::layouts::{build_hash_table, build_linked_list, value_pattern};
    use strom_nic::NicConfig;
    use strom_sim::time::MICROS;

    fn setup() -> (Testbed, OneSidedClient, u64) {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(1);
        let scratch = tb.pin(0, 1 << 20);
        let server = tb.pin(1, 1 << 20);
        (tb, OneSidedClient::new(0, 1, scratch, 1 << 20), server)
    }

    #[test]
    fn list_lookup_pays_one_rtt_per_element() {
        let (mut tb, mut client, server) = setup();
        let keys: Vec<u64> = (1..=8).map(|i| i * 11).collect();
        let list = build_linked_list(tb.mem(1), server, &keys, 64);
        // Key at position 5 (0-based 4): 5 element reads + 1 value read.
        let t0 = tb.now();
        let (value, t1, rtts) = client.list_lookup(&mut tb, list.head, 55, 64);
        assert_eq!(value, value_pattern(55, 64));
        assert_eq!(rtts, 6);
        let us = (t1 - t0) as f64 / MICROS as f64;
        // 6 round trips at ~4-6 µs each.
        assert!((20.0..40.0).contains(&us), "lookup = {us} µs");
        tb.run_until_idle();
    }

    #[test]
    fn latency_is_linear_in_list_position() {
        let (mut tb, mut client, server) = setup();
        let keys: Vec<u64> = (1..=16).map(|i| i * 3).collect();
        let list = build_linked_list(tb.mem(1), server, &keys, 64);
        let t0 = tb.now();
        let (_, t1, _) = client.list_lookup(&mut tb, list.head, 3, 64);
        let first = t1 - t0;
        let (_, t2, _) = client.list_lookup(&mut tb, list.head, 48, 64);
        let last = t2 - t1;
        // Position 16 costs ~16/2 the round trips of position 1 (2 vs 17).
        let ratio = last as f64 / first as f64;
        assert!((5.0..12.0).contains(&ratio), "ratio = {ratio}");
        tb.run_until_idle();
    }

    #[test]
    fn missing_key_traverses_the_whole_list() {
        let (mut tb, mut client, server) = setup();
        let list = build_linked_list(tb.mem(1), server, &[1, 2, 3], 64);
        let (value, _, rtts) = client.list_lookup(&mut tb, list.head, 42, 64);
        assert!(value.is_empty());
        assert_eq!(rtts, 3);
        tb.run_until_idle();
    }

    #[test]
    fn hash_get_is_two_round_trips() {
        let (mut tb, mut client, server) = setup();
        let keys: Vec<u64> = (1..=10).collect();
        let ht = build_hash_table(tb.mem(1), server, 256, &keys, 48);
        for &key in &keys {
            let (value, _) = client.hash_table_get(&mut tb, ht.entry_addr(key), key);
            assert_eq!(value, value_pattern(key, 48), "key {key}");
        }
        tb.run_until_idle();
    }

    #[test]
    fn hash_miss_returns_empty() {
        let (mut tb, mut client, server) = setup();
        let ht = build_hash_table(tb.mem(1), server, 64, &[7, 8], 16);
        let (value, _) = client.hash_table_get(&mut tb, ht.entry_addr(12345), 12345);
        assert!(value.is_empty());
        tb.run_until_idle();
    }

    #[test]
    fn scratch_cursor_wraps() {
        let (mut tb, mut client, server) = setup();
        tb.mem(1).write(server, &[42u8; 256]);
        // Many reads must not run off the end of the scratch region.
        for _ in 0..5000 {
            let (data, _) = client.read_blocking(&mut tb, server, 256);
            assert_eq!(data, vec![42u8; 256]);
        }
        tb.run_until_idle();
    }
}
