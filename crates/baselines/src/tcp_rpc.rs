//! The rpcgen-style TCP RPC baseline (§6.2).
//!
//! "As an additional baseline, we use the rpcgen compiler \[11\] to generate
//! RPCs that can be invoked over TCP on the remote machine. In the case of
//! an RPC the remote CPU is traversing the linked list. … the latency of
//! the TCP-based RPC implementation does not vary when increasing the
//! length of list, as the remote function invocation dominates the overall
//! cost while the actual list traversal on the CPU is faster than that
//! over the PCIe link" (Fig 7), and it "suffers from long message passing
//! latency for value sizes larger than 256 B" (Fig 8).
//!
//! The model charges: a fixed invocation round trip (kernel TCP stacks,
//! socket wakeups, rpcgen marshalling on both ends), a per-byte response
//! cost (TCP copies through the socket on both sides plus wire time), and
//! the *real* server-side traversal at DRAM latency (~80 ns per pointer
//! hop, §6.2 footnote 7). The traversal itself executes functionally
//! against the server's host memory.

use strom_kernels::layouts::{ht_layout, ELEMENT_SIZE};
use strom_mem::HostMemory;
use strom_sim::time::{Time, TimeDelta, MICROS, NANOS};

/// Per-request CPU occupancy of the server's RPC loop: recv syscall,
/// demarshal, the lookup itself, marshal, send syscall. Unlike the wire
/// round trip — which pipelines across concurrent requests — this
/// *serializes* on the server core, so it is what saturates an
/// open-loop TCP tier (~500 krps per core).
pub const SERVER_CPU_OCCUPANCY: TimeDelta = 2 * MICROS;

/// Timing constants of the TCP RPC path.
#[derive(Debug, Clone, Copy)]
pub struct TcpRpcModel {
    /// Fixed invocation round trip: syscalls, TCP/IP stacks, socket
    /// wakeup, and rpcgen (de)marshalling on both ends.
    pub base_rtt: TimeDelta,
    /// Per-byte cost of moving response payload through both TCP stacks
    /// and the wire.
    pub per_byte: TimeDelta,
    /// CPU DRAM latency per dependent pointer dereference (~80 ns,
    /// footnote 7).
    pub mem_latency: TimeDelta,
}

impl Default for TcpRpcModel {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpRpcModel {
    /// The calibrated model for the paper's 10 GbE testbed.
    pub fn new() -> Self {
        TcpRpcModel {
            base_rtt: 35 * MICROS,
            per_byte: 8 * NANOS,
            mem_latency: 80 * NANOS,
        }
    }

    /// Latency of an RPC returning `response_bytes` after `hops`
    /// dependent memory accesses on the server.
    pub fn rpc_latency(&self, hops: u64, response_bytes: u64) -> TimeDelta {
        self.base_rtt + hops * self.mem_latency + response_bytes * self.per_byte
    }

    /// Executes a linked-list lookup as the server CPU would (real
    /// traversal over host memory), returning `(value, latency)`.
    pub fn list_lookup(
        &self,
        server_mem: &mut HostMemory,
        head: u64,
        key: u64,
        value_size: u32,
    ) -> (Vec<u8>, TimeDelta) {
        let mut addr = head;
        let mut hops = 0u64;
        loop {
            let elem = server_mem.read(addr, ELEMENT_SIZE as usize);
            hops += 1;
            let elem_key = u64::from_le_bytes(elem[0..8].try_into().expect("sized"));
            let next = u64::from_le_bytes(elem[8..16].try_into().expect("sized"));
            let value_ptr = u64::from_le_bytes(elem[16..24].try_into().expect("sized"));
            if elem_key == key {
                let value = server_mem.read(value_ptr, value_size as usize);
                // One more dependent access for the value itself.
                return (value, self.rpc_latency(hops + 1, u64::from(value_size)));
            }
            if next == 0 {
                return (Vec::new(), self.rpc_latency(hops, 8));
            }
            addr = next;
        }
    }

    /// Executes a hash-table GET as the server CPU would, returning
    /// `(value, latency)`.
    pub fn hash_table_get(
        &self,
        server_mem: &mut HostMemory,
        entry_addr: u64,
        key: u64,
    ) -> (Vec<u8>, TimeDelta) {
        let entry = server_mem.read(entry_addr, ELEMENT_SIZE as usize);
        for pos in ht_layout::BUCKET_KEY_POS {
            let off = usize::from(pos) * 4;
            let k = u64::from_le_bytes(entry[off..off + 8].try_into().expect("sized"));
            if k == key {
                let ptr = u64::from_le_bytes(entry[off + 8..off + 16].try_into().expect("sized"));
                let len = u32::from_le_bytes(entry[off + 16..off + 20].try_into().expect("sized"));
                let value = server_mem.read(ptr, len as usize);
                return (value, self.rpc_latency(2, u64::from(len)));
            }
        }
        (Vec::new(), self.rpc_latency(1, 8))
    }

    /// Open-loop serving latency of a TCP RPC tier: requests arriving at
    /// `arrivals` (absolute times, non-decreasing) are routed
    /// round-robin across `servers` single-core RPC loops, each a FIFO
    /// queue with per-request occupancy [`SERVER_CPU_OCCUPANCY`] plus
    /// `hops` dependent DRAM accesses. Returned latency for request *i*
    /// is measured from its *arrival* — queueing delay included, exactly
    /// as the StRoM tier's open-loop driver charges it — plus the
    /// non-serializing wire round trip for `response_bytes`.
    ///
    /// This is the baseline's latency knee: once the arrival rate
    /// exceeds `servers / occupancy` the departure frontier falls behind
    /// and latency grows without bound, long before the wire saturates.
    pub fn open_loop_latencies(
        &self,
        arrivals: &[Time],
        hops: u64,
        response_bytes: u64,
        servers: usize,
    ) -> Vec<TimeDelta> {
        let servers = servers.max(1);
        let occupancy = SERVER_CPU_OCCUPANCY + hops * self.mem_latency;
        let mut depart = vec![0u64; servers];
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &at)| {
                let d = &mut depart[i % servers];
                *d = (*d).max(at) + occupancy;
                *d - at + self.rpc_latency(0, response_bytes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_kernels::layouts::{build_hash_table, build_linked_list, value_pattern};
    use strom_mem::HUGE_PAGE_SIZE;

    fn mem() -> (HostMemory, u64) {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        (m, base)
    }

    #[test]
    fn latency_is_flat_in_list_length() {
        // The defining property of Fig 7's TCP line.
        let (mut m, base) = mem();
        let keys: Vec<u64> = (1..=32).collect();
        let list = build_linked_list(&mut m, base, &keys, 64);
        let model = TcpRpcModel::new();
        let (_, lat_first) = model.list_lookup(&mut m, list.head, 1, 64);
        let (_, lat_last) = model.list_lookup(&mut m, list.head, 32, 64);
        let delta_us = (lat_last - lat_first) as f64 / MICROS as f64;
        assert!(
            delta_us < 3.0,
            "31 extra DRAM hops must cost ~2.5 µs, got {delta_us} µs"
        );
        // And the absolute level dwarfs a network round trip.
        assert!(lat_first > 30 * MICROS);
    }

    #[test]
    fn lookup_returns_the_right_value() {
        let (mut m, base) = mem();
        let list = build_linked_list(&mut m, base, &[5, 6, 7], 32);
        let model = TcpRpcModel::new();
        let (value, _) = model.list_lookup(&mut m, list.head, 6, 32);
        assert_eq!(value, value_pattern(6, 32));
        let (miss, _) = model.list_lookup(&mut m, list.head, 99, 32);
        assert!(miss.is_empty());
    }

    #[test]
    fn large_values_pay_message_passing_cost() {
        // Fig 8: TCP "suffers from long message passing latency for value
        // sizes larger than 256 B".
        let model = TcpRpcModel::new();
        let small = model.rpc_latency(2, 256);
        let large = model.rpc_latency(2, 4096);
        let delta_us = (large - small) as f64 / MICROS as f64;
        assert!((25.0..40.0).contains(&delta_us), "delta = {delta_us} µs");
    }

    #[test]
    fn open_loop_latency_is_flat_below_the_knee_and_unbounded_above() {
        let model = TcpRpcModel::new();
        // Light load: gaps 5x the occupancy — no queueing, latency sits
        // at wire + one service time for every request.
        let light: Vec<Time> = (0..64).map(|i| i * 5 * SERVER_CPU_OCCUPANCY).collect();
        let lat = model.open_loop_latencies(&light, 2, 64, 1);
        let floor = model.rpc_latency(0, 64) + SERVER_CPU_OCCUPANCY + 2 * model.mem_latency;
        assert!(lat.iter().all(|&l| l == floor), "queueing below the knee");
        // Overload: arrivals 2x faster than the server drains — the
        // backlog (and so the tail) must grow linearly with position.
        let heavy: Vec<Time> = (0..64).map(|i| i * SERVER_CPU_OCCUPANCY / 2).collect();
        let lat = model.open_loop_latencies(&heavy, 2, 64, 1);
        assert!(lat[63] > lat[1] + 30 * SERVER_CPU_OCCUPANCY);
        // A second core doubles the sustainable rate: the same arrivals
        // on two servers queue half as deep.
        let lat2 = model.open_loop_latencies(&heavy, 2, 64, 2);
        assert!(lat2[63] < lat[63] / 2 + model.base_rtt);
    }

    #[test]
    fn hash_get_works() {
        let (mut m, base) = mem();
        let keys: Vec<u64> = (1..=12).collect();
        let ht = build_hash_table(&mut m, base, 128, &keys, 64);
        let model = TcpRpcModel::new();
        for &key in &keys {
            let (value, lat) = model.hash_table_get(&mut m, ht.entry_addr(key), key);
            assert_eq!(value, value_pattern(key, 64));
            assert!(lat >= model.base_rtt);
        }
        let (miss, _) = model.hash_table_get(&mut m, ht.entry_addr(777), 777);
        assert!(miss.is_empty());
    }
}
