//! Sender-side CPU partitioning (Barthels et al. \[6\]) — the
//! "SW + RDMA WRITE" baseline of Fig 11.
//!
//! "In their implementation, the sender first shuffles the data locally
//! and then writes each data partition to its corresponding remote memory
//! location." The partitioning itself is real (the same radix hash as the
//! kernel, 16-value partition buffers); its CPU time is charged with a
//! calibrated per-byte rate: "the overhead of partitioning stems from the
//! additional data pass and copy" (§6.4). The subsequent writes transfer
//! contiguous partitions at line rate, exactly like the plain
//! "RDMA WRITE" baseline.

use strom_kernels::radix::{radix_bits, radix_partition, PARTITION_BUFFER_VALUES};
use strom_sim::time::TimeDelta;

/// CPU cost model for the partitioning pass.
#[derive(Debug, Clone, Copy)]
pub struct CpuPartitionModel {
    /// Partition-pass cost per input byte, in picoseconds: one read, one
    /// radix hash, one copy into the partition buffer, amortized flushes
    /// (≈ 3.4 GB/s single-threaded, giving Fig 11's ~30 % end-to-end
    /// overhead).
    pub per_byte_ps: TimeDelta,
}

impl Default for CpuPartitionModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuPartitionModel {
    /// The calibrated model (≈ 3.4 GB/s).
    pub fn new() -> Self {
        CpuPartitionModel { per_byte_ps: 294 }
    }

    /// CPU time to partition `bytes` of input.
    pub fn partition_time(&self, bytes: u64) -> TimeDelta {
        self.per_byte_ps * bytes
    }
}

/// The result of a real software partitioning pass.
#[derive(Debug)]
pub struct PartitionedBuffers {
    /// Partition id → values, in arrival order.
    pub partitions: Vec<Vec<u64>>,
    /// Number of 16-value buffer flushes the pass performed (each flush
    /// is one remote write in Barthels' scheme).
    pub flushes: u64,
}

/// Partitions `values` exactly as the Barthels baseline does: radix hash
/// on the N least-significant bits, staging through 16-value buffers.
///
/// # Panics
///
/// Panics if `num_partitions` is not a power of two within the kernel's
/// on-chip limit (the baseline mirrors the kernel's configuration).
pub fn software_partition(values: &[u64], num_partitions: usize) -> PartitionedBuffers {
    let bits = radix_bits(num_partitions);
    let mut partitions: Vec<Vec<u64>> = vec![Vec::new(); num_partitions];
    let mut buffers: Vec<Vec<u64>> =
        vec![Vec::with_capacity(PARTITION_BUFFER_VALUES); num_partitions];
    let mut flushes = 0u64;
    for &v in values {
        let pid = radix_partition(v, bits);
        buffers[pid].push(v);
        if buffers[pid].len() == PARTITION_BUFFER_VALUES {
            partitions[pid].extend_from_slice(&buffers[pid]);
            buffers[pid].clear();
            flushes += 1;
        }
    }
    for (pid, buf) in buffers.iter().enumerate() {
        if !buf.is_empty() {
            partitions[pid].extend_from_slice(buf);
            flushes += 1;
        }
    }
    PartitionedBuffers {
        partitions,
        flushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_kernels::shuffle::reference_partition;

    fn values(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect()
    }

    #[test]
    fn matches_the_reference_partitioner() {
        let v = values(10_000);
        let sw = software_partition(&v, 64);
        assert_eq!(sw.partitions, reference_partition(&v, 64));
    }

    #[test]
    fn matches_the_nic_kernel_semantics() {
        // The software baseline and the StRoM kernel must produce the same
        // partitions for the same input (§6.4 compares their runtimes, so
        // their outputs must agree).
        let v = values(5_000);
        let sw = software_partition(&v, 16);
        let reference = reference_partition(&v, 16);
        assert_eq!(sw.partitions, reference);
    }

    #[test]
    fn flush_count_accounts_every_value() {
        let v = values(1000);
        let sw = software_partition(&v, 8);
        let total: usize = sw.partitions.iter().map(|p| p.len()).sum();
        assert_eq!(total, 1000);
        // Between ceil(1000/16) and 1000/16 + 8 partial flushes.
        assert!(sw.flushes >= 1000 / 16);
        assert!(sw.flushes <= 1000 / 16 + 8);
    }

    #[test]
    fn partition_time_is_linear() {
        let m = CpuPartitionModel::new();
        assert_eq!(m.partition_time(2), 2 * m.per_byte_ps);
        // ≈ 3.4 GB/s: 1 GB in ~0.29-0.31 s.
        let one_gb = m.partition_time(1 << 30) as f64 / 1e12;
        assert!((0.28..0.34).contains(&one_gb), "1 GB pass = {one_gb} s");
    }

    #[test]
    fn empty_input_is_fine() {
        let sw = software_partition(&[], 4);
        assert_eq!(sw.flushes, 0);
        assert!(sw.partitions.iter().all(|p| p.is_empty()));
    }
}
