//! The "READ+SW" baseline: RDMA READ plus software CRC64 on the client.
//!
//! §6.3/Fig 9: the client reads the object with a one-sided READ and
//! verifies the Pilaf-style inline checksum on its own CPU. "With
//! increasing object size, the CRC64 calculation in software introduces up
//! to 40 % overhead" — CRC64 "is inherently sequential" and has no SIMD or
//! dedicated instruction (footnote 8). On an inconsistent read the client
//! must re-read over the *network* (Fig 10), which is what makes StRoM's
//! PCIe-side retry so much cheaper.

use strom_kernels::consistency::verify_object;
use strom_kernels::crc64::crc64;
use strom_nic::Testbed;
use strom_sim::time::{Time, TimeDelta};

use crate::onesided::OneSidedClient;

/// CPU cost model for software CRC64.
#[derive(Debug, Clone, Copy)]
pub struct SwCrcModel {
    /// Sequential CRC64 cost per byte, in picoseconds (≈0.8 ns/B ≈
    /// 1.25 GB/s table-driven, matching the paper's ≤40 % overhead at
    /// 4 KB).
    pub per_byte_ps: TimeDelta,
}

impl Default for SwCrcModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SwCrcModel {
    /// The calibrated model.
    pub fn new() -> Self {
        SwCrcModel { per_byte_ps: 800 }
    }

    /// CPU time to checksum `len` bytes.
    pub fn crc_time(&self, len: usize) -> TimeDelta {
        self.per_byte_ps * len as u64
    }

    /// Reads a CRC-stamped object and verifies it in software, re-reading
    /// over the network until the check passes (the FaRM/Pilaf optimistic
    /// pattern). The checksum is *really computed* on the fetched bytes;
    /// CPU time is charged to the simulated clock.
    ///
    /// Returns `(object_bytes, completion_time, attempts)`.
    pub fn verified_read(
        &self,
        tb: &mut Testbed,
        client: &mut OneSidedClient,
        object_addr: u64,
        object_len: u32,
        max_attempts: u32,
    ) -> (Vec<u8>, Time, u32) {
        let mut attempts = 0;
        loop {
            let (object, _) = client.read_blocking(tb, object_addr, object_len);
            attempts += 1;
            // Charge the sequential software checksum pass.
            tb.advance(self.crc_time(object.len()));
            let stored = u64::from_le_bytes(object[..8].try_into().expect("sized"));
            if crc64(&object[8..]) == stored {
                debug_assert!(verify_object(&object));
                return (object, tb.now(), attempts);
            }
            if attempts >= max_attempts {
                return (Vec::new(), tb.now(), attempts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_kernels::layouts::{build_object_store, value_pattern};
    use strom_nic::NicConfig;
    use strom_sim::time::MICROS;

    fn setup() -> (Testbed, OneSidedClient, u64) {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(1);
        let scratch = tb.pin(0, 1 << 20);
        let server = tb.pin(1, 1 << 20);
        (tb, OneSidedClient::new(0, 1, scratch, 1 << 20), server)
    }

    #[test]
    fn clean_object_verifies_in_one_attempt() {
        let (mut tb, mut client, server) = setup();
        let store = build_object_store(tb.mem(1), server, 1, 512);
        let model = SwCrcModel::new();
        let t0 = tb.now();
        let (obj, t1, attempts) = model.verified_read(
            &mut tb,
            &mut client,
            store.object_addrs[0],
            store.object_size(),
            8,
        );
        assert_eq!(attempts, 1);
        assert_eq!(&obj[8..], value_pattern(1, 512));
        assert!(t1 > t0);
        tb.run_until_idle();
    }

    #[test]
    fn crc_overhead_is_at_most_40_percent_at_4k() {
        // Fig 9's calibration target: READ+SW ≤ ~1.4 × READ at 4 KB.
        let (mut tb, mut client, server) = setup();
        let store = build_object_store(tb.mem(1), server, 1, 4096 - 8);
        let addr = store.object_addrs[0];
        let size = store.object_size();
        // Plain READ.
        let t0 = tb.now();
        let (_, t1) = client.read_blocking(&mut tb, addr, size);
        let plain = t1 - t0;
        // READ + SW check.
        let model = SwCrcModel::new();
        let t2 = tb.now();
        let (_, t3, _) = model.verified_read(&mut tb, &mut client, addr, size, 8);
        let checked = t3 - t2;
        let overhead = checked as f64 / plain as f64 - 1.0;
        assert!(
            (0.15..0.45).contains(&overhead),
            "SW CRC overhead = {:.1}% (plain {} µs)",
            overhead * 100.0,
            plain as f64 / MICROS as f64
        );
        tb.run_until_idle();
    }

    #[test]
    fn corrupt_object_forces_network_retries() {
        let (mut tb, mut client, server) = setup();
        let store = build_object_store(tb.mem(1), server, 1, 128);
        let addr = store.object_addrs[0];
        // Corrupt the stored object permanently.
        let mut b = tb.mem(1).read(addr + 30, 1);
        b[0] ^= 0xff;
        tb.mem(1).write(addr + 30, &b);
        let model = SwCrcModel::new();
        let (obj, _, attempts) =
            model.verified_read(&mut tb, &mut client, addr, store.object_size(), 3);
        assert!(obj.is_empty());
        assert_eq!(attempts, 3, "every attempt re-reads over the network");
        tb.run_until_idle();
    }

    #[test]
    fn crc_time_scales_linearly() {
        let m = SwCrcModel::new();
        assert_eq!(m.crc_time(4096), 4096 * 800);
        assert_eq!(m.crc_time(0), 0);
    }
}
