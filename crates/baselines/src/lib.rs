//! The baselines the StRoM paper compares against.
//!
//! Every experiment in §6/§7 contrasts a StRoM kernel with one or more
//! conventional implementations:
//!
//! - [`onesided`]: client-driven data-structure access over plain RDMA
//!   READs — the Pilaf \[36\] / FaRM \[13\] pattern that pays one network
//!   round trip per pointer hop (Figs 7, 8) or per consistency retry
//!   (Figs 9, 10).
//! - [`tcp_rpc`]: an rpcgen-style RPC over TCP, where the remote *CPU*
//!   executes the lookup — a flat but high invocation cost (Figs 7, 8).
//! - [`sw_crc`]: RDMA READ + software CRC64 verification on the client
//!   CPU ("READ+SW" in Figs 9, 10).
//! - [`cpu_partition`]: sender-side radix partitioning on the CPU before
//!   RDMA WRITEs (Barthels et al. \[6\], "SW + RDMA WRITE" in Fig 11).
//! - [`cpu_hll`]: multi-threaded HyperLogLog on the receiving CPU
//!   (Fig 13a) — a real crossbeam implementation plus the calibrated
//!   timing model of the paper's memory-bound i7-7700 numbers.
//!
//! Wherever a baseline computes something (CRC64, partitions, HLL), the
//! computation is *real* — only CPU time is modeled, using per-byte and
//! per-item costs calibrated to the paper's reported overheads.

pub mod cpu_hll;
pub mod cpu_partition;
pub mod onesided;
pub mod sw_crc;
pub mod tcp_rpc;

pub use cpu_hll::{parallel_hll, CpuHllModel};
pub use cpu_partition::{CpuPartitionModel, PartitionedBuffers};
pub use onesided::OneSidedClient;
pub use sw_crc::SwCrcModel;
pub use tcp_rpc::TcpRpcModel;
