//! Randomized tests of the protocol state machines, driven by the
//! deterministic [`SimRng`] with fixed seeds.

use bytes::Bytes;
use strom_sim::SimRng;

use strom_proto::psn::{classify, psn_add, PsnClass};
use strom_proto::{MultiQueue, Requester, Responder, ResponderAction, StateTable, WorkRequest};
use strom_wire::bth::{Aeth, AethSyndrome, MASK_24};
use strom_wire::packet::Packet;

/// Valid/duplicate/invalid partition the PSN space: every PSN falls into
/// exactly one class, and exactly one PSN is Valid.
#[test]
fn psn_classes_partition_the_space() {
    let mut rng = SimRng::seed(0x95);
    for _ in 0..2000 {
        let epsn = rng.below(1 << 24) as u32;
        let probe = rng.below(1 << 24) as u32;
        match classify(probe, epsn) {
            PsnClass::Valid => assert_eq!(probe, epsn),
            PsnClass::Duplicate => {
                // Behind: adding the forward distance gets back to epsn.
                let dist = epsn.wrapping_sub(probe) & MASK_24;
                assert!(dist > 0 && dist < (1 << 23) || dist == 0 && probe == epsn);
                assert_eq!(psn_add(probe, dist), epsn);
            }
            PsnClass::Invalid => {
                let dist = probe.wrapping_sub(epsn) & MASK_24;
                assert!(dist > 0 && dist <= (1 << 23));
            }
        }
    }
}

/// psn_add is associative with respect to splitting the delta.
#[test]
fn psn_add_splits() {
    let mut rng = SimRng::seed(0xadd);
    for _ in 0..2000 {
        let base = rng.below(1 << 24) as u32;
        let a = rng.below(1 << 24) as u32;
        let b = rng.below(1 << 24) as u32;
        let whole = psn_add(base, a.wrapping_add(b) & MASK_24);
        let split = psn_add(psn_add(base, a), b);
        assert_eq!(whole, split);
    }
}

/// The Multi-Queue behaves exactly like a vector-of-queues model under
/// an arbitrary operation sequence.
#[test]
fn multi_queue_matches_model() {
    let mut rng = SimRng::seed(0x309);
    for _ in 0..100 {
        let mut mq = MultiQueue::new(4, 16);
        let mut model: Vec<std::collections::VecDeque<(u64, u32)>> =
            vec![std::collections::VecDeque::new(); 4];
        let mut in_use = 0usize;
        for _ in 0..rng.range(1, 200) {
            let op = rng.below(4) as u32;
            let qpn = rng.below(4) as u32;
            let arg = rng.range(1, 100) as u32;
            match op {
                // Push.
                0 | 1 => {
                    let ptr = u64::from(arg) * 1000;
                    let ok = mq.push(qpn, ptr, arg);
                    if in_use < 16 {
                        assert!(ok);
                        model[qpn as usize].push_back((ptr, arg));
                        in_use += 1;
                    } else {
                        assert!(!ok, "model expected a full queue");
                    }
                }
                // Consume some bytes.
                _ => {
                    let got = mq.consume(qpn, arg);
                    let front = model[qpn as usize].front_mut();
                    match (got, front) {
                        (None, None) => {}
                        (Some((addr, done)), Some(entry)) => {
                            assert_eq!(addr, entry.0);
                            let consumed = arg.min(entry.1);
                            entry.0 += u64::from(consumed);
                            entry.1 -= consumed;
                            if entry.1 == 0 {
                                assert!(done);
                                model[qpn as usize].pop_front();
                                in_use -= 1;
                            } else {
                                assert!(!done);
                            }
                        }
                        (got, front) => panic!("divergence: {got:?} vs {front:?}"),
                    }
                }
            }
            assert_eq!(mq.free_slots() as usize, 16 - in_use);
        }
    }
}

/// A requester/responder conversation over a perfect wire delivers every
/// write exactly once and completes every request, for an arbitrary mix
/// of write sizes.
#[test]
fn lockstep_conversation_completes() {
    let mut rng = SimRng::seed(0x10c);
    for _ in 0..50 {
        let sizes: Vec<u32> = (0..rng.range(1, 20))
            .map(|_| rng.range(1, 6000) as u32)
            .collect();
        let mut client_state = StateTable::new(4);
        let mut server_state = StateTable::new(4);
        client_state.init_qp(1, 0, 0);
        server_state.init_qp(1, 0, 0);
        let mut requester = Requester::new(4, 16, 1440);
        let mut responder = Responder::new(4, 1440);

        let mut completions = 0usize;
        let mut delivered: Vec<(u64, usize)> = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let remote = 0x10_000 * (i as u64 + 1);
            let (_, pkts) = requester
                .post(
                    &mut client_state,
                    1,
                    WorkRequest::Write {
                        remote_vaddr: remote,
                        local_vaddr: 0,
                        len,
                    },
                )
                .expect("post");
            for desc in pkts {
                // Materialize the packet as the NIC would.
                let payload = Bytes::from(vec![0xaau8; desc.payload.len() as usize]);
                let pkt = Packet::new(
                    0,
                    1,
                    desc.opcode,
                    desc.qpn,
                    desc.psn,
                    desc.reth,
                    None,
                    payload,
                );
                for action in responder.on_packet(&mut server_state, &pkt) {
                    match action {
                        ResponderAction::WritePayload { vaddr, data } => {
                            delivered.push((vaddr, data.len()));
                        }
                        ResponderAction::SendAck { qpn, psn, msn } => {
                            let _ = msn;
                            let (comps, retx) = requester.on_ack(
                                &mut client_state,
                                qpn,
                                psn,
                                Aeth {
                                    syndrome: AethSyndrome::Ack,
                                    msn: 0,
                                },
                            );
                            assert!(retx.is_empty(), "no loss, no retransmit");
                            completions += comps.len();
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        }
        assert_eq!(completions, sizes.len());
        // Each message's payload bytes were delivered contiguously from
        // its base address.
        let mut by_msg: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (vaddr, len) in &delivered {
            let base = vaddr & !0xffff;
            let cursor = by_msg.entry(base).or_insert(base);
            assert_eq!(*vaddr, *cursor, "contiguous placement");
            *cursor += *len as u64;
        }
        for (i, &len) in sizes.iter().enumerate() {
            let base = 0x10_000 * (i as u64 + 1);
            assert_eq!(by_msg[&base], base + u64::from(len));
        }
    }
}

/// Go-back-N under arbitrary single-packet drops still delivers every
/// message: drop one chosen packet on first transmission, let the NAK
/// or duplicate path recover.
#[test]
fn single_drop_recovers() {
    let mut rng = SimRng::seed(0xd70);
    for _ in 0..100 {
        let len = rng.range(1500, 20_000) as u32;
        let mut client_state = StateTable::new(2);
        let mut server_state = StateTable::new(2);
        client_state.init_qp(1, 0, 0);
        server_state.init_qp(1, 0, 0);
        let mut requester = Requester::new(2, 8, 1440);
        let mut responder = Responder::new(2, 1440);

        let (_, pkts) = requester
            .post(
                &mut client_state,
                1,
                WorkRequest::Write {
                    remote_vaddr: 0x8000,
                    local_vaddr: 0,
                    len,
                },
            )
            .expect("post");
        let dropped = rng.below(pkts.len() as u64) as usize;
        let mut delivered = 0u64;
        let mut completed = false;

        // Queue of packets to process (descriptors).
        let mut wire: std::collections::VecDeque<strom_proto::PacketDescriptor> =
            pkts.iter().cloned().collect();
        let mut first_pass_counter = 0usize;
        let mut guard = 0usize;
        let mut timeouts = 0usize;
        loop {
            let Some(desc) = wire.pop_front() else {
                if completed {
                    break;
                }
                // Dropping the tail packet produces no NAK (nothing
                // arrives after the gap): the retransmission timer is the
                // only recovery path, exactly as in the real protocol.
                timeouts += 1;
                assert!(timeouts <= 2, "timer should recover in one shot");
                wire.extend(requester.on_timeout(1));
                continue;
            };
            guard += 1;
            assert!(guard < 10_000, "conversation did not converge");
            // Drop exactly one packet, on its first transmission.
            if first_pass_counter == dropped {
                first_pass_counter += 1;
                continue;
            }
            if first_pass_counter < pkts.len() {
                first_pass_counter += 1;
            }
            let payload = Bytes::from(vec![0u8; desc.payload.len() as usize]);
            let pkt = Packet::new(
                0,
                1,
                desc.opcode,
                desc.qpn,
                desc.psn,
                desc.reth,
                None,
                payload,
            );
            for action in responder.on_packet(&mut server_state, &pkt) {
                match action {
                    ResponderAction::WritePayload { data, .. } => delivered += data.len() as u64,
                    ResponderAction::SendAck { psn, .. } => {
                        let (comps, retx) = requester.on_ack(
                            &mut client_state,
                            1,
                            psn,
                            Aeth {
                                syndrome: AethSyndrome::Ack,
                                msn: 0,
                            },
                        );
                        completed |= !comps.is_empty();
                        wire.extend(retx);
                    }
                    ResponderAction::SendNakSequenceError { psn, .. } => {
                        let (_, retx) = requester.on_ack(
                            &mut client_state,
                            1,
                            psn,
                            Aeth {
                                syndrome: AethSyndrome::NakSequenceError,
                                msn: 0,
                            },
                        );
                        wire.extend(retx);
                    }
                    ResponderAction::DroppedDuplicate | ResponderAction::DroppedInvalid => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert!(completed, "message must complete despite the drop");
        assert!(
            delivered >= u64::from(len),
            "every byte delivered at least once"
        );
    }
}
