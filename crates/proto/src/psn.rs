//! 24-bit packet-sequence-number arithmetic.
//!
//! PSNs wrap at 2^24; the State Table classifies an incoming PSN against
//! the expected PSN into **valid**, **duplicate**, and **invalid** regions
//! (§4.1: "The State Table stores all packet sequence numbers (PSNs) to
//! define the valid, invalid, and duplicate PSN regions"). Following the
//! IB convention, the half-space behind the expected PSN is the duplicate
//! region and the half-space ahead of it is invalid (out-of-order arrival).

use std::cmp::Ordering;

use strom_wire::bth::{Psn, MASK_24};

/// Half of the 24-bit PSN space; the duplicate-region boundary.
pub const PSN_HALF: u32 = 1 << 23;

/// Adds `delta` to a PSN, wrapping at 2^24.
pub fn psn_add(psn: Psn, delta: u32) -> Psn {
    (psn.wrapping_add(delta)) & MASK_24
}

/// Compares two PSNs in the wrapping space.
///
/// Returns [`Ordering::Less`] if `a` is behind `b` (i.e. `a` lies in the
/// half-space preceding `b`), [`Ordering::Equal`] if identical, and
/// [`Ordering::Greater`] otherwise.
pub fn psn_cmp(a: Psn, b: Psn) -> Ordering {
    let a = a & MASK_24;
    let b = b & MASK_24;
    if a == b {
        return Ordering::Equal;
    }
    let forward = b.wrapping_sub(a) & MASK_24;
    if forward < PSN_HALF {
        Ordering::Less
    } else {
        Ordering::Greater
    }
}

/// The three PSN regions of the paper's State Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsnClass {
    /// Exactly the expected PSN: accept and advance.
    Valid,
    /// Behind the expected PSN: already processed; re-acknowledge and drop.
    Duplicate,
    /// Ahead of the expected PSN: a gap (lost packet); NAK and drop.
    Invalid,
}

/// Classifies an incoming `psn` against the expected `epsn` (Figure 3,
/// step 3: "check PSN").
pub fn classify(psn: Psn, epsn: Psn) -> PsnClass {
    match psn_cmp(psn, epsn) {
        Ordering::Equal => PsnClass::Valid,
        Ordering::Less => PsnClass::Duplicate,
        Ordering::Greater => PsnClass::Invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_at_24_bits() {
        assert_eq!(psn_add(MASK_24, 1), 0);
        assert_eq!(psn_add(MASK_24 - 1, 3), 1);
        assert_eq!(psn_add(5, 10), 15);
    }

    #[test]
    fn cmp_simple_ordering() {
        assert_eq!(psn_cmp(1, 2), Ordering::Less);
        assert_eq!(psn_cmp(2, 1), Ordering::Greater);
        assert_eq!(psn_cmp(7, 7), Ordering::Equal);
    }

    #[test]
    fn cmp_across_wrap() {
        // 0xffffff is just behind 0 in the wrapping space.
        assert_eq!(psn_cmp(MASK_24, 0), Ordering::Less);
        assert_eq!(psn_cmp(0, MASK_24), Ordering::Greater);
    }

    #[test]
    fn classify_regions() {
        assert_eq!(classify(100, 100), PsnClass::Valid);
        assert_eq!(classify(99, 100), PsnClass::Duplicate);
        assert_eq!(classify(101, 100), PsnClass::Invalid);
    }

    #[test]
    fn classify_across_wrap() {
        assert_eq!(classify(MASK_24, 0), PsnClass::Duplicate);
        assert_eq!(classify(0, MASK_24), PsnClass::Invalid);
        assert_eq!(classify(1, MASK_24), PsnClass::Invalid);
    }

    #[test]
    fn region_boundary_at_half_space() {
        // Up to and including half the space ahead counts as invalid; just
        // over half ahead wraps into the duplicate region.
        let e = 0;
        assert_eq!(classify(PSN_HALF - 1, e), PsnClass::Invalid);
        assert_eq!(classify(PSN_HALF, e), PsnClass::Invalid);
        assert_eq!(classify(PSN_HALF + 1, e), PsnClass::Duplicate);
    }

    #[test]
    fn trichotomy_partitions_the_space() {
        // Every PSN falls in exactly one region relative to a fixed ePSN.
        let e = 12_345;
        let mut counts = [0usize; 3];
        for psn in (0..=MASK_24).step_by(4097) {
            match classify(psn, e) {
                PsnClass::Valid => counts[0] += 1,
                PsnClass::Duplicate => counts[1] += 1,
                PsnClass::Invalid => counts[2] += 1,
            }
        }
        assert!(counts[1] > 0 && counts[2] > 0);
    }
}
