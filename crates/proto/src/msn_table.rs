//! The MSN Table: message sequence numbers and the running DMA address.
//!
//! §4.1: "The MSN Table stores the message sequence number (MSN) and the
//! current DMA address. This is necessary since for write operations with
//! payload spanning multiple packets the address is only part of the first
//! packet." The responder consults this table for every WRITE Middle/Last
//! packet to find where its payload lands in host memory.

use strom_wire::bth::Qpn;

/// Per-QP responder message state.
#[derive(Debug, Clone, Copy, Default)]
struct MsnEntry {
    /// Completed-message counter, reported back in AETH headers.
    msn: u32,
    /// Where the next payload byte of the in-progress write lands.
    dma_vaddr: u64,
    /// Whether a multi-packet write is currently in progress.
    in_progress: bool,
}

/// The MSN Table, indexed by QPN.
#[derive(Debug, Clone)]
pub struct MsnTable {
    entries: Vec<MsnEntry>,
}

impl MsnTable {
    /// Creates a table supporting QPNs `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: vec![MsnEntry::default(); capacity],
        }
    }

    /// The current MSN for a QP (0 for out-of-range QPNs).
    pub fn msn(&self, qpn: Qpn) -> u32 {
        self.entries.get(qpn as usize).map(|e| e.msn).unwrap_or(0)
    }

    /// Starts a message at `vaddr` (WRITE First/Only carries the RETH).
    ///
    /// Returns the DMA address for this packet's payload.
    pub fn start_message(&mut self, qpn: Qpn, vaddr: u64, payload_len: usize) -> u64 {
        let e = &mut self.entries[qpn as usize];
        e.dma_vaddr = vaddr + payload_len as u64;
        e.in_progress = true;
        vaddr
    }

    /// Continues a message (WRITE Middle/Last: no RETH on the wire).
    ///
    /// Returns the DMA address for this packet's payload, or `None` if no
    /// message is in progress (a protocol violation the hardware drops).
    pub fn continue_message(&mut self, qpn: Qpn, payload_len: usize) -> Option<u64> {
        let e = self.entries.get_mut(qpn as usize)?;
        if !e.in_progress {
            return None;
        }
        let addr = e.dma_vaddr;
        e.dma_vaddr += payload_len as u64;
        Some(addr)
    }

    /// Completes the current message, bumping the MSN (wrapping at 24 bits).
    ///
    /// Returns the new MSN, which the ACK carries back in its AETH.
    pub fn complete_message(&mut self, qpn: Qpn) -> u32 {
        let e = &mut self.entries[qpn as usize];
        e.in_progress = false;
        e.msn = (e.msn + 1) & strom_wire::bth::MASK_24;
        e.msn
    }

    /// Whether a multi-packet message is currently being reassembled.
    pub fn message_in_progress(&self, qpn: Qpn) -> bool {
        self.entries
            .get(qpn as usize)
            .map(|e| e.in_progress)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_message() {
        let mut t = MsnTable::new(4);
        let addr = t.start_message(1, 0x1000, 64);
        assert_eq!(addr, 0x1000);
        assert_eq!(t.complete_message(1), 1);
        assert!(!t.message_in_progress(1));
        assert_eq!(t.msn(1), 1);
    }

    #[test]
    fn multi_packet_addresses_advance() {
        let mut t = MsnTable::new(4);
        assert_eq!(t.start_message(2, 0x4000, 1440), 0x4000);
        assert!(t.message_in_progress(2));
        assert_eq!(t.continue_message(2, 1440), Some(0x4000 + 1440));
        assert_eq!(t.continue_message(2, 120), Some(0x4000 + 2880));
        assert_eq!(t.complete_message(2), 1);
        assert!(!t.message_in_progress(2));
    }

    #[test]
    fn middle_without_first_is_rejected() {
        let mut t = MsnTable::new(4);
        assert_eq!(t.continue_message(3, 64), None);
    }

    #[test]
    fn msn_counts_messages_per_qp_independently() {
        let mut t = MsnTable::new(4);
        for _ in 0..3 {
            t.start_message(0, 0, 8);
            t.complete_message(0);
        }
        t.start_message(1, 0, 8);
        t.complete_message(1);
        assert_eq!(t.msn(0), 3);
        assert_eq!(t.msn(1), 1);
    }

    #[test]
    fn msn_wraps_at_24_bits() {
        let mut t = MsnTable::new(1);
        // Force the counter near the wrap point.
        for _ in 0..2 {
            t.start_message(0, 0, 1);
            t.complete_message(0);
        }
        // Internal: set close to wrap by completing many is impractical;
        // instead verify masking arithmetic directly.
        assert_eq!((strom_wire::bth::MASK_24 + 1) & strom_wire::bth::MASK_24, 0);
    }
}
