//! The responder finite state machine.
//!
//! This is the receive-side FSM of Figure 2's Process BTH and Process
//! RETH/AETH stages: it classifies the PSN against the State Table,
//! instructs the Packet Dropper, and "takes decisions based on the RDMA
//! op-code and if required issues DMA commands and requests to generate
//! response packets" (§4.1). For the StRoM op-codes of Table 1 the payload
//! is "not written to the host memory but forwarded to the StRoM kernel
//! using the address field in the RETH as an RPC op-code" (§5.1).
//!
//! Sans-IO: the FSM consumes parsed packets and produces a list of
//! [`ResponderAction`]s; the NIC simulation executes them with timing.

use bytes::Bytes;

use strom_wire::bth::{Psn, Qpn};
use strom_wire::opcode::{Opcode, RpcOpCode};
use strom_wire::packet::Packet;

use crate::msn_table::MsnTable;
use crate::psn::PsnClass;
use crate::state_table::StateTable;

/// What the responder wants the NIC to do for one received packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponderAction {
    /// DMA the payload into host memory at `vaddr`.
    WritePayload {
        /// Destination virtual address.
        vaddr: u64,
        /// Payload bytes.
        data: Bytes,
    },
    /// Transmit a positive acknowledgement.
    SendAck {
        /// QP to acknowledge on.
        qpn: Qpn,
        /// PSN being acknowledged.
        psn: Psn,
        /// Current message sequence number.
        msn: u32,
    },
    /// Transmit a NAK (PSN sequence error): a gap was detected.
    SendNakSequenceError {
        /// QP to NAK on.
        qpn: Qpn,
        /// The expected PSN (what we want retransmitted).
        psn: Psn,
        /// Current message sequence number.
        msn: u32,
    },
    /// Generate read-response packets from host memory.
    ReadResponse {
        /// QP to respond on.
        qpn: Qpn,
        /// First response PSN (= the read request's PSN).
        first_psn: Psn,
        /// Host virtual address to read.
        vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Invoke a StRoM kernel with parameters (RDMA RPC Params, §5.1).
    RpcInvoke {
        /// QP the RPC arrived on (kernels answer on the same QP).
        qpn: Qpn,
        /// Kernel-matching op-code from the RETH address field.
        rpc_op: RpcOpCode,
        /// The parameter bytes.
        params: Bytes,
    },
    /// Stream RPC WRITE payload into a StRoM kernel.
    RpcPayload {
        /// QP the payload arrived on.
        qpn: Qpn,
        /// Kernel-matching op-code (from the First/Only packet's RETH).
        rpc_op: RpcOpCode,
        /// Payload bytes for the kernel's `roceDataIn` stream.
        data: Bytes,
        /// Whether this is the final packet of the RPC WRITE message.
        last: bool,
    },
    /// Echo congestion back to the sender: the packet arrived CE-marked,
    /// so transmit a CNP on the reverse path (DCQCN congestion point →
    /// reaction point signal).
    SendCnp {
        /// QP whose sender must slow down.
        qpn: Qpn,
    },
    /// The packet was a duplicate and was dropped (after re-acking).
    DroppedDuplicate,
    /// The packet was invalid (gap or protocol violation) and was dropped.
    DroppedInvalid,
}

/// The responder FSM with its state-keeping structures.
#[derive(Debug)]
pub struct Responder {
    msn: MsnTable,
    /// Per-QP RPC op-code of the in-progress RPC WRITE message.
    rpc_in_progress: Vec<Option<RpcOpCode>>,
    /// Per-QP flag: a NAK for the current gap has already been sent.
    /// RC responders NAK a sequence error once and then silently drop
    /// further out-of-order packets until the expected PSN arrives —
    /// otherwise every in-flight packet behind one loss would trigger
    /// another full go-back-N retransmission.
    nak_armed: Vec<bool>,
    /// Maximum payload per packet, to size read responses.
    max_payload: usize,
}

impl Responder {
    /// Creates a responder for `num_qps` QPs at the given per-packet
    /// payload budget.
    pub fn new(num_qps: usize, max_payload: usize) -> Self {
        assert!(max_payload > 0, "max payload must be positive");
        Self {
            msn: MsnTable::new(num_qps),
            rpc_in_progress: vec![None; num_qps],
            nak_armed: vec![false; num_qps],
            max_payload,
        }
    }

    /// Number of response packets a read of `len` bytes will produce.
    pub fn read_response_packets(&self, len: u32) -> u32 {
        (len as usize).div_ceil(self.max_payload).max(1) as u32
    }

    /// Processes one inbound *request* packet (requester → responder
    /// direction). ACKs and read responses belong to the requester FSM.
    ///
    /// `state` is the shared State Table (Figure 3).
    pub fn on_packet(&mut self, state: &mut StateTable, pkt: &Packet) -> Vec<ResponderAction> {
        let qpn = pkt.bth.dest_qp;
        let psn = pkt.bth.psn;
        let Some(class) = state.classify_request(qpn, psn) else {
            return vec![ResponderAction::DroppedInvalid]; // Unknown QP.
        };
        let mut actions = match class {
            PsnClass::Valid => {
                // Forward progress resolves any pending gap.
                self.nak_armed[qpn as usize] = false;
                self.on_valid(state, pkt)
            }
            PsnClass::Duplicate => self.on_duplicate(pkt),
            PsnClass::Invalid => {
                if self.nak_armed[qpn as usize] {
                    // One NAK per gap (IB responder rule): the requester
                    // is already retransmitting.
                    vec![ResponderAction::DroppedInvalid]
                } else {
                    self.nak_armed[qpn as usize] = true;
                    let epsn = state.get(qpn).map(|s| s.epsn).unwrap_or(0);
                    vec![
                        ResponderAction::SendNakSequenceError {
                            qpn,
                            psn: epsn,
                            msn: self.msn.msn(qpn),
                        },
                        ResponderAction::DroppedInvalid,
                    ]
                }
            }
        };
        // A CE mark is a congestion signal regardless of how the PSN
        // classified — even a duplicate or out-of-sequence packet crossed
        // the congested queue, so the sender must still slow down.
        if pkt.ecn == strom_wire::ipv4::ECN_CE {
            actions.insert(0, ResponderAction::SendCnp { qpn });
        }
        actions
    }

    fn on_valid(&mut self, state: &mut StateTable, pkt: &Packet) -> Vec<ResponderAction> {
        let qpn = pkt.bth.dest_qp;
        let psn = pkt.bth.psn;
        let mut actions = Vec::new();
        match pkt.opcode() {
            Opcode::WriteFirst | Opcode::WriteOnly => {
                let Some(reth) = pkt.reth else {
                    return vec![ResponderAction::DroppedInvalid];
                };
                let vaddr = self.msn.start_message(qpn, reth.vaddr, pkt.payload.len());
                actions.push(ResponderAction::WritePayload {
                    vaddr,
                    data: pkt.payload.clone(),
                });
                state.advance_epsn(qpn, 1);
                if pkt.opcode() == Opcode::WriteOnly {
                    let msn = self.msn.complete_message(qpn);
                    actions.push(ResponderAction::SendAck { qpn, psn, msn });
                }
            }
            Opcode::WriteMiddle | Opcode::WriteLast => {
                let Some(vaddr) = self.msn.continue_message(qpn, pkt.payload.len()) else {
                    // Middle/Last without First: protocol violation.
                    return vec![ResponderAction::DroppedInvalid];
                };
                actions.push(ResponderAction::WritePayload {
                    vaddr,
                    data: pkt.payload.clone(),
                });
                state.advance_epsn(qpn, 1);
                if pkt.opcode() == Opcode::WriteLast {
                    let msn = self.msn.complete_message(qpn);
                    actions.push(ResponderAction::SendAck { qpn, psn, msn });
                }
            }
            Opcode::ReadRequest => {
                let Some(reth) = pkt.reth else {
                    return vec![ResponderAction::DroppedInvalid];
                };
                // A read consumes as many PSNs as it has response packets.
                let n = self.read_response_packets(reth.dma_len);
                state.advance_epsn(qpn, n);
                self.msn.start_message(qpn, reth.vaddr, 0);
                self.msn.complete_message(qpn);
                actions.push(ResponderAction::ReadResponse {
                    qpn,
                    first_psn: psn,
                    vaddr: reth.vaddr,
                    len: reth.dma_len,
                });
            }
            Opcode::RpcParams => {
                let Some(reth) = pkt.reth else {
                    return vec![ResponderAction::DroppedInvalid];
                };
                state.advance_epsn(qpn, 1);
                let msn = self.msn.msn(qpn);
                let _ = msn;
                self.msn.start_message(qpn, 0, 0);
                let msn = self.msn.complete_message(qpn);
                actions.push(ResponderAction::RpcInvoke {
                    qpn,
                    rpc_op: RpcOpCode(reth.vaddr),
                    params: pkt.payload.clone(),
                });
                actions.push(ResponderAction::SendAck { qpn, psn, msn });
            }
            Opcode::RpcWriteFirst | Opcode::RpcWriteOnly => {
                let Some(reth) = pkt.reth else {
                    return vec![ResponderAction::DroppedInvalid];
                };
                let rpc_op = RpcOpCode(reth.vaddr);
                let last = pkt.opcode() == Opcode::RpcWriteOnly;
                state.advance_epsn(qpn, 1);
                if last {
                    self.msn.start_message(qpn, 0, 0);
                    let msn = self.msn.complete_message(qpn);
                    actions.push(ResponderAction::RpcPayload {
                        qpn,
                        rpc_op,
                        data: pkt.payload.clone(),
                        last,
                    });
                    actions.push(ResponderAction::SendAck { qpn, psn, msn });
                } else {
                    self.rpc_in_progress[qpn as usize] = Some(rpc_op);
                    self.msn.start_message(qpn, 0, 0);
                    actions.push(ResponderAction::RpcPayload {
                        qpn,
                        rpc_op,
                        data: pkt.payload.clone(),
                        last,
                    });
                }
            }
            Opcode::RpcWriteMiddle | Opcode::RpcWriteLast => {
                let Some(rpc_op) = self.rpc_in_progress[qpn as usize] else {
                    return vec![ResponderAction::DroppedInvalid];
                };
                let last = pkt.opcode() == Opcode::RpcWriteLast;
                state.advance_epsn(qpn, 1);
                actions.push(ResponderAction::RpcPayload {
                    qpn,
                    rpc_op,
                    data: pkt.payload.clone(),
                    last,
                });
                if last {
                    self.rpc_in_progress[qpn as usize] = None;
                    let msn = self.msn.complete_message(qpn);
                    actions.push(ResponderAction::SendAck { qpn, psn, msn });
                }
            }
            Opcode::Acknowledge
            | Opcode::ReadResponseFirst
            | Opcode::ReadResponseMiddle
            | Opcode::ReadResponseLast
            | Opcode::ReadResponseOnly
            | Opcode::Cnp => {
                // Responder never sees these; the NIC routes ACKs and
                // read responses to the requester FSM and CNPs to the
                // DCQCN reaction point.
                actions.push(ResponderAction::DroppedInvalid);
            }
        }
        actions
    }

    fn on_duplicate(&mut self, pkt: &Packet) -> Vec<ResponderAction> {
        let qpn = pkt.bth.dest_qp;
        let psn = pkt.bth.psn;
        match pkt.opcode() {
            // Duplicate reads must be re-executed (the original response
            // may have been lost); write data was already placed, so
            // duplicates are dropped but re-acknowledged.
            Opcode::ReadRequest => {
                let Some(reth) = pkt.reth else {
                    return vec![ResponderAction::DroppedInvalid];
                };
                vec![ResponderAction::ReadResponse {
                    qpn,
                    first_psn: psn,
                    vaddr: reth.vaddr,
                    len: reth.dma_len,
                }]
            }
            _ => vec![
                ResponderAction::SendAck {
                    qpn,
                    psn,
                    msn: self.msn.msn(qpn),
                },
                ResponderAction::DroppedDuplicate,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_wire::bth::Reth;

    fn setup() -> (StateTable, Responder) {
        let mut st = StateTable::new(8);
        st.init_qp(1, 0, 0);
        (st, Responder::new(8, 1440))
    }

    fn write_only(psn: Psn, vaddr: u64, data: &[u8]) -> Packet {
        Packet::new(
            0,
            1,
            Opcode::WriteOnly,
            1,
            psn,
            Some(Reth {
                vaddr,
                rkey: 0,
                dma_len: data.len() as u32,
            }),
            None,
            Bytes::copy_from_slice(data),
        )
    }

    #[test]
    fn write_only_places_payload_and_acks() {
        let (mut st, mut r) = setup();
        let actions = r.on_packet(&mut st, &write_only(0, 0x1000, b"abc"));
        assert_eq!(
            actions[0],
            ResponderAction::WritePayload {
                vaddr: 0x1000,
                data: Bytes::from_static(b"abc")
            }
        );
        assert!(matches!(
            actions[1],
            ResponderAction::SendAck {
                qpn: 1,
                psn: 0,
                msn: 1
            }
        ));
        assert_eq!(st.get(1).unwrap().epsn, 1);
    }

    #[test]
    fn multi_packet_write_tracks_dma_address() {
        let (mut st, mut r) = setup();
        let first = Packet::new(
            0,
            1,
            Opcode::WriteFirst,
            1,
            0,
            Some(Reth {
                vaddr: 0x2000,
                rkey: 0,
                dma_len: 3000,
            }),
            None,
            Bytes::from(vec![1u8; 1440]),
        );
        let middle = Packet::new(
            0,
            1,
            Opcode::WriteMiddle,
            1,
            1,
            None,
            None,
            Bytes::from(vec![2u8; 1440]),
        );
        let last = Packet::new(
            0,
            1,
            Opcode::WriteLast,
            1,
            2,
            None,
            None,
            Bytes::from(vec![3u8; 120]),
        );

        let a1 = r.on_packet(&mut st, &first);
        assert!(matches!(
            a1[0],
            ResponderAction::WritePayload { vaddr: 0x2000, .. }
        ));
        assert_eq!(a1.len(), 1, "no ack until the message completes");

        let a2 = r.on_packet(&mut st, &middle);
        assert!(matches!(
            a2[0],
            ResponderAction::WritePayload { vaddr, .. } if vaddr == 0x2000 + 1440
        ));

        let a3 = r.on_packet(&mut st, &last);
        assert!(matches!(
            a3[0],
            ResponderAction::WritePayload { vaddr, .. } if vaddr == 0x2000 + 2880
        ));
        assert!(matches!(a3[1], ResponderAction::SendAck { msn: 1, .. }));
        assert_eq!(st.get(1).unwrap().epsn, 3);
    }

    #[test]
    fn gap_triggers_nak_and_drop() {
        let (mut st, mut r) = setup();
        // PSN 5 while expecting 0.
        let actions = r.on_packet(&mut st, &write_only(5, 0, b"x"));
        assert!(matches!(
            actions[0],
            ResponderAction::SendNakSequenceError { psn: 0, .. }
        ));
        assert_eq!(actions[1], ResponderAction::DroppedInvalid);
        assert_eq!(st.get(1).unwrap().epsn, 0, "ePSN unchanged");
    }

    #[test]
    fn duplicate_write_is_reacked_not_rewritten() {
        let (mut st, mut r) = setup();
        let pkt = write_only(0, 0x1000, b"abc");
        r.on_packet(&mut st, &pkt);
        let actions = r.on_packet(&mut st, &pkt);
        assert!(matches!(actions[0], ResponderAction::SendAck { .. }));
        assert_eq!(actions[1], ResponderAction::DroppedDuplicate);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ResponderAction::WritePayload { .. })),
            "duplicate payload must not be written twice"
        );
    }

    #[test]
    fn read_request_consumes_response_psns() {
        let (mut st, mut r) = setup();
        let pkt = Packet::new(
            0,
            1,
            Opcode::ReadRequest,
            1,
            0,
            Some(Reth {
                vaddr: 0x3000,
                rkey: 0,
                dma_len: 4000, // 3 response packets at 1440.
            }),
            None,
            Bytes::new(),
        );
        let actions = r.on_packet(&mut st, &pkt);
        assert_eq!(
            actions[0],
            ResponderAction::ReadResponse {
                qpn: 1,
                first_psn: 0,
                vaddr: 0x3000,
                len: 4000
            }
        );
        assert_eq!(st.get(1).unwrap().epsn, 3, "read consumed 3 PSNs");
    }

    #[test]
    fn duplicate_read_is_reexecuted() {
        let (mut st, mut r) = setup();
        let pkt = Packet::new(
            0,
            1,
            Opcode::ReadRequest,
            1,
            0,
            Some(Reth {
                vaddr: 0x3000,
                rkey: 0,
                dma_len: 100,
            }),
            None,
            Bytes::new(),
        );
        r.on_packet(&mut st, &pkt);
        let again = r.on_packet(&mut st, &pkt);
        assert!(
            matches!(again[0], ResponderAction::ReadResponse { .. }),
            "lost responses require re-execution"
        );
    }

    #[test]
    fn rpc_params_invokes_kernel_and_acks() {
        let (mut st, mut r) = setup();
        let pkt = Packet::new(
            0,
            1,
            Opcode::RpcParams,
            1,
            0,
            Some(Reth {
                vaddr: RpcOpCode::TRAVERSAL.0,
                rkey: 0,
                dma_len: 4,
            }),
            None,
            Bytes::from_static(b"args"),
        );
        let actions = r.on_packet(&mut st, &pkt);
        assert_eq!(
            actions[0],
            ResponderAction::RpcInvoke {
                qpn: 1,
                rpc_op: RpcOpCode::TRAVERSAL,
                params: Bytes::from_static(b"args"),
            }
        );
        assert!(matches!(actions[1], ResponderAction::SendAck { .. }));
    }

    #[test]
    fn rpc_write_streams_payload_to_kernel() {
        let (mut st, mut r) = setup();
        let first = Packet::new(
            0,
            1,
            Opcode::RpcWriteFirst,
            1,
            0,
            Some(Reth {
                vaddr: RpcOpCode::SHUFFLE.0,
                rkey: 0,
                dma_len: 2880,
            }),
            None,
            Bytes::from(vec![1u8; 1440]),
        );
        let last = Packet::new(
            0,
            1,
            Opcode::RpcWriteLast,
            1,
            1,
            None,
            None,
            Bytes::from(vec![2u8; 1440]),
        );
        let a1 = r.on_packet(&mut st, &first);
        assert!(matches!(
            &a1[0],
            ResponderAction::RpcPayload { rpc_op, last: false, .. } if *rpc_op == RpcOpCode::SHUFFLE
        ));
        let a2 = r.on_packet(&mut st, &last);
        assert!(matches!(
            &a2[0],
            ResponderAction::RpcPayload { rpc_op, last: true, .. } if *rpc_op == RpcOpCode::SHUFFLE
        ));
        assert!(matches!(a2[1], ResponderAction::SendAck { .. }));
    }

    #[test]
    fn rpc_write_middle_without_first_is_dropped() {
        let (mut st, mut r) = setup();
        let middle = Packet::new(
            0,
            1,
            Opcode::RpcWriteMiddle,
            1,
            0,
            None,
            None,
            Bytes::from(vec![0u8; 8]),
        );
        let actions = r.on_packet(&mut st, &middle);
        assert_eq!(actions, vec![ResponderAction::DroppedInvalid]);
    }

    #[test]
    fn ce_marked_packet_prepends_a_cnp() {
        let (mut st, mut r) = setup();
        let mut pkt = write_only(0, 0x1000, b"abc");
        pkt.ecn = strom_wire::ipv4::ECN_CE;
        let actions = r.on_packet(&mut st, &pkt);
        assert_eq!(actions[0], ResponderAction::SendCnp { qpn: 1 });
        assert!(matches!(actions[1], ResponderAction::WritePayload { .. }));
        assert!(matches!(actions[2], ResponderAction::SendAck { .. }));
        // A CE-marked duplicate still signals congestion.
        let again = r.on_packet(&mut st, &pkt);
        assert_eq!(again[0], ResponderAction::SendCnp { qpn: 1 });
        assert!(again.contains(&ResponderAction::DroppedDuplicate));
    }

    #[test]
    fn unmarked_packets_never_generate_cnps() {
        let (mut st, mut r) = setup();
        let actions = r.on_packet(&mut st, &write_only(0, 0x1000, b"abc"));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, ResponderAction::SendCnp { .. })));
    }

    #[test]
    fn unknown_qp_is_dropped() {
        let (mut st, mut r) = setup();
        let pkt = write_only(0, 0, b"x");
        let mut pkt2 = pkt.clone();
        pkt2.bth.dest_qp = 7; // Initialized table has only QP 1.
        let actions = r.on_packet(&mut st, &pkt2);
        assert_eq!(actions, vec![ResponderAction::DroppedInvalid]);
    }
}
