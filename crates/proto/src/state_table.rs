//! The State Table: per-QP PSN state for both NIC roles.
//!
//! §4.1: "The State Table stores all packet sequence numbers (PSNs) to
//! define the valid, invalid, and duplicate PSN regions. This information
//! is stored for two cases when the NIC acts as a responder and when it
//! acts as a requester." Figure 3 shows the 4-step interaction — request
//! entry by QPN, response, PSN check, concurrent write-back — which the
//! paper bounds at ~5 cycles per packet; the NIC simulation charges that
//! latency, while this module supplies the logic.

use strom_wire::bth::{Psn, Qpn};

use crate::psn::{classify, psn_add, PsnClass};

/// Per-QP PSN state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpPsnState {
    /// Responder role: the next PSN we expect from the remote requester.
    pub epsn: Psn,
    /// Requester role: the next PSN we will assign to an outgoing request.
    pub next_psn: Psn,
    /// Requester role: the oldest PSN not yet acknowledged.
    pub oldest_unacked: Psn,
}

/// The State Table, indexed by QPN.
///
/// The hardware sizes this structure at compile time ("the number of
/// supported queue pairs is a compile-time parameter", §4.1); we mirror
/// that with a fixed capacity chosen at construction.
///
/// # Examples
///
/// ```
/// use strom_proto::{StateTable, PsnClass};
/// let mut table = StateTable::new(8);
/// table.init_qp(3, 100, 200);
/// assert_eq!(table.classify_request(3, 200), Some(PsnClass::Valid));
/// assert_eq!(table.classify_request(3, 199), Some(PsnClass::Duplicate));
/// assert_eq!(table.classify_request(3, 201), Some(PsnClass::Invalid));
/// ```
#[derive(Debug, Clone)]
pub struct StateTable {
    entries: Vec<Option<QpPsnState>>,
}

impl StateTable {
    /// Creates a table supporting QPNs `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: vec![None; capacity],
        }
    }

    /// The number of QP slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Initializes a QP with its starting PSNs (driver `QP init` command).
    ///
    /// # Panics
    ///
    /// Panics if `qpn` is out of range — the driver validates QPNs before
    /// issuing commands.
    pub fn init_qp(&mut self, qpn: Qpn, local_start_psn: Psn, remote_start_psn: Psn) {
        let slot = self
            .entries
            .get_mut(qpn as usize)
            .unwrap_or_else(|| panic!("QPN {qpn} exceeds State Table capacity"));
        *slot = Some(QpPsnState {
            epsn: remote_start_psn,
            next_psn: local_start_psn,
            oldest_unacked: local_start_psn,
        });
    }

    /// Looks up a QP's state (Figure 3 step 1/2).
    pub fn get(&self, qpn: Qpn) -> Option<&QpPsnState> {
        self.entries.get(qpn as usize)?.as_ref()
    }

    /// Classifies an incoming request PSN for the responder role
    /// (Figure 3 step 3). Returns `None` for an unknown QP.
    pub fn classify_request(&self, qpn: Qpn, psn: Psn) -> Option<PsnClass> {
        Some(classify(psn, self.get(qpn)?.epsn))
    }

    /// Advances the responder's expected PSN by `n` packets after accepting
    /// a valid request (Figure 3 step 4: "upd. ePSN").
    ///
    /// A READ request advances by the number of response packets it will
    /// consume, per the RC rule that read responses share the request PSN
    /// space.
    pub fn advance_epsn(&mut self, qpn: Qpn, n: u32) {
        if let Some(Some(st)) = self.entries.get_mut(qpn as usize) {
            st.epsn = psn_add(st.epsn, n);
        }
    }

    /// Allocates `n` consecutive PSNs for an outgoing request; returns the
    /// first.
    pub fn alloc_psns(&mut self, qpn: Qpn, n: u32) -> Option<Psn> {
        let st = self.entries.get_mut(qpn as usize)?.as_mut()?;
        let first = st.next_psn;
        st.next_psn = psn_add(st.next_psn, n);
        Some(first)
    }

    /// Records an acknowledgement for everything up to and including `psn`.
    ///
    /// Returns `true` if the ACK moved the unacked window forward (i.e. it
    /// was not stale).
    pub fn ack_up_to(&mut self, qpn: Qpn, psn: Psn) -> bool {
        let Some(Some(st)) = self.entries.get_mut(qpn as usize) else {
            return false;
        };
        // The ACK names the last PSN being acknowledged; the new oldest
        // unacked is one past it. Ignore ACKs behind the current window.
        if classify(psn, st.oldest_unacked) == PsnClass::Duplicate {
            return false;
        }
        st.oldest_unacked = psn_add(psn, 1);
        true
    }

    /// Whether the requester side has unacknowledged packets in flight.
    pub fn has_unacked(&self, qpn: Qpn) -> bool {
        self.get(qpn)
            .map(|st| st.oldest_unacked != st.next_psn)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> StateTable {
        let mut t = StateTable::new(8);
        t.init_qp(3, 100, 200);
        t
    }

    #[test]
    fn init_and_lookup() {
        let t = table();
        let st = t.get(3).unwrap();
        assert_eq!(st.epsn, 200);
        assert_eq!(st.next_psn, 100);
        assert_eq!(st.oldest_unacked, 100);
        assert!(t.get(4).is_none());
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn classify_against_epsn() {
        let t = table();
        assert_eq!(t.classify_request(3, 200), Some(PsnClass::Valid));
        assert_eq!(t.classify_request(3, 199), Some(PsnClass::Duplicate));
        assert_eq!(t.classify_request(3, 201), Some(PsnClass::Invalid));
        assert_eq!(t.classify_request(5, 200), None);
    }

    #[test]
    fn epsn_advance() {
        let mut t = table();
        t.advance_epsn(3, 1);
        assert_eq!(t.get(3).unwrap().epsn, 201);
        // A 3-packet read advances by 3.
        t.advance_epsn(3, 3);
        assert_eq!(t.get(3).unwrap().epsn, 204);
    }

    #[test]
    fn psn_allocation_is_consecutive() {
        let mut t = table();
        assert_eq!(t.alloc_psns(3, 2), Some(100));
        assert_eq!(t.alloc_psns(3, 1), Some(102));
        assert_eq!(t.get(3).unwrap().next_psn, 103);
        assert_eq!(t.alloc_psns(6, 1), None, "uninitialized QP");
    }

    #[test]
    fn ack_window_advances() {
        let mut t = table();
        t.alloc_psns(3, 5); // PSNs 100..105 outstanding.
        assert!(t.has_unacked(3));
        assert!(t.ack_up_to(3, 102));
        assert_eq!(t.get(3).unwrap().oldest_unacked, 103);
        assert!(t.has_unacked(3));
        assert!(t.ack_up_to(3, 104));
        assert!(!t.has_unacked(3));
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut t = table();
        t.alloc_psns(3, 5);
        assert!(t.ack_up_to(3, 103));
        assert!(!t.ack_up_to(3, 101), "stale ACK must not move the window");
        assert_eq!(t.get(3).unwrap().oldest_unacked, 104);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn out_of_range_qpn_panics_on_init() {
        let mut t = StateTable::new(2);
        t.init_qp(2, 0, 0);
    }
}
