//! DCQCN-style per-QP transmit rate control.
//!
//! The reaction-point half of the congestion-control loop (Zhu et al.,
//! SIGCOMM'15, simplified): switches mark CE on frames crossing an egress
//! threshold, the responder echoes each mark back to the sender as a CNP
//! packet, and this module turns the CNP stream into a transmit rate for
//! the requester's pacer.
//!
//! Per QP the state is `(rate, target, alpha)`:
//!
//! * **On CNP** (at most once per `cnp_holdoff` ticks): the current rate
//!   becomes the recovery target, the rate is cut multiplicatively by
//!   `1 - alpha/2`, and `alpha` rises toward 1
//!   (`alpha <- (1-g)*alpha + g`), so a congested QP cuts harder on the
//!   next CNP.
//! * **Alpha decay**: every `alpha_period` ticks without a CNP,
//!   `alpha <- (1-g)*alpha` — the congestion estimate cools off.
//! * **Rate recovery**: every `increase_period` ticks since the last cut
//!   the QP runs one recovery round: *fast recovery* for the first
//!   `fast_recovery_rounds` rounds (`rate <- (rate+target)/2`), then
//!   *additive increase* (`target += ai_rate`), escalating to
//!   *hyper increase* (`target += hyper_ai_rate`) after prolonged
//!   CNP silence. Once the rate is back at line rate the QP leaves the
//!   congested state entirely.
//!
//! Sans-IO like the rest of this crate: times are opaque ticks (the
//! testbed feeds picoseconds), rates are plain bits/s, and all state
//! advances lazily on access — no timer events, no RNG, deterministic by
//! construction.

/// Tuning knobs for [`Dcqcn`]. Times are opaque ticks; rates are bits/s.
#[derive(Debug, Clone, Copy)]
pub struct DcqcnConfig {
    /// Line rate (and rate ceiling) in bits/s.
    pub line_rate: f64,
    /// Floor the rate never drops below (keeps the QP alive so recovery
    /// and retransmission still make progress), bits/s.
    pub min_rate: f64,
    /// EWMA gain `g` for alpha updates.
    pub gain: f64,
    /// Ticks between alpha-decay steps while no CNP arrives.
    pub alpha_period: u64,
    /// Ticks between rate-recovery rounds after a cut.
    pub increase_period: u64,
    /// Recovery rounds spent in fast recovery before additive increase.
    pub fast_recovery_rounds: u32,
    /// Additive-increase step, bits/s per round.
    pub ai_rate: f64,
    /// Hyper-increase step, bits/s per round (after prolonged silence).
    pub hyper_ai_rate: f64,
    /// Minimum ticks between successive rate cuts (CNPs inside the
    /// holdoff window are absorbed by the previous cut).
    pub cnp_holdoff: u64,
}

impl DcqcnConfig {
    /// A reasonable DCQCN tuning for the given line rate: the SIGCOMM'15
    /// defaults (g = 1/256, 55 us timers, 5 fast-recovery rounds) with
    /// the step sizes scaled to the line rate, assuming picosecond ticks.
    pub fn for_line_rate(bits_per_sec: f64) -> Self {
        const MICROS: u64 = 1_000_000; // Picoseconds per microsecond.
        DcqcnConfig {
            line_rate: bits_per_sec,
            min_rate: bits_per_sec / 256.0,
            gain: 1.0 / 256.0,
            alpha_period: 55 * MICROS,
            increase_period: 55 * MICROS,
            fast_recovery_rounds: 5,
            ai_rate: bits_per_sec / 200.0,
            hyper_ai_rate: bits_per_sec / 20.0,
            cnp_holdoff: 50 * MICROS,
        }
    }
}

/// Per-QP reaction-point state.
#[derive(Debug, Clone, Copy)]
struct QpRate {
    /// Current transmit rate, bits/s.
    rate: f64,
    /// Recovery target (the rate in force when the last CNP arrived).
    target: f64,
    /// Congestion estimate in [0, 1].
    alpha: f64,
    /// Tick of the last rate cut.
    last_cut: u64,
    /// Anchor for elapsed alpha-decay periods.
    alpha_anchor: u64,
    /// Anchor for elapsed recovery rounds.
    increase_anchor: u64,
    /// Recovery rounds completed since the last cut.
    rounds: u32,
    /// Whether this QP is currently rate-limited at all. An uncongested
    /// QP costs nothing: `rate()` short-circuits to line rate.
    congested: bool,
}

impl QpRate {
    fn idle(line_rate: f64) -> Self {
        QpRate {
            rate: line_rate,
            target: line_rate,
            alpha: 1.0,
            last_cut: 0,
            alpha_anchor: 0,
            increase_anchor: 0,
            rounds: 0,
            congested: false,
        }
    }
}

/// The DCQCN reaction point: one rate-control state machine per QP.
#[derive(Debug)]
pub struct Dcqcn {
    cfg: DcqcnConfig,
    qp: Vec<QpRate>,
    /// CNPs accepted (caused or refreshed a congested state).
    cnps: u64,
}

impl Dcqcn {
    /// Creates the reaction point for `num_qps` QPs, all at line rate.
    pub fn new(cfg: DcqcnConfig, num_qps: usize) -> Self {
        assert!(cfg.line_rate > 0.0 && cfg.min_rate > 0.0);
        assert!(cfg.min_rate <= cfg.line_rate);
        assert!((0.0..=1.0).contains(&cfg.gain));
        assert!(cfg.alpha_period > 0 && cfg.increase_period > 0);
        Dcqcn {
            cfg,
            qp: vec![QpRate::idle(cfg.line_rate); num_qps],
            cnps: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DcqcnConfig {
        &self.cfg
    }

    /// Total CNPs processed.
    pub fn cnps(&self) -> u64 {
        self.cnps
    }

    /// Whether `qpn` is currently below line rate (needs pacing).
    pub fn is_limited(&self, qpn: usize) -> bool {
        self.qp[qpn].congested
    }

    /// A CNP for `qpn` arrived at `now`.
    pub fn on_cnp(&mut self, qpn: usize, now: u64) {
        self.cnps += 1;
        self.advance(qpn, now);
        let s = &mut self.qp[qpn];
        if s.congested && now.saturating_sub(s.last_cut) < self.cfg.cnp_holdoff {
            return; // Absorbed by the previous cut.
        }
        s.alpha = ((1.0 - self.cfg.gain) * s.alpha + self.cfg.gain).min(1.0);
        s.target = s.rate;
        s.rate = (s.rate * (1.0 - s.alpha / 2.0)).max(self.cfg.min_rate);
        s.last_cut = now;
        s.alpha_anchor = now;
        s.increase_anchor = now;
        s.rounds = 0;
        s.congested = true;
    }

    /// The transmit rate for `qpn` at `now`, in bits/s (after applying
    /// any recovery rounds that have elapsed).
    pub fn rate(&mut self, qpn: usize, now: u64) -> f64 {
        self.advance(qpn, now);
        self.qp[qpn].rate
    }

    /// Applies elapsed alpha-decay periods and recovery rounds to `qpn`.
    fn advance(&mut self, qpn: usize, now: u64) {
        let cfg = self.cfg;
        let s = &mut self.qp[qpn];
        if !s.congested {
            return;
        }
        // Alpha decay: one EWMA step per elapsed period without a CNP.
        let decays = now.saturating_sub(s.alpha_anchor) / cfg.alpha_period;
        if decays > 0 {
            s.alpha *= (1.0 - cfg.gain).powi(decays.min(100_000) as i32);
            s.alpha_anchor += decays * cfg.alpha_period;
        }
        // Recovery rounds: fast recovery, then additive, then hyper.
        let due = now.saturating_sub(s.increase_anchor) / cfg.increase_period;
        for _ in 0..due {
            s.rounds += 1;
            if s.rounds > cfg.fast_recovery_rounds {
                let step = if s.rounds > 3 * cfg.fast_recovery_rounds {
                    cfg.hyper_ai_rate
                } else {
                    cfg.ai_rate
                };
                s.target = (s.target + step).min(cfg.line_rate);
            }
            s.rate = (s.rate + s.target) / 2.0;
            if s.rate >= cfg.line_rate * 0.999 {
                // Fully recovered: back to an idle, unpaced QP.
                *s = QpRate::idle(cfg.line_rate);
                return;
            }
        }
        s.increase_anchor += due * cfg.increase_period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MICROS: u64 = 1_000_000;

    fn dcqcn() -> Dcqcn {
        Dcqcn::new(DcqcnConfig::for_line_rate(10e9), 4)
    }

    #[test]
    fn idle_qps_run_at_line_rate() {
        let mut d = dcqcn();
        assert_eq!(d.rate(0, 0), 10e9);
        assert!(!d.is_limited(0));
    }

    #[test]
    fn first_cnp_halves_the_rate() {
        let mut d = dcqcn();
        d.on_cnp(0, 1000);
        // alpha after update = (1-g)·1 + g = 1, so the cut is rate/2.
        let r = d.rate(0, 1000);
        assert!((r - 5e9).abs() < 1e6, "rate after first CNP = {r}");
        assert!(d.is_limited(0));
        assert_eq!(d.cnps(), 1);
    }

    #[test]
    fn cnps_inside_the_holdoff_are_absorbed() {
        let mut d = dcqcn();
        d.on_cnp(0, 0);
        let r1 = d.rate(0, 0);
        d.on_cnp(0, 10 * MICROS); // Within the 50 us holdoff.
        assert_eq!(d.rate(0, 10 * MICROS), r1);
        d.on_cnp(0, 60 * MICROS); // Past it: cuts again.
        assert!(d.rate(0, 60 * MICROS) < r1);
    }

    #[test]
    fn sustained_cnps_floor_at_min_rate() {
        let mut d = dcqcn();
        let mut now = 0;
        for _ in 0..64 {
            d.on_cnp(0, now);
            now += 51 * MICROS;
        }
        let floor = d.config().min_rate;
        assert!(d.rate(0, now) >= floor);
        assert!(d.rate(0, now) <= floor * 2.0);
    }

    #[test]
    fn fast_recovery_climbs_back_toward_the_target() {
        let mut d = dcqcn();
        d.on_cnp(0, 0);
        let cut = d.rate(0, 0);
        // One recovery round: halfway back to the 10 Gbit/s target.
        let r = d.rate(0, 56 * MICROS);
        assert!((r - (cut + 10e9) / 2.0).abs() < 1e6);
        // More rounds keep climbing monotonically.
        let mut prev = r;
        for i in 2..8u64 {
            let r = d.rate(0, (1 + 55 * i) * MICROS);
            assert!(r >= prev, "round {i}: {r} < {prev}");
            prev = r;
        }
    }

    #[test]
    fn prolonged_silence_recovers_to_line_rate_and_unlimits() {
        let mut d = dcqcn();
        for i in 0..8u64 {
            d.on_cnp(0, i * 51 * MICROS);
        }
        // ~30 ms of silence: additive then hyper increase restore line
        // rate and the QP leaves the congested state.
        let r = d.rate(0, 30_000 * MICROS);
        assert_eq!(r, 10e9);
        assert!(!d.is_limited(0));
    }

    #[test]
    fn alpha_decay_softens_later_cuts() {
        // QP 0 cuts twice in quick succession (alpha still high on the
        // second cut); QP 1 cuts once, idles for three alpha periods so
        // alpha decays, then cuts again. Relative to the rate in force
        // just before each second cut, QP 1 must keep a larger fraction.
        // A large gain makes the decay visible within a few periods.
        let mut cfg = DcqcnConfig::for_line_rate(10e9);
        cfg.gain = 0.5;
        let mut d = Dcqcn::new(cfg, 4);
        d.on_cnp(0, 0);
        d.on_cnp(1, 0);
        let r0 = d.rate(0, 51 * MICROS);
        let r1 = d.rate(1, 170 * MICROS);
        assert!(d.is_limited(1), "must still be congested for the test");
        d.on_cnp(0, 51 * MICROS);
        d.on_cnp(1, 170 * MICROS);
        let frac0 = d.rate(0, 51 * MICROS) / r0;
        let frac1 = d.rate(1, 170 * MICROS) / r1;
        assert!(
            frac1 > frac0,
            "decayed alpha should cut less: kept {frac1} vs {frac0}"
        );
    }

    #[test]
    fn qps_are_independent() {
        let mut d = dcqcn();
        d.on_cnp(2, 0);
        assert_eq!(d.rate(0, 0), 10e9);
        assert_eq!(d.rate(1, 0), 10e9);
        assert!(d.rate(2, 0) < 10e9);
    }

    #[test]
    fn deterministic_given_the_same_cnp_schedule() {
        let run = || {
            let mut d = dcqcn();
            let mut out = Vec::new();
            for i in 0..40u64 {
                if i % 3 == 0 {
                    d.on_cnp(0, i * 60 * MICROS);
                }
                out.push(d.rate(0, i * 60 * MICROS).to_bits());
            }
            out
        };
        assert_eq!(run(), run());
    }
}
