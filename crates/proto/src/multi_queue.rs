//! The Multi-Queue: per-QP linked lists of outstanding RDMA reads.
//!
//! §4.1: "To support multiple outstanding RDMA read operations per queue
//! pair we implement a Multi-Queue data structure which logically
//! implements one linked-list per queue pair. Each linked list has a
//! variable length defined at runtime, but the combined length of all
//! linked lists is fixed. The actual hardware implementation consists of
//! two fixed-size arrays stored in on-chip memory. The first one stores
//! the list metadata pointing to the head and tail of the list. The second
//! array contains all list elements where each element consists of a local
//! host memory pointer (the target of the read operation), a pointer to
//! the next element in the list, and a flag indicating if this is the
//! tail."
//!
//! This module reproduces exactly that layout: two fixed arrays plus a
//! free list, no heap allocation after construction.

use strom_wire::bth::Qpn;

/// Sentinel index meaning "no element".
const NIL: u32 = u32::MAX;

/// One element of the element array, as described in the paper.
#[derive(Debug, Clone, Copy)]
struct Element {
    /// Local host memory pointer — where arriving read-response data lands.
    host_ptr: u64,
    /// Remaining bytes expected for this read (bookkeeping the requester
    /// FSM needs to know when the read completes).
    remaining: u32,
    /// Index of the next element in this QP's list.
    next: u32,
    /// Whether this element is the tail of its list.
    is_tail: bool,
}

/// Per-QP list metadata: head and tail indices.
#[derive(Debug, Clone, Copy)]
struct ListMeta {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for ListMeta {
    fn default() -> Self {
        ListMeta {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// An outstanding read popped or peeked from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingRead {
    /// Local DMA target of the next response byte.
    pub host_ptr: u64,
    /// Bytes still expected.
    pub remaining: u32,
}

/// The Multi-Queue: `num_qps` logical lists over `total_elements` slots.
///
/// # Examples
///
/// ```
/// use strom_proto::MultiQueue;
/// let mut mq = MultiQueue::new(4, 16);
/// mq.push(1, 0x1000, 100);
/// let (addr, done) = mq.consume(1, 60).unwrap();
/// assert_eq!((addr, done), (0x1000, false));
/// let (addr, done) = mq.consume(1, 40).unwrap();
/// assert_eq!((addr, done), (0x1000 + 60, true));
/// ```
#[derive(Debug, Clone)]
pub struct MultiQueue {
    meta: Vec<ListMeta>,
    elements: Vec<Element>,
    free_head: u32,
    free_count: u32,
}

impl MultiQueue {
    /// Creates a Multi-Queue for `num_qps` queue pairs sharing
    /// `total_elements` outstanding-read slots.
    pub fn new(num_qps: usize, total_elements: usize) -> Self {
        assert!(total_elements > 0, "need at least one element slot");
        assert!(
            total_elements < NIL as usize,
            "element count overflows index"
        );
        let mut elements = Vec::with_capacity(total_elements);
        for i in 0..total_elements {
            elements.push(Element {
                host_ptr: 0,
                remaining: 0,
                next: if i + 1 < total_elements {
                    (i + 1) as u32
                } else {
                    NIL
                },
                is_tail: false,
            });
        }
        Self {
            meta: vec![ListMeta::default(); num_qps],
            elements,
            free_head: 0,
            free_count: total_elements as u32,
        }
    }

    /// Free slots across all lists.
    pub fn free_slots(&self) -> u32 {
        self.free_count
    }

    /// The length of one QP's list.
    pub fn len(&self, qpn: Qpn) -> u32 {
        self.meta.get(qpn as usize).map(|m| m.len).unwrap_or(0)
    }

    /// Whether a QP has no outstanding reads.
    pub fn is_empty(&self, qpn: Qpn) -> bool {
        self.len(qpn) == 0
    }

    /// Appends an outstanding read for `qpn`.
    ///
    /// Returns `false` if the shared element array is exhausted (the host
    /// must back off, exactly as with a full hardware queue).
    pub fn push(&mut self, qpn: Qpn, host_ptr: u64, len: u32) -> bool {
        if self.free_head == NIL {
            return false;
        }
        let Some(meta) = self.meta.get_mut(qpn as usize) else {
            return false;
        };
        let idx = self.free_head;
        self.free_head = self.elements[idx as usize].next;
        self.free_count -= 1;

        let e = &mut self.elements[idx as usize];
        e.host_ptr = host_ptr;
        e.remaining = len;
        e.next = NIL;
        e.is_tail = true;

        if meta.tail == NIL {
            meta.head = idx;
        } else {
            let t = meta.tail as usize;
            self.elements[t].next = idx;
            self.elements[t].is_tail = false;
        }
        meta.tail = idx;
        meta.len += 1;
        true
    }

    /// The head of a QP's list — the read whose response arrives next
    /// (RC responses arrive in request order).
    pub fn peek(&self, qpn: Qpn) -> Option<OutstandingRead> {
        let meta = self.meta.get(qpn as usize)?;
        if meta.head == NIL {
            return None;
        }
        let e = &self.elements[meta.head as usize];
        Some(OutstandingRead {
            host_ptr: e.host_ptr,
            remaining: e.remaining,
        })
    }

    /// Consumes `bytes` of response data for the head read of `qpn`.
    ///
    /// Returns the DMA target address for those bytes and whether the read
    /// completed (and was popped). Returns `None` if no read is
    /// outstanding — a protocol violation the caller drops.
    pub fn consume(&mut self, qpn: Qpn, bytes: u32) -> Option<(u64, bool)> {
        let meta = self.meta.get_mut(qpn as usize)?;
        if meta.head == NIL {
            return None;
        }
        let idx = meta.head;
        let e = &mut self.elements[idx as usize];
        let addr = e.host_ptr;
        let consumed = bytes.min(e.remaining);
        e.host_ptr += u64::from(consumed);
        e.remaining -= consumed;
        let done = e.remaining == 0;
        if done {
            meta.head = e.next;
            if meta.head == NIL {
                meta.tail = NIL;
            }
            meta.len -= 1;
            // Return the slot to the free list.
            let e = &mut self.elements[idx as usize];
            e.next = self.free_head;
            e.is_tail = false;
            self.free_head = idx;
            self.free_count += 1;
        }
        Some((addr, done))
    }

    /// Drops every outstanding read of `qpn`, returning its slots to the
    /// shared free list. Returns the number of reads flushed.
    ///
    /// Used when a QP transitions to the error state: its list must not
    /// keep holding shared capacity hostage.
    pub fn flush(&mut self, qpn: Qpn) -> u32 {
        let Some(meta) = self.meta.get_mut(qpn as usize) else {
            return 0;
        };
        let flushed = meta.len;
        let mut idx = meta.head;
        while idx != NIL {
            let e = &mut self.elements[idx as usize];
            let next = e.next;
            e.next = self.free_head;
            e.is_tail = false;
            self.free_head = idx;
            self.free_count += 1;
            idx = next;
        }
        *meta = ListMeta::default();
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_peek_consume_single() {
        let mut mq = MultiQueue::new(4, 8);
        assert!(mq.push(1, 0x1000, 100));
        assert_eq!(mq.len(1), 1);
        assert_eq!(
            mq.peek(1),
            Some(OutstandingRead {
                host_ptr: 0x1000,
                remaining: 100
            })
        );
        let (addr, done) = mq.consume(1, 60).unwrap();
        assert_eq!(addr, 0x1000);
        assert!(!done);
        let (addr, done) = mq.consume(1, 40).unwrap();
        assert_eq!(addr, 0x1000 + 60);
        assert!(done);
        assert!(mq.is_empty(1));
    }

    #[test]
    fn lists_are_fifo_per_qp() {
        let mut mq = MultiQueue::new(2, 8);
        mq.push(0, 0xa000, 10);
        mq.push(0, 0xb000, 10);
        mq.push(1, 0xc000, 10);
        let (a, done) = mq.consume(0, 10).unwrap();
        assert_eq!((a, done), (0xa000, true));
        let (b, _) = mq.consume(0, 5).unwrap();
        assert_eq!(b, 0xb000);
        let (c, _) = mq.consume(1, 10).unwrap();
        assert_eq!(c, 0xc000);
    }

    #[test]
    fn shared_capacity_is_fixed() {
        let mut mq = MultiQueue::new(4, 3);
        assert!(mq.push(0, 0, 1));
        assert!(mq.push(1, 0, 1));
        assert!(mq.push(2, 0, 1));
        assert_eq!(mq.free_slots(), 0);
        assert!(!mq.push(3, 0, 1), "combined length of all lists is fixed");
    }

    #[test]
    fn slots_recycle_after_completion() {
        let mut mq = MultiQueue::new(2, 2);
        mq.push(0, 0, 8);
        mq.push(0, 8, 8);
        assert!(!mq.push(1, 0, 8));
        mq.consume(0, 8);
        assert_eq!(mq.free_slots(), 1);
        assert!(
            mq.push(1, 0, 8),
            "freed slot must be reusable by another QP"
        );
    }

    #[test]
    fn consume_without_outstanding_read_is_an_error() {
        let mut mq = MultiQueue::new(1, 2);
        assert!(mq.consume(0, 8).is_none());
    }

    #[test]
    fn variable_length_lists_share_the_array() {
        let mut mq = MultiQueue::new(3, 10);
        for i in 0..7 {
            assert!(mq.push(0, i * 100, 1));
        }
        for i in 0..3 {
            assert!(mq.push(2, i * 100, 1));
        }
        assert_eq!(mq.len(0), 7);
        assert_eq!(mq.len(2), 3);
        assert_eq!(mq.len(1), 0);
        // Drain QP 0 in order.
        for i in 0..7 {
            let (addr, done) = mq.consume(0, 1).unwrap();
            assert_eq!(addr, i * 100);
            assert!(done);
        }
    }

    #[test]
    fn unknown_qpn_is_rejected() {
        let mut mq = MultiQueue::new(1, 2);
        assert!(!mq.push(5, 0, 1));
        assert!(mq.peek(5).is_none());
        assert!(mq.consume(5, 1).is_none());
        assert_eq!(mq.flush(5), 0);
    }

    #[test]
    fn flush_frees_every_slot_of_one_qp() {
        let mut mq = MultiQueue::new(2, 4);
        mq.push(0, 0x100, 8);
        mq.push(0, 0x200, 8);
        mq.push(1, 0x300, 8);
        assert_eq!(mq.flush(0), 2);
        assert!(mq.is_empty(0));
        assert!(mq.peek(0).is_none());
        // QP 1 untouched, and the freed slots are reusable.
        assert_eq!(mq.len(1), 1);
        assert_eq!(mq.free_slots(), 3);
        assert!(mq.push(1, 0x400, 8));
        assert!(mq.push(1, 0x500, 8));
        assert!(mq.push(1, 0x600, 8));
        assert_eq!(mq.free_slots(), 0);
        // Drain QP 1 in order to prove list integrity after the flush.
        for want in [0x300u64, 0x400, 0x500, 0x600] {
            let (addr, done) = mq.consume(1, 8).unwrap();
            assert_eq!(addr, want);
            assert!(done);
        }
    }

    #[test]
    fn flush_on_empty_qp_is_a_noop() {
        let mut mq = MultiQueue::new(2, 4);
        assert_eq!(mq.flush(0), 0);
        assert_eq!(mq.free_slots(), 4);
    }
}
