//! The Retransmission Timer: one countdown per queue pair.
//!
//! §4.1: "The Retransmission Timer implements one timer per queue pair to
//! detect packet loss. The timers are implemented as an array of time
//! intervals stored in on-chip memory. The Retransmission Timer module is
//! continuously iterating over this array and decreasing the time
//! intervals of all active timers. If any timer reaches zero an event is
//! triggered and forwarded to the transmitting data path to retransmit the
//! lost packet(s)."
//!
//! The hardware decrements in a scan loop; functionally that is a per-QP
//! deadline, which is how we expose it (`expired` returns every QP whose
//! deadline has passed). Timer values are opaque ticks — the NIC
//! simulation feeds it simulated time.

use strom_telemetry::{TraceEvent, TraceSink};
use strom_wire::bth::Qpn;

/// Per-QP retransmission timers over an opaque monotonic tick domain.
///
/// Consecutive expirations without progress back the timeout off
/// exponentially: the n-th retry waits `timeout << min(n, cap)`. An ACK
/// that advances the window ([`Self::note_progress`]) resets the backoff,
/// and the attempt counter doubles as the retry budget the NIC checks
/// against its `max_retries` configuration.
#[derive(Debug, Clone)]
pub struct RetransmissionTimer {
    /// `None` = inactive; `Some(deadline)` = armed.
    deadlines: Vec<Option<u64>>,
    /// Consecutive expirations per QP since the last forward progress.
    attempts: Vec<u32>,
    /// The retransmission timeout added to "now" when arming.
    timeout: u64,
    /// Cap on the backoff shift, bounding the longest retry interval.
    backoff_cap: u32,
    /// Total number of expirations observed (diagnostics).
    expirations: u64,
    /// Expirations that re-armed with a backed-off (doubled+) timeout.
    backoff_events: u64,
    /// Trace sink for backoff events (disabled by default).
    trace: TraceSink,
}

impl RetransmissionTimer {
    /// Creates timers for `num_qps` queue pairs with the given timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero — a zero timeout would retransmit
    /// everything instantly.
    pub fn new(num_qps: usize, timeout: u64) -> Self {
        assert!(timeout > 0, "retransmission timeout must be positive");
        Self {
            deadlines: vec![None; num_qps],
            attempts: vec![0; num_qps],
            timeout,
            backoff_cap: 6,
            expirations: 0,
            backoff_events: 0,
            trace: TraceSink::default(),
        }
    }

    /// Attaches a trace sink; backed-off expirations are emitted to it.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Sets the cap on the exponential-backoff shift (builder style).
    pub fn with_backoff_cap(mut self, cap: u32) -> Self {
        // A shift ≥ 64 would overflow; anything near it is already an
        // absurd multiplier for a timeout.
        self.backoff_cap = cap.min(32);
        self
    }

    /// The configured (base, un-backed-off) timeout.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// The current timeout for `qpn`, including backoff.
    pub fn current_timeout(&self, qpn: Qpn) -> u64 {
        let shift = self
            .attempts
            .get(qpn as usize)
            .map(|&a| a.min(self.backoff_cap))
            .unwrap_or(0);
        self.timeout << shift
    }

    /// Arms (or re-arms) the timer for `qpn` at `now` plus the current
    /// (possibly backed-off) timeout.
    ///
    /// Called when a request packet is transmitted. An out-of-range QPN
    /// is a caller bug — the timer array is sized to the QP table — so it
    /// trips a debug assertion; release builds ignore the call.
    pub fn arm(&mut self, qpn: Qpn, now: u64) {
        debug_assert!(
            (qpn as usize) < self.deadlines.len(),
            "qpn {qpn} out of range: timer array holds {} QPs",
            self.deadlines.len()
        );
        let deadline = now + self.current_timeout(qpn);
        if let Some(slot) = self.deadlines.get_mut(qpn as usize) {
            *slot = Some(deadline);
        }
    }

    /// Disarms the timer for `qpn`.
    ///
    /// Called when every outstanding packet of the QP has been
    /// acknowledged.
    pub fn disarm(&mut self, qpn: Qpn) {
        if let Some(slot) = self.deadlines.get_mut(qpn as usize) {
            *slot = None;
        }
    }

    /// Whether the timer for `qpn` is armed.
    pub fn is_armed(&self, qpn: Qpn) -> bool {
        self.deadlines
            .get(qpn as usize)
            .map(|d| d.is_some())
            .unwrap_or(false)
    }

    /// The earliest armed deadline, if any — the next time the simulation
    /// must poll [`Self::expired`].
    pub fn next_deadline(&self) -> Option<u64> {
        self.deadlines.iter().flatten().copied().min()
    }

    /// Collects every QP whose deadline has passed at `now`, disarming
    /// each (the requester re-arms when it retransmits).
    ///
    /// Each expiration bumps the QP's attempt counter, so the next
    /// [`Self::arm`] waits longer.
    pub fn expired(&mut self, now: u64) -> Vec<Qpn> {
        let mut out = Vec::new();
        for (qpn, slot) in self.deadlines.iter_mut().enumerate() {
            if let Some(deadline) = *slot {
                if deadline <= now {
                    *slot = None;
                    self.expirations += 1;
                    if self.attempts[qpn] > 0 {
                        self.backoff_events += 1;
                    }
                    self.attempts[qpn] = self.attempts[qpn].saturating_add(1);
                    let attempts = self.attempts[qpn];
                    if attempts > 1 {
                        // The re-arm timeout after this expiration, with
                        // the backoff shift applied (current_timeout,
                        // inlined to keep the borrow local).
                        let shift = attempts.min(self.backoff_cap);
                        self.trace.emit(TraceEvent::Backoff {
                            qpn: qpn as Qpn,
                            attempts,
                            timeout: self.timeout << shift,
                        });
                    }
                    out.push(qpn as Qpn);
                }
            }
        }
        out
    }

    /// Consecutive expirations for `qpn` since its last forward progress —
    /// the value the NIC compares against its retry budget.
    pub fn attempts(&self, qpn: Qpn) -> u32 {
        self.attempts.get(qpn as usize).copied().unwrap_or(0)
    }

    /// Records forward progress on `qpn` (the ACK window moved): resets
    /// the backoff and the retry budget.
    pub fn note_progress(&mut self, qpn: Qpn) {
        if let Some(a) = self.attempts.get_mut(qpn as usize) {
            *a = 0;
        }
    }

    /// Total expirations observed since construction.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Expirations that re-armed with a backed-off (≥ doubled) timeout.
    pub fn backoff_events(&self) -> u64 {
        self.backoff_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_expire() {
        let mut t = RetransmissionTimer::new(4, 100);
        t.arm(2, 1000);
        assert!(t.is_armed(2));
        assert!(t.expired(1099).is_empty());
        assert_eq!(t.expired(1100), vec![2]);
        assert!(!t.is_armed(2), "expiry disarms");
        assert_eq!(t.expirations(), 1);
    }

    #[test]
    fn ack_disarms_before_expiry() {
        let mut t = RetransmissionTimer::new(4, 100);
        t.arm(1, 0);
        t.disarm(1);
        assert!(t.expired(1000).is_empty());
    }

    #[test]
    fn rearm_pushes_deadline_out() {
        let mut t = RetransmissionTimer::new(4, 100);
        t.arm(0, 0);
        t.arm(0, 50); // Retransmitted packet re-arms.
        assert!(t.expired(100).is_empty());
        assert_eq!(t.expired(150), vec![0]);
    }

    #[test]
    fn multiple_qps_expire_together() {
        let mut t = RetransmissionTimer::new(4, 10);
        t.arm(0, 0);
        t.arm(3, 0);
        t.arm(1, 5);
        let mut expired = t.expired(10);
        expired.sort_unstable();
        assert_eq!(expired, vec![0, 3]);
        assert_eq!(t.expired(15), vec![1]);
    }

    #[test]
    fn next_deadline_is_minimum() {
        let mut t = RetransmissionTimer::new(4, 100);
        assert_eq!(t.next_deadline(), None);
        t.arm(0, 50);
        t.arm(1, 10);
        assert_eq!(t.next_deadline(), Some(110));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "out of range"))]
    fn out_of_range_qpn_is_a_debug_assertion() {
        // Arming a QPN outside the table is a caller bug: loud in debug
        // builds, ignored (not UB, not a panic) in release builds.
        let mut t = RetransmissionTimer::new(2, 10);
        t.arm(9, 0);
        assert!(!t.is_armed(9));
        assert!(t.expired(100).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_panics() {
        let _ = RetransmissionTimer::new(1, 0);
    }

    #[test]
    fn consecutive_expirations_back_off_exponentially() {
        let mut t = RetransmissionTimer::new(2, 10).with_backoff_cap(3);
        let mut now = 0u64;
        // Expected per-attempt timeouts: 10, 20, 40, 80, then capped at 80.
        for want in [10u64, 20, 40, 80, 80, 80] {
            t.arm(0, now);
            assert!(t.expired(now + want - 1).is_empty(), "want {want}");
            now += want;
            assert_eq!(t.expired(now), vec![0]);
        }
        assert_eq!(t.attempts(0), 6);
        // First expiration is not a backoff event; the rest are.
        assert_eq!(t.backoff_events(), 5);
    }

    #[test]
    fn backoff_expirations_are_traced() {
        let sink = TraceSink::enabled(16);
        let mut t = RetransmissionTimer::new(2, 10).with_backoff_cap(3);
        t.set_trace(sink.clone());
        let mut now = 0u64;
        for want in [10u64, 20, 40] {
            t.arm(0, now);
            now += want;
            assert_eq!(t.expired(now), vec![0]);
        }
        // The first expiration is not a backoff; the next two are.
        let backoffs: Vec<_> = sink.records().into_iter().map(|r| r.event).collect();
        assert_eq!(
            backoffs,
            vec![
                TraceEvent::Backoff {
                    qpn: 0,
                    attempts: 2,
                    timeout: 40
                },
                TraceEvent::Backoff {
                    qpn: 0,
                    attempts: 3,
                    timeout: 80
                },
            ]
        );
    }

    #[test]
    fn progress_resets_backoff() {
        let mut t = RetransmissionTimer::new(2, 10);
        t.arm(0, 0);
        assert_eq!(t.expired(10), vec![0]);
        assert_eq!(t.current_timeout(0), 20);
        t.note_progress(0);
        assert_eq!(t.attempts(0), 0);
        assert_eq!(t.current_timeout(0), 10);
    }

    #[test]
    fn backoff_is_per_qp() {
        let mut t = RetransmissionTimer::new(2, 10);
        t.arm(0, 0);
        assert_eq!(t.expired(10), vec![0]);
        assert_eq!(t.current_timeout(0), 20);
        assert_eq!(t.current_timeout(1), 10, "QP 1 untouched");
    }
}
