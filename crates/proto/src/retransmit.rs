//! The Retransmission Timer: one countdown per queue pair.
//!
//! §4.1: "The Retransmission Timer implements one timer per queue pair to
//! detect packet loss. The timers are implemented as an array of time
//! intervals stored in on-chip memory. The Retransmission Timer module is
//! continuously iterating over this array and decreasing the time
//! intervals of all active timers. If any timer reaches zero an event is
//! triggered and forwarded to the transmitting data path to retransmit the
//! lost packet(s)."
//!
//! The hardware decrements in a scan loop; functionally that is a per-QP
//! deadline, which is how we expose it (`expired` returns every QP whose
//! deadline has passed). Timer values are opaque ticks — the NIC
//! simulation feeds it simulated time.

use strom_wire::bth::Qpn;

/// Per-QP retransmission timers over an opaque monotonic tick domain.
#[derive(Debug, Clone)]
pub struct RetransmissionTimer {
    /// `None` = inactive; `Some(deadline)` = armed.
    deadlines: Vec<Option<u64>>,
    /// The retransmission timeout added to "now" when arming.
    timeout: u64,
    /// Total number of expirations observed (diagnostics).
    expirations: u64,
}

impl RetransmissionTimer {
    /// Creates timers for `num_qps` queue pairs with the given timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero — a zero timeout would retransmit
    /// everything instantly.
    pub fn new(num_qps: usize, timeout: u64) -> Self {
        assert!(timeout > 0, "retransmission timeout must be positive");
        Self {
            deadlines: vec![None; num_qps],
            timeout,
            expirations: 0,
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Arms (or re-arms) the timer for `qpn` at `now + timeout`.
    ///
    /// Called when a request packet is transmitted.
    pub fn arm(&mut self, qpn: Qpn, now: u64) {
        if let Some(slot) = self.deadlines.get_mut(qpn as usize) {
            *slot = Some(now + self.timeout);
        }
    }

    /// Disarms the timer for `qpn`.
    ///
    /// Called when every outstanding packet of the QP has been
    /// acknowledged.
    pub fn disarm(&mut self, qpn: Qpn) {
        if let Some(slot) = self.deadlines.get_mut(qpn as usize) {
            *slot = None;
        }
    }

    /// Whether the timer for `qpn` is armed.
    pub fn is_armed(&self, qpn: Qpn) -> bool {
        self.deadlines
            .get(qpn as usize)
            .map(|d| d.is_some())
            .unwrap_or(false)
    }

    /// The earliest armed deadline, if any — the next time the simulation
    /// must poll [`Self::expired`].
    pub fn next_deadline(&self) -> Option<u64> {
        self.deadlines.iter().flatten().copied().min()
    }

    /// Collects every QP whose deadline has passed at `now`, disarming
    /// each (the requester re-arms when it retransmits).
    pub fn expired(&mut self, now: u64) -> Vec<Qpn> {
        let mut out = Vec::new();
        for (qpn, slot) in self.deadlines.iter_mut().enumerate() {
            if let Some(deadline) = *slot {
                if deadline <= now {
                    *slot = None;
                    self.expirations += 1;
                    out.push(qpn as Qpn);
                }
            }
        }
        out
    }

    /// Total expirations observed since construction.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_expire() {
        let mut t = RetransmissionTimer::new(4, 100);
        t.arm(2, 1000);
        assert!(t.is_armed(2));
        assert!(t.expired(1099).is_empty());
        assert_eq!(t.expired(1100), vec![2]);
        assert!(!t.is_armed(2), "expiry disarms");
        assert_eq!(t.expirations(), 1);
    }

    #[test]
    fn ack_disarms_before_expiry() {
        let mut t = RetransmissionTimer::new(4, 100);
        t.arm(1, 0);
        t.disarm(1);
        assert!(t.expired(1000).is_empty());
    }

    #[test]
    fn rearm_pushes_deadline_out() {
        let mut t = RetransmissionTimer::new(4, 100);
        t.arm(0, 0);
        t.arm(0, 50); // Retransmitted packet re-arms.
        assert!(t.expired(100).is_empty());
        assert_eq!(t.expired(150), vec![0]);
    }

    #[test]
    fn multiple_qps_expire_together() {
        let mut t = RetransmissionTimer::new(4, 10);
        t.arm(0, 0);
        t.arm(3, 0);
        t.arm(1, 5);
        let mut expired = t.expired(10);
        expired.sort_unstable();
        assert_eq!(expired, vec![0, 3]);
        assert_eq!(t.expired(15), vec![1]);
    }

    #[test]
    fn next_deadline_is_minimum() {
        let mut t = RetransmissionTimer::new(4, 100);
        assert_eq!(t.next_deadline(), None);
        t.arm(0, 50);
        t.arm(1, 10);
        assert_eq!(t.next_deadline(), Some(110));
    }

    #[test]
    fn out_of_range_qpn_is_ignored() {
        let mut t = RetransmissionTimer::new(2, 10);
        t.arm(9, 0);
        assert!(!t.is_armed(9));
        assert!(t.expired(100).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_panics() {
        let _ = RetransmissionTimer::new(1, 0);
    }
}
