//! RoCE v2 protocol state machines for StRoM, sans-IO.
//!
//! The paper's stack (Figure 2) separates *data paths* from *state-keeping
//! data structures*: the State Table (PSN windows), the MSN Table (message
//! sequence numbers and the running DMA address of multi-packet writes),
//! the Multi-Queue (per-QP linked lists of outstanding RDMA reads), and the
//! Retransmission Timer. This crate implements each of those structures
//! plus the responder and requester finite state machines that consult
//! them — all as pure logic with no notion of simulated time or I/O, so
//! they are unit-testable in isolation and reusable by the NIC simulation
//! in `strom-nic`.

pub mod dcqcn;
pub mod msn_table;
pub mod multi_queue;
pub mod psn;
pub mod requester;
pub mod responder;
pub mod retransmit;
pub mod state_table;

pub use dcqcn::{Dcqcn, DcqcnConfig};
pub use msn_table::MsnTable;
pub use multi_queue::MultiQueue;
pub use psn::{psn_add, psn_cmp, PsnClass};
pub use requester::{
    Completion, CompletionStatus, PacketDescriptor, PayloadSource, PostError, Requester,
    WorkRequest,
};
pub use responder::{Responder, ResponderAction};
pub use retransmit::RetransmissionTimer;
pub use state_table::StateTable;
