//! The requester finite state machine.
//!
//! Mirrors the transmit path of Figure 2: the Request Handler receives
//! work requests from the host, segments them into packets (Generate
//! RETH/AETH → Generate BTH), tracks outstanding PSNs via the State Table,
//! registers outstanding reads in the Multi-Queue, and retransmits on NAK
//! or timer expiry.
//!
//! Sans-IO: posting a work request returns [`PacketDescriptor`]s for the
//! NIC to transmit (payload is *described*, not copied — the DMA engine
//! fetches it from host memory at transmit time, which is also how
//! retransmission re-fetches data without buffering packets on the NIC).

use std::collections::VecDeque;

use bytes::Bytes;

use strom_telemetry::{QpState, TraceEvent, TraceSink};
use strom_wire::bth::{Aeth, AethSyndrome, Psn, Qpn, Reth};
use strom_wire::opcode::{Opcode, RpcOpCode};
use strom_wire::segment::segment_message;

use crate::multi_queue::MultiQueue;
use crate::psn::{psn_add, psn_cmp, PsnClass};
use crate::state_table::StateTable;

/// A work request posted by the host (via the Controller registers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkRequest {
    /// One-sided RDMA WRITE from local to remote memory.
    Write {
        /// Remote virtual address.
        remote_vaddr: u64,
        /// Local virtual address the DMA engine fetches payload from.
        local_vaddr: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// One-sided RDMA READ from remote to local memory.
    Read {
        /// Remote virtual address.
        remote_vaddr: u64,
        /// Local virtual address the response data is placed at.
        local_vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// StRoM RPC invocation (RDMA RPC Params, ≤ one MTU of parameters).
    Rpc {
        /// Kernel-matching op-code.
        rpc_op: RpcOpCode,
        /// Parameter bytes (inline; the host passes them in the command).
        params: Bytes,
    },
    /// StRoM RPC WRITE: stream local memory to a remote kernel.
    RpcWrite {
        /// Kernel-matching op-code.
        rpc_op: RpcOpCode,
        /// Local virtual address of the payload.
        local_vaddr: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// RDMA WRITE whose payload originates on the NIC itself rather than
    /// in host memory — how a StRoM kernel transmits its response
    /// (`roceMetaOut` + `roceDataOut`, §5.2).
    WriteInline {
        /// Remote virtual address.
        remote_vaddr: u64,
        /// The payload bytes.
        data: Bytes,
    },
}

/// Where a packet's payload comes from at (re)transmit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadSource {
    /// No payload (READ request).
    None,
    /// Fetched from local host memory by the DMA engine.
    Host {
        /// Local virtual address.
        vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Carried inline in the work request (RPC parameters).
    Inline(Bytes),
}

impl PayloadSource {
    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        match self {
            PayloadSource::None => 0,
            PayloadSource::Host { len, .. } => *len,
            PayloadSource::Inline(b) => b.len() as u32,
        }
    }

    /// Whether there is no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One packet the NIC must transmit for a work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketDescriptor {
    /// Queue pair to send on.
    pub qpn: Qpn,
    /// BTH op-code.
    pub opcode: Opcode,
    /// Assigned PSN.
    pub psn: Psn,
    /// RETH, when the op-code carries one.
    pub reth: Option<Reth>,
    /// Payload source.
    pub payload: PayloadSource,
}

/// How a work request finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionStatus {
    /// Acknowledged end to end.
    #[default]
    Success,
    /// The QP exhausted its retry budget and entered the error state;
    /// the request may have partially executed on the remote side.
    RetryExceeded,
    /// The responder reported an unrecoverable error (NAK remote
    /// operational error, e.g. no kernel matched an RPC, §5.1).
    RemoteError,
}

/// A completed work request, reported back to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Host-assigned work request id.
    pub wr_id: u64,
    /// QP the request ran on.
    pub qpn: Qpn,
    /// Outcome the host observes.
    pub status: CompletionStatus,
}

impl Completion {
    /// A successful completion.
    pub fn success(wr_id: u64, qpn: Qpn) -> Self {
        Completion {
            wr_id,
            qpn,
            status: CompletionStatus::Success,
        }
    }

    /// Whether the request succeeded.
    pub fn is_success(&self) -> bool {
        self.status == CompletionStatus::Success
    }
}

/// Why a work request could not be posted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The QP is not initialized in the State Table.
    UnknownQp,
    /// The Multi-Queue has no free outstanding-read slots.
    MultiQueueFull,
    /// RPC parameters exceed one MTU (the RDMA RPC verb is Only-sized,
    /// §5.1: "the payload size is at most one MTU").
    RpcParamsTooLarge,
    /// The QP is in the error state (retry budget exhausted) and accepts
    /// no further work until torn down and re-initialized.
    QpInError,
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostError::UnknownQp => write!(f, "queue pair not initialized"),
            PostError::MultiQueueFull => write!(f, "no free outstanding-read slots"),
            PostError::RpcParamsTooLarge => write!(f, "RPC parameters exceed one MTU"),
            PostError::QpInError => write!(f, "queue pair is in the error state"),
        }
    }
}

impl std::error::Error for PostError {}

/// Tracking record for an unacknowledged message.
#[derive(Debug, Clone)]
struct OutstandingMessage {
    /// PSN of the final packet (the one whose ACK completes the message).
    last_psn: Psn,
    /// Host work-request id.
    wr_id: u64,
    /// Packets for retransmission.
    packets: Vec<PacketDescriptor>,
}

/// Tracking record for an outstanding read (parallel to the Multi-Queue).
#[derive(Debug, Clone, Copy)]
struct ReadTrack {
    /// PSN of the next expected response packet.
    next_resp_psn: Psn,
    /// PSN of the final response packet.
    last_resp_psn: Psn,
    /// Host work-request id.
    wr_id: u64,
}

/// Per-QP requester state.
#[derive(Debug, Default)]
struct QpRequester {
    outstanding: VecDeque<OutstandingMessage>,
    reads: VecDeque<ReadTrack>,
    /// Highest cumulatively acknowledged PSN. Go-back-N resumes *after*
    /// this watermark (IB: the oldest unacknowledged PSN), so a timeout
    /// mid-message never re-sends the already-delivered prefix — under
    /// sustained congestion a full-message restart can livelock, with the
    /// responder's expected PSN falling on the same dropped slot forever.
    acked: Option<Psn>,
    /// Terminal error state: the retry budget was exhausted. The QP
    /// accepts no new work and never retransmits again.
    errored: bool,
}

/// The requester FSM.
#[derive(Debug)]
pub struct Requester {
    qps: Vec<QpRequester>,
    multi_queue: MultiQueue,
    max_payload: usize,
    next_wr_id: u64,
    retransmissions: u64,
    trace: TraceSink,
}

impl Requester {
    /// Creates a requester for `num_qps` QPs, `max_outstanding_reads`
    /// shared Multi-Queue slots, and the given per-packet payload budget.
    pub fn new(num_qps: usize, max_outstanding_reads: usize, max_payload: usize) -> Self {
        assert!(max_payload > 0, "max payload must be positive");
        Self {
            qps: (0..num_qps).map(|_| QpRequester::default()).collect(),
            multi_queue: MultiQueue::new(num_qps, max_outstanding_reads),
            max_payload,
            next_wr_id: 1,
            retransmissions: 0,
            trace: TraceSink::default(),
        }
    }

    /// Attaches a trace sink; QP error transitions and retransmission
    /// batches are emitted to it.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Total retransmitted packets (diagnostics for the loss experiments).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Whether the QP has unacknowledged messages or outstanding reads
    /// (drives the retransmission timer).
    pub fn has_outstanding(&self, qpn: Qpn) -> bool {
        self.qps
            .get(qpn as usize)
            .map(|q| !q.outstanding.is_empty() || !q.reads.is_empty())
            .unwrap_or(false)
    }

    /// Whether a READ posted now would be refused with
    /// [`PostError::MultiQueueFull`] — no free Multi-Queue slot. Lets the
    /// NIC check before moving a work request into [`Self::post`] instead
    /// of cloning it against the possibility of that error.
    pub fn read_queue_full(&self) -> bool {
        self.multi_queue.free_slots() == 0
    }

    /// Posts a work request; returns the packets to transmit and the
    /// work-request id that will appear in the eventual [`Completion`].
    pub fn post(
        &mut self,
        state: &mut StateTable,
        qpn: Qpn,
        wr: WorkRequest,
    ) -> Result<(u64, Vec<PacketDescriptor>), PostError> {
        if state.get(qpn).is_none() || (qpn as usize) >= self.qps.len() {
            return Err(PostError::UnknownQp);
        }
        if self.qps[qpn as usize].errored {
            return Err(PostError::QpInError);
        }
        let wr_id = self.next_wr_id;
        self.next_wr_id += 1;
        let packets = match wr {
            WorkRequest::Write {
                remote_vaddr,
                local_vaddr,
                len,
            } => self.build_write(state, qpn, remote_vaddr, local_vaddr, len, None)?,
            WorkRequest::RpcWrite {
                rpc_op,
                local_vaddr,
                len,
            } => self.build_write(state, qpn, rpc_op.0, local_vaddr, len, Some(rpc_op))?,
            WorkRequest::WriteInline { remote_vaddr, data } => {
                self.build_write_inline(state, qpn, remote_vaddr, data)?
            }
            WorkRequest::Rpc { rpc_op, params } => {
                if params.len() > self.max_payload {
                    return Err(PostError::RpcParamsTooLarge);
                }
                let psn = state.alloc_psns(qpn, 1).ok_or(PostError::UnknownQp)?;
                vec![PacketDescriptor {
                    qpn,
                    opcode: Opcode::RpcParams,
                    psn,
                    reth: Some(Reth {
                        vaddr: rpc_op.0,
                        rkey: 0,
                        dma_len: params.len() as u32,
                    }),
                    payload: PayloadSource::Inline(params),
                }]
            }
            WorkRequest::Read {
                remote_vaddr,
                local_vaddr,
                len,
            } => {
                let n_resp = (len as usize).div_ceil(self.max_payload).max(1) as u32;
                if self.multi_queue.free_slots() == 0 {
                    return Err(PostError::MultiQueueFull);
                }
                let psn = state.alloc_psns(qpn, n_resp).ok_or(PostError::UnknownQp)?;
                let pushed = self.multi_queue.push(qpn, local_vaddr, len);
                debug_assert!(pushed, "free slot checked above");
                self.qps[qpn as usize].reads.push_back(ReadTrack {
                    next_resp_psn: psn,
                    last_resp_psn: psn_add(psn, n_resp - 1),
                    wr_id,
                });
                vec![PacketDescriptor {
                    qpn,
                    opcode: Opcode::ReadRequest,
                    psn,
                    reth: Some(Reth {
                        vaddr: remote_vaddr,
                        rkey: 0,
                        dma_len: len,
                    }),
                    payload: PayloadSource::None,
                }]
            }
        };
        // Reads complete via response data; everything else completes on ACK.
        if !matches!(packets.first().map(|p| p.opcode), Some(Opcode::ReadRequest)) {
            let last_psn = packets.last().expect("at least one packet").psn;
            self.qps[qpn as usize]
                .outstanding
                .push_back(OutstandingMessage {
                    last_psn,
                    wr_id,
                    packets: packets.clone(),
                });
        } else {
            // Keep the read request itself retransmittable.
            let last_psn = packets[0].psn;
            self.qps[qpn as usize]
                .outstanding
                .push_back(OutstandingMessage {
                    last_psn,
                    wr_id,
                    packets: packets.clone(),
                });
        }
        Ok((wr_id, packets))
    }

    fn build_write(
        &mut self,
        state: &mut StateTable,
        qpn: Qpn,
        remote_vaddr: u64,
        local_vaddr: u64,
        len: u32,
        rpc_op: Option<RpcOpCode>,
    ) -> Result<Vec<PacketDescriptor>, PostError> {
        let segments = segment_message(len as usize, self.max_payload);
        let first_psn = state
            .alloc_psns(qpn, segments.len() as u32)
            .ok_or(PostError::UnknownQp)?;
        let mut out = Vec::with_capacity(segments.len());
        for (i, seg) in segments.iter().enumerate() {
            let opcode = match rpc_op {
                Some(_) => seg.kind.rpc_write_opcode(),
                None => seg.kind.write_opcode(),
            };
            let reth = if opcode.has_reth() {
                Some(Reth {
                    vaddr: rpc_op.map(|o| o.0).unwrap_or(remote_vaddr),
                    rkey: 0,
                    dma_len: len,
                })
            } else {
                None
            };
            out.push(PacketDescriptor {
                qpn,
                opcode,
                psn: psn_add(first_psn, i as u32),
                reth,
                payload: PayloadSource::Host {
                    vaddr: local_vaddr + seg.offset as u64,
                    len: seg.len as u32,
                },
            });
        }
        Ok(out)
    }

    fn build_write_inline(
        &mut self,
        state: &mut StateTable,
        qpn: Qpn,
        remote_vaddr: u64,
        data: Bytes,
    ) -> Result<Vec<PacketDescriptor>, PostError> {
        let segments = segment_message(data.len(), self.max_payload);
        let first_psn = state
            .alloc_psns(qpn, segments.len() as u32)
            .ok_or(PostError::UnknownQp)?;
        let mut out = Vec::with_capacity(segments.len());
        for (i, seg) in segments.iter().enumerate() {
            let opcode = seg.kind.write_opcode();
            let reth = opcode.has_reth().then_some(Reth {
                vaddr: remote_vaddr,
                rkey: 0,
                dma_len: data.len() as u32,
            });
            out.push(PacketDescriptor {
                qpn,
                opcode,
                psn: psn_add(first_psn, i as u32),
                reth,
                payload: PayloadSource::Inline(data.slice(seg.offset..seg.offset + seg.len)),
            });
        }
        Ok(out)
    }

    /// Handles an inbound ACK/NAK.
    ///
    /// Returns `(completions, retransmit_packets)`.
    pub fn on_ack(
        &mut self,
        state: &mut StateTable,
        qpn: Qpn,
        psn: Psn,
        aeth: Aeth,
    ) -> (Vec<Completion>, Vec<PacketDescriptor>) {
        match aeth.syndrome {
            AethSyndrome::Ack => {
                state.ack_up_to(qpn, psn);
                (self.collect_acked(qpn, psn), Vec::new())
            }
            AethSyndrome::NakSequenceError => {
                // The AETH PSN names the responder's expected PSN; ack
                // everything before it and retransmit from there.
                if psn != 0 {
                    let acked = psn_add(psn, strom_wire::bth::MASK_24); // psn - 1 wrapping.
                    state.ack_up_to(qpn, acked);
                }
                let completions = if psn != 0 {
                    self.collect_acked(qpn, psn_add(psn, strom_wire::bth::MASK_24))
                } else {
                    Vec::new()
                };
                (completions, self.retransmit_from(qpn, psn))
            }
            AethSyndrome::NakRemoteOperationalError => {
                // Unrecoverable for this message: surface the completion so
                // the host observes the error (error reporting is by value
                // in host memory, §5.1).
                (
                    self.collect_acked_with(qpn, psn, CompletionStatus::RemoteError),
                    Vec::new(),
                )
            }
        }
    }

    fn collect_acked(&mut self, qpn: Qpn, psn: Psn) -> Vec<Completion> {
        self.collect_acked_with(qpn, psn, CompletionStatus::Success)
    }

    fn collect_acked_with(
        &mut self,
        qpn: Qpn,
        psn: Psn,
        status: CompletionStatus,
    ) -> Vec<Completion> {
        let Some(qp) = self.qps.get_mut(qpn as usize) else {
            return Vec::new();
        };
        // Raise the cumulative-ack watermark (never lower it — stale
        // duplicate ACKs arrive out of order under retransmission).
        if qp
            .acked
            .is_none_or(|a| psn_cmp(psn, a) == std::cmp::Ordering::Greater)
        {
            qp.acked = Some(psn);
        }
        let mut out = Vec::new();
        while let Some(front) = qp.outstanding.front() {
            if psn_cmp(front.last_psn, psn) != std::cmp::Ordering::Greater {
                // Read requests complete via data, not ACK; drop the
                // retransmission record but do not emit a completion.
                let msg = qp.outstanding.pop_front().expect("front checked");
                let is_read = msg
                    .packets
                    .first()
                    .map(|p| p.opcode == Opcode::ReadRequest)
                    .unwrap_or(false);
                if !is_read {
                    out.push(Completion {
                        wr_id: msg.wr_id,
                        qpn,
                        status,
                    });
                }
            } else {
                break;
            }
        }
        out
    }

    /// Handles an inbound READ response packet.
    ///
    /// Returns the local DMA placement for the payload plus any completion.
    /// Out-of-order or duplicate responses return `None` and are dropped
    /// (the retransmission machinery recovers).
    pub fn on_read_response(
        &mut self,
        state: &mut StateTable,
        qpn: Qpn,
        psn: Psn,
        payload: &Bytes,
    ) -> Option<(u64, Option<Completion>)> {
        let qp = self.qps.get_mut(qpn as usize)?;
        let track = qp.reads.front_mut()?;
        match crate::psn::classify(psn, track.next_resp_psn) {
            PsnClass::Valid => {}
            PsnClass::Duplicate | PsnClass::Invalid => return None,
        }
        let (addr, done) = self.multi_queue.consume(qpn, payload.len() as u32)?;
        track.next_resp_psn = psn_add(track.next_resp_psn, 1);
        let mut completion = None;
        if done {
            debug_assert_eq!(psn, track.last_resp_psn, "length/PSN bookkeeping agree");
            let track = qp.reads.pop_front().expect("front_mut succeeded");
            completion = Some(Completion::success(track.wr_id, qpn));
            // The final response also acknowledges the read request's PSN
            // range, releasing its retransmission record.
            state.ack_up_to(qpn, track.last_resp_psn);
            let _ = self.collect_acked(qpn, track.last_resp_psn);
        }
        Some((addr, completion))
    }

    /// Retransmits every outstanding packet of `qpn` (timer expiry).
    pub fn on_timeout(&mut self, qpn: Qpn) -> Vec<PacketDescriptor> {
        self.retransmit_from(qpn, 0xffff_ffff)
    }

    /// Whether `qpn` is in the terminal error state.
    pub fn is_errored(&self, qpn: Qpn) -> bool {
        self.qps
            .get(qpn as usize)
            .map(|q| q.errored)
            .unwrap_or(false)
    }

    /// Number of QPs currently in the error state.
    pub fn qps_in_error(&self) -> u64 {
        self.qps.iter().filter(|q| q.errored).count() as u64
    }

    /// Transitions `qpn` to the terminal error state (retry budget
    /// exhausted, IB `retry_cnt` semantics).
    ///
    /// Every in-flight work request — unacknowledged messages and
    /// outstanding reads — completes with
    /// [`CompletionStatus::RetryExceeded`] so the host never hangs waiting
    /// on a wedged QP, and the QP's Multi-Queue slots return to the shared
    /// pool. Subsequent posts fail with [`PostError::QpInError`].
    pub fn fail_qp(&mut self, qpn: Qpn) -> Vec<Completion> {
        let Some(qp) = self.qps.get_mut(qpn as usize) else {
            return Vec::new();
        };
        if !qp.errored {
            self.trace.emit(TraceEvent::QpTransition {
                qpn,
                from: QpState::Ready,
                to: QpState::Error,
            });
        }
        qp.errored = true;
        let mut out = Vec::new();
        // Unacknowledged messages, in post order. Reads are skipped here —
        // their completion is owned by the read-track queue below, so each
        // wr_id surfaces exactly once.
        for msg in qp.outstanding.drain(..) {
            let is_read = msg
                .packets
                .first()
                .map(|p| p.opcode == Opcode::ReadRequest)
                .unwrap_or(false);
            if !is_read {
                out.push(Completion {
                    wr_id: msg.wr_id,
                    qpn,
                    status: CompletionStatus::RetryExceeded,
                });
            }
        }
        for track in qp.reads.drain(..) {
            out.push(Completion {
                wr_id: track.wr_id,
                qpn,
                status: CompletionStatus::RetryExceeded,
            });
        }
        self.multi_queue.flush(qpn);
        out.sort_by_key(|c| c.wr_id);
        out
    }

    /// Collects packets to retransmit: all packets of outstanding messages
    /// with PSN at or after `from_psn` (`0xffff_ffff` = everything).
    fn retransmit_from(&mut self, qpn: Qpn, from_psn: u32) -> Vec<PacketDescriptor> {
        let Some(qp) = self.qps.get_mut(qpn as usize) else {
            return Vec::new();
        };
        let everything = from_psn > strom_wire::bth::MASK_24;
        let mut out = Vec::new();
        for msg in &qp.outstanding {
            for pkt in &msg.packets {
                // Never re-send the cumulatively acknowledged prefix:
                // go-back-N resumes at the oldest *unacknowledged* PSN.
                if qp
                    .acked
                    .is_some_and(|a| psn_cmp(pkt.psn, a) != std::cmp::Ordering::Greater)
                {
                    continue;
                }
                if everything || psn_cmp(pkt.psn, from_psn) != std::cmp::Ordering::Less {
                    out.push(pkt.clone());
                }
            }
        }
        self.retransmissions += out.len() as u64;
        if !out.is_empty() {
            self.trace.emit(TraceEvent::Retransmit {
                qpn,
                packets: out.len() as u32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StateTable, Requester) {
        let mut st = StateTable::new(8);
        st.init_qp(2, 0, 0);
        (st, Requester::new(8, 16, 1440))
    }

    fn ack(_psn: Psn) -> Aeth {
        Aeth {
            syndrome: AethSyndrome::Ack,
            msn: 0,
        }
    }

    #[test]
    fn small_write_is_one_packet() {
        let (mut st, mut r) = setup();
        let (wr_id, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::Write {
                    remote_vaddr: 0x1000,
                    local_vaddr: 0x2000,
                    len: 64,
                },
            )
            .unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].opcode, Opcode::WriteOnly);
        assert_eq!(pkts[0].psn, 0);
        assert_eq!(
            pkts[0].payload,
            PayloadSource::Host {
                vaddr: 0x2000,
                len: 64
            }
        );
        assert!(r.has_outstanding(2));
        let (comps, retx) = r.on_ack(&mut st, 2, 0, ack(0));
        assert_eq!(comps, vec![Completion::success(wr_id, 2)]);
        assert!(retx.is_empty());
        assert!(!r.has_outstanding(2));
    }

    #[test]
    fn large_write_segments_with_correct_psns() {
        let (mut st, mut r) = setup();
        let (_, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::Write {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 4000,
                },
            )
            .unwrap();
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].opcode, Opcode::WriteFirst);
        assert_eq!(pkts[1].opcode, Opcode::WriteMiddle);
        assert_eq!(pkts[2].opcode, Opcode::WriteLast);
        assert_eq!(
            pkts.iter().map(|p| p.psn).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(pkts[0].reth.is_some());
        assert!(pkts[1].reth.is_none());
        // Only the final ACK completes the message.
        let (comps, _) = r.on_ack(&mut st, 2, 1, ack(1));
        assert!(comps.is_empty());
        let (comps, _) = r.on_ack(&mut st, 2, 2, ack(2));
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn read_places_response_data_in_order() {
        let (mut st, mut r) = setup();
        let (wr_id, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::Read {
                    remote_vaddr: 0x9000,
                    local_vaddr: 0x100,
                    len: 3000,
                },
            )
            .unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].opcode, Opcode::ReadRequest);
        // 3 response packets expected (PSNs 0,1,2).
        let d0 = Bytes::from(vec![0u8; 1440]);
        let d1 = Bytes::from(vec![1u8; 1440]);
        let d2 = Bytes::from(vec![2u8; 120]);
        let (addr, comp) = r.on_read_response(&mut st, 2, 0, &d0).unwrap();
        assert_eq!(addr, 0x100);
        assert!(comp.is_none());
        let (addr, comp) = r.on_read_response(&mut st, 2, 1, &d1).unwrap();
        assert_eq!(addr, 0x100 + 1440);
        assert!(comp.is_none());
        let (addr, comp) = r.on_read_response(&mut st, 2, 2, &d2).unwrap();
        assert_eq!(addr, 0x100 + 2880);
        assert_eq!(comp, Some(Completion::success(wr_id, 2)));
        assert!(!r.has_outstanding(2), "read ack'd its own PSN range");
    }

    #[test]
    fn duplicate_response_is_dropped() {
        let (mut st, mut r) = setup();
        r.post(
            &mut st,
            2,
            WorkRequest::Read {
                remote_vaddr: 0,
                local_vaddr: 0,
                len: 2000,
            },
        )
        .unwrap();
        let d = Bytes::from(vec![0u8; 1440]);
        assert!(r.on_read_response(&mut st, 2, 0, &d).is_some());
        assert!(
            r.on_read_response(&mut st, 2, 0, &d).is_none(),
            "same PSN twice must be dropped"
        );
        // The stream continues at PSN 1.
        let tail = Bytes::from(vec![0u8; 560]);
        assert!(r.on_read_response(&mut st, 2, 1, &tail).is_some());
    }

    #[test]
    fn out_of_order_response_is_dropped() {
        let (mut st, mut r) = setup();
        r.post(
            &mut st,
            2,
            WorkRequest::Read {
                remote_vaddr: 0,
                local_vaddr: 0,
                len: 3000,
            },
        )
        .unwrap();
        let d = Bytes::from(vec![0u8; 1440]);
        // PSN 1 arrives before PSN 0: drop.
        assert!(r.on_read_response(&mut st, 2, 1, &d).is_none());
        assert!(r.on_read_response(&mut st, 2, 0, &d).is_some());
    }

    #[test]
    fn timeout_retransmits_everything_outstanding() {
        let (mut st, mut r) = setup();
        let (_, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::Write {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 3000,
                },
            )
            .unwrap();
        let retx = r.on_timeout(2);
        assert_eq!(retx, pkts);
        assert_eq!(r.retransmissions(), 3);
    }

    #[test]
    fn timeout_skips_the_cumulatively_acked_prefix() {
        let (mut st, mut r) = setup();
        r.post(
            &mut st,
            2,
            WorkRequest::Write {
                remote_vaddr: 0,
                local_vaddr: 0,
                len: 4000, // 3 segments: PSNs 0, 1, 2.
            },
        )
        .unwrap();
        // The responder acknowledged PSNs 0 and 1; only the tail may be
        // re-sent — restarting the delivered prefix on every timeout can
        // livelock against a deterministic congestion drop pattern.
        let (comps, retx) = r.on_ack(
            &mut st,
            2,
            1,
            Aeth {
                syndrome: AethSyndrome::Ack,
                msn: 0,
            },
        );
        assert!(comps.is_empty(), "mid-message ack completes nothing");
        assert!(retx.is_empty());
        let retx = r.on_timeout(2);
        assert_eq!(retx.len(), 1, "only the unacked tail retransmits");
        assert_eq!(retx[0].psn, 2);
        // A stale duplicate ack must not lower the watermark.
        let _ = r.on_ack(
            &mut st,
            2,
            0,
            Aeth {
                syndrome: AethSyndrome::Ack,
                msn: 0,
            },
        );
        assert_eq!(r.on_timeout(2).len(), 1);
    }

    #[test]
    fn nak_retransmits_from_expected_psn() {
        let (mut st, mut r) = setup();
        r.post(
            &mut st,
            2,
            WorkRequest::Write {
                remote_vaddr: 0,
                local_vaddr: 0,
                len: 4000,
            },
        )
        .unwrap();
        // Responder expected PSN 1 (packet 1 lost).
        let (comps, retx) = r.on_ack(
            &mut st,
            2,
            1,
            Aeth {
                syndrome: AethSyndrome::NakSequenceError,
                msn: 0,
            },
        );
        assert!(comps.is_empty());
        assert_eq!(retx.len(), 2, "PSNs 1 and 2 retransmitted");
        assert_eq!(retx[0].psn, 1);
        assert_eq!(retx[1].psn, 2);
    }

    #[test]
    fn rpc_params_single_packet_with_opcode_in_reth() {
        let (mut st, mut r) = setup();
        let (_, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode::CONSISTENCY,
                    params: Bytes::from_static(b"0123456789abcdef"),
                },
            )
            .unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].opcode, Opcode::RpcParams);
        assert_eq!(pkts[0].reth.unwrap().vaddr, RpcOpCode::CONSISTENCY.0);
        assert!(matches!(pkts[0].payload, PayloadSource::Inline(_)));
    }

    #[test]
    fn oversized_rpc_params_rejected() {
        let (mut st, mut r) = setup();
        let err = r
            .post(
                &mut st,
                2,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode::GET,
                    params: Bytes::from(vec![0u8; 2000]),
                },
            )
            .unwrap_err();
        assert_eq!(err, PostError::RpcParamsTooLarge);
    }

    #[test]
    fn rpc_write_uses_rpc_opcodes() {
        let (mut st, mut r) = setup();
        let (_, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::RpcWrite {
                    rpc_op: RpcOpCode::SHUFFLE,
                    local_vaddr: 0,
                    len: 3000,
                },
            )
            .unwrap();
        assert_eq!(pkts[0].opcode, Opcode::RpcWriteFirst);
        assert_eq!(pkts[1].opcode, Opcode::RpcWriteMiddle);
        assert_eq!(pkts[2].opcode, Opcode::RpcWriteLast);
        assert_eq!(pkts[0].reth.unwrap().vaddr, RpcOpCode::SHUFFLE.0);
    }

    #[test]
    fn multi_queue_exhaustion_rejects_reads() {
        let mut st = StateTable::new(8);
        st.init_qp(2, 0, 0);
        let mut r = Requester::new(8, 2, 1440);
        for _ in 0..2 {
            r.post(
                &mut st,
                2,
                WorkRequest::Read {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 8,
                },
            )
            .unwrap();
        }
        let err = r
            .post(
                &mut st,
                2,
                WorkRequest::Read {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 8,
                },
            )
            .unwrap_err();
        assert_eq!(err, PostError::MultiQueueFull);
    }

    #[test]
    fn write_inline_carries_nic_data() {
        // The path a StRoM kernel's response takes (§5.2): payload comes
        // from the NIC, not host memory, and segments like any write.
        let (mut st, mut r) = setup();
        let data = Bytes::from(vec![0xCDu8; 3000]);
        let (wr_id, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::WriteInline {
                    remote_vaddr: 0x7000,
                    data: data.clone(),
                },
            )
            .unwrap();
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].opcode, Opcode::WriteFirst);
        assert_eq!(pkts[0].reth.unwrap().vaddr, 0x7000);
        // The inline payload slices reassemble to the original data.
        let mut rebuilt = Vec::new();
        for p in &pkts {
            match &p.payload {
                PayloadSource::Inline(b) => rebuilt.extend_from_slice(b),
                other => panic!("expected inline payload, got {other:?}"),
            }
        }
        assert_eq!(Bytes::from(rebuilt), data);
        // Completes on the final ACK like an ordinary write.
        let (comps, _) = r.on_ack(&mut st, 2, pkts[2].psn, ack(0));
        assert_eq!(comps, vec![Completion::success(wr_id, 2)]);
    }

    #[test]
    fn write_inline_retransmits_without_host_memory() {
        let (mut st, mut r) = setup();
        let data = Bytes::from_static(b"kernel response");
        let (_, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::WriteInline {
                    remote_vaddr: 0x10,
                    data,
                },
            )
            .unwrap();
        let retx = r.on_timeout(2);
        assert_eq!(retx, pkts, "inline payload is retained for retransmit");
    }

    #[test]
    fn remote_operational_error_surfaces_completion() {
        // A NAK remote-operational-error (no kernel matched, §5.1) must
        // not wedge the message: the completion is surfaced.
        let (mut st, mut r) = setup();
        let (wr_id, pkts) = r
            .post(
                &mut st,
                2,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode(0x77),
                    params: Bytes::from_static(b"params"),
                },
            )
            .unwrap();
        let (comps, retx) = r.on_ack(
            &mut st,
            2,
            pkts[0].psn,
            Aeth {
                syndrome: AethSyndrome::NakRemoteOperationalError,
                msn: 0,
            },
        );
        assert_eq!(
            comps,
            vec![Completion {
                wr_id,
                qpn: 2,
                status: CompletionStatus::RemoteError
            }]
        );
        assert!(retx.is_empty());
        assert!(!r.has_outstanding(2));
    }

    #[test]
    fn fail_qp_completes_everything_with_retry_exceeded() {
        let (mut st, mut r) = setup();
        let (w1, _) = r
            .post(
                &mut st,
                2,
                WorkRequest::Write {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 3000,
                },
            )
            .unwrap();
        let (w2, _) = r
            .post(
                &mut st,
                2,
                WorkRequest::Read {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 2000,
                },
            )
            .unwrap();
        let comps = r.fail_qp(2);
        assert_eq!(comps.len(), 2, "one completion per wr, reads included");
        assert_eq!(
            comps.iter().map(|c| c.wr_id).collect::<Vec<_>>(),
            vec![w1, w2]
        );
        assert!(comps
            .iter()
            .all(|c| c.status == CompletionStatus::RetryExceeded));
        assert!(r.is_errored(2));
        assert_eq!(r.qps_in_error(), 1);
        assert!(!r.has_outstanding(2), "nothing left to retransmit");
        assert!(r.on_timeout(2).is_empty());
    }

    #[test]
    fn errored_qp_rejects_new_work() {
        let (mut st, mut r) = setup();
        r.fail_qp(2);
        let err = r
            .post(
                &mut st,
                2,
                WorkRequest::Write {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 8,
                },
            )
            .unwrap_err();
        assert_eq!(err, PostError::QpInError);
    }

    #[test]
    fn fail_qp_releases_multi_queue_slots() {
        // A wedged QP must not pin shared Multi-Queue capacity: other QPs
        // reclaim the slots after the failure.
        let mut st = StateTable::new(8);
        st.init_qp(2, 0, 0);
        st.init_qp(3, 0, 0);
        let mut r = Requester::new(8, 2, 1440);
        for _ in 0..2 {
            r.post(
                &mut st,
                2,
                WorkRequest::Read {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 8,
                },
            )
            .unwrap();
        }
        let read = WorkRequest::Read {
            remote_vaddr: 0,
            local_vaddr: 0,
            len: 8,
        };
        assert_eq!(
            r.post(&mut st, 3, read.clone()).unwrap_err(),
            PostError::MultiQueueFull
        );
        r.fail_qp(2);
        assert!(r.post(&mut st, 3, read).is_ok());
    }

    #[test]
    fn unknown_qp_rejected() {
        let (mut st, mut r) = setup();
        let err = r
            .post(
                &mut st,
                5,
                WorkRequest::Write {
                    remote_vaddr: 0,
                    local_vaddr: 0,
                    len: 8,
                },
            )
            .unwrap_err();
        assert_eq!(err, PostError::UnknownQp);
    }
}
