//! Simulated time, clocks, and unit helpers.
//!
//! Time is measured in integer **picoseconds** so that the paper's clock
//! periods are exact: 156.25 MHz = 6400 ps, 250 MHz = 4000 ps. A `u64`
//! picosecond counter overflows after ~213 days of simulated time, far
//! beyond any experiment in the paper (the longest runs ~1.2 s, Fig 11).

/// A point in simulated time, in picoseconds since simulation start.
pub type Time = u64;

/// A span of simulated time, in picoseconds.
pub type TimeDelta = u64;

/// One picosecond.
pub const PICOS: TimeDelta = 1;
/// One nanosecond in picoseconds.
pub const NANOS: TimeDelta = 1_000;
/// One microsecond in picoseconds.
pub const MICROS: TimeDelta = 1_000_000;
/// One millisecond in picoseconds.
pub const MILLIS: TimeDelta = 1_000_000_000;
/// One second in picoseconds.
pub const SECS: TimeDelta = 1_000_000_000_000;

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// One gigabit, in bits.
pub const GBIT: u64 = 1_000_000_000;

/// Converts a picosecond [`Time`] to fractional microseconds (for reports).
pub fn as_micros(t: Time) -> f64 {
    t as f64 / MICROS as f64
}

/// Converts a picosecond [`Time`] to fractional seconds (for reports).
pub fn as_secs(t: Time) -> f64 {
    t as f64 / SECS as f64
}

/// A fixed-frequency hardware clock.
///
/// The paper's RoCE stack runs at 156.25 MHz for the 10 G configuration and
/// 322 MHz for 100 G; the DMA engine runs at 250 MHz. Pipeline latencies in
/// the simulation are expressed in cycles of the relevant clock and
/// converted to picoseconds here.
///
/// # Examples
///
/// ```
/// use strom_sim::time::Clock;
/// let clk = Clock::from_mhz(156.25);
/// assert_eq!(clk.period_ps(), 6400);
/// assert_eq!(clk.cycles(10), 64_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    period_ps: TimeDelta,
}

impl Clock {
    /// Creates a clock from a frequency in MHz (rounded to whole picoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive");
        let period_ps = (1_000_000.0 / mhz).round() as TimeDelta;
        Self { period_ps }
    }

    /// Creates a clock directly from a period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: TimeDelta) -> Self {
        assert!(period_ps > 0, "clock period must be positive");
        Self { period_ps }
    }

    /// The clock period in picoseconds.
    pub fn period_ps(&self) -> TimeDelta {
        self.period_ps
    }

    /// The frequency in MHz (approximate, for reporting).
    pub fn mhz(&self) -> f64 {
        1_000_000.0 / self.period_ps as f64
    }

    /// The duration of `n` clock cycles.
    pub fn cycles(&self, n: u64) -> TimeDelta {
        self.period_ps * n
    }

    /// The number of cycles needed to stream `bytes` over a datapath of
    /// `width_bytes` at one word per cycle (II = 1), rounding up.
    pub fn cycles_for_bytes(&self, bytes: u64, width_bytes: u64) -> u64 {
        debug_assert!(width_bytes > 0);
        bytes.div_ceil(width_bytes)
    }

    /// The time to stream `bytes` over a datapath of `width_bytes` (II = 1).
    pub fn stream_time(&self, bytes: u64, width_bytes: u64) -> TimeDelta {
        self.cycles(self.cycles_for_bytes(bytes, width_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_periods_are_exact() {
        assert_eq!(Clock::from_mhz(156.25).period_ps(), 6400);
        assert_eq!(Clock::from_mhz(250.0).period_ps(), 4000);
        // 322 MHz rounds to 3106 ps.
        assert_eq!(Clock::from_mhz(322.0).period_ps(), 3106);
    }

    #[test]
    fn mhz_round_trips_within_rounding() {
        let clk = Clock::from_mhz(156.25);
        assert!((clk.mhz() - 156.25).abs() < 1e-9);
    }

    #[test]
    fn stream_time_rounds_words_up() {
        let clk = Clock::from_mhz(156.25);
        // 9 bytes over an 8 B datapath needs 2 cycles.
        assert_eq!(clk.stream_time(9, 8), 2 * 6400);
        assert_eq!(clk.stream_time(64, 8), 8 * 6400);
        assert_eq!(clk.cycles_for_bytes(0, 8), 0);
    }

    /// The 100 G datapath pin (§7): 64 B beats at the 322 MHz clock.
    /// A partial final beat always charges a whole cycle — store-and-
    /// forward stages that divided instead of ceiling here would
    /// under-charge every frame that is not a multiple of 64 B.
    #[test]
    fn stream_time_pins_the_64_byte_datapath() {
        let clk = Clock::from_mhz(322.0);
        // One beat up to and including 64 B, never zero for nonzero len.
        assert_eq!(clk.stream_time(1, 64), 3106);
        assert_eq!(clk.stream_time(64, 64), 3106);
        // 65 B spills into a second beat; exact multiples do not.
        assert_eq!(clk.stream_time(65, 64), 2 * 3106);
        assert_eq!(clk.stream_time(128, 64), 2 * 3106);
        // A 1500 B MTU frame is 24 beats (1500 = 23*64 + 28).
        assert_eq!(clk.stream_time(1500, 64), 24 * 3106);
        // The invariant behind all of these, swept across both widths:
        // charged time is never below len*period/width (no under-
        // charging), and never a full beat above it.
        for width in [8u64, 64] {
            for len in 1..=256u64 {
                let t = clk.stream_time(len, width);
                let exact_num = len * clk.period_ps();
                assert!(t * width >= exact_num, "len {len} width {width}");
                assert!(t * width < exact_num + clk.period_ps() * width);
            }
        }
    }

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(NANOS, 1_000 * PICOS);
        assert_eq!(MICROS, 1_000 * NANOS);
        assert_eq!(MILLIS, 1_000 * MICROS);
        assert_eq!(SECS, 1_000 * MILLIS);
    }

    #[test]
    fn micros_conversion() {
        assert!((as_micros(1_500_000) - 1.5).abs() < 1e-12);
        assert!((as_secs(SECS) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = Clock::from_mhz(0.0);
    }
}
