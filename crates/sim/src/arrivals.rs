//! Open-loop workload generators: Zipf-skewed key popularity and
//! Poisson / MMPP arrival processes.
//!
//! A serving tier is characterized by *offered load*, not by how fast a
//! fixed set of clients can spin: an **open-loop** generator draws
//! request arrival times from a stochastic process that does not slow
//! down when the server queues up, which is what exposes the latency
//! knee (a closed-loop driver self-throttles and hides it). These
//! generators model the aggregate arrival stream of a very large client
//! fleet — the superposition of millions of thin clients is Poisson by
//! the Palm–Khintchine theorem, and correlated bursts on top of it are
//! the classic two-state Markov-modulated Poisson process (MMPP).
//!
//! Everything is driven by [`SimRng`], so a fixed seed pins the exact
//! arrival schedule and key sequence bit-for-bit.

use crate::rng::SimRng;
use crate::time::{Time, TimeDelta};

/// Samples ranks `0..n` with probability `P(k) ∝ 1/(k+1)^theta`
/// (rank 0 is the hottest key). `theta = 0` degenerates to uniform;
/// YCSB's default skew is `theta ≈ 0.99`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized inclusive CDF over ranks; `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be a finite non-negative skew"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Probability of rank `k`.
    pub fn probability(&self, k: u64) -> f64 {
        let k = k as usize;
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit();
        // First rank whose CDF reaches u (binary search).
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64).min(self.n() - 1)
    }
}

/// An arrival process: how inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate: exponential gaps with the
    /// given mean (picoseconds).
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: TimeDelta,
    },
    /// Two-state Markov-modulated Poisson process: a *calm* phase and a
    /// *burst* phase, each Poisson at its own rate, with exponentially
    /// distributed phase dwell times. Models correlated load bursts on
    /// top of a steady fleet.
    Mmpp {
        /// Mean gap in the calm phase.
        calm_gap: TimeDelta,
        /// Mean gap in the burst phase (smaller = burstier).
        burst_gap: TimeDelta,
        /// Mean dwell time of the calm phase.
        calm_dwell: TimeDelta,
        /// Mean dwell time of the burst phase.
        burst_dwell: TimeDelta,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in requests per second.
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => 1e12 / mean_gap.max(1) as f64,
            ArrivalProcess::Mmpp {
                calm_gap,
                burst_gap,
                calm_dwell,
                burst_dwell,
            } => {
                // Time-weighted average of the two phase rates.
                let (dc, db) = (calm_dwell.max(1) as f64, burst_dwell.max(1) as f64);
                let rate_c = 1e12 / calm_gap.max(1) as f64;
                let rate_b = 1e12 / burst_gap.max(1) as f64;
                (dc * rate_c + db * rate_b) / (dc + db)
            }
        }
    }
}

/// Generates a monotone stream of absolute arrival times from an
/// [`ArrivalProcess`]. Deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    now: Time,
    /// MMPP phase state: `true` while in the burst phase.
    in_burst: bool,
    /// MMPP: when the current phase ends.
    phase_ends: Time,
}

impl ArrivalGen {
    /// Starts the process at time 0 with its own RNG stream.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let mut rng = SimRng::seed(seed ^ 0xA11_0C0DE);
        let phase_ends = match process {
            ArrivalProcess::Poisson { .. } => Time::MAX,
            ArrivalProcess::Mmpp { calm_dwell, .. } => exp_delta(&mut rng, calm_dwell),
        };
        ArrivalGen {
            process,
            rng,
            now: 0,
            in_burst: false,
            phase_ends,
        }
    }

    /// The next absolute arrival time (strictly increasing).
    pub fn next_arrival(&mut self) -> Time {
        loop {
            let mean_gap = match self.process {
                ArrivalProcess::Poisson { mean_gap } => mean_gap,
                ArrivalProcess::Mmpp {
                    calm_gap,
                    burst_gap,
                    ..
                } => {
                    if self.in_burst {
                        burst_gap
                    } else {
                        calm_gap
                    }
                }
            };
            let candidate = self.now + exp_delta(&mut self.rng, mean_gap);
            if candidate <= self.phase_ends {
                self.now = candidate;
                return candidate;
            }
            // Phase boundary crossed before the arrival: because the
            // exponential is memoryless, discarding the partial gap and
            // redrawing at the new rate from the boundary is exactly the
            // MMPP dynamics.
            let ArrivalProcess::Mmpp {
                calm_dwell,
                burst_dwell,
                ..
            } = self.process
            else {
                unreachable!("poisson phases never end");
            };
            self.now = self.phase_ends;
            self.in_burst = !self.in_burst;
            let dwell = if self.in_burst {
                burst_dwell
            } else {
                calm_dwell
            };
            self.phase_ends = self.now + exp_delta(&mut self.rng, dwell);
        }
    }
}

/// An exponential gap with the given mean, quantized to ≥ 1 ps so the
/// stream stays strictly increasing.
fn exp_delta(rng: &mut SimRng, mean: TimeDelta) -> TimeDelta {
    (rng.exponential(mean.max(1) as f64).round() as TimeDelta).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MICROS, NANOS};

    #[test]
    fn zipf_is_deterministic_at_a_fixed_seed() {
        let z = ZipfSampler::new(1000, 0.99);
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::seed(seed);
            (0..16).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(0x51), draw(0x51), "same seed must pin the stream");
        assert_ne!(draw(0x51), draw(0x52), "different seeds must diverge");
    }

    #[test]
    fn zipf_skew_matches_the_analytic_head_mass() {
        let n = 1000u64;
        let z = ZipfSampler::new(n, 0.99);
        let mut rng = SimRng::seed(0x2157);
        let draws = 200_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Head mass: empirical frequency of rank 0 vs the analytic
        // probability, within 5% relative.
        let p0 = z.probability(0);
        let f0 = counts[0] as f64 / draws as f64;
        assert!(
            (f0 - p0).abs() / p0 < 0.05,
            "rank-0 mass {f0} vs analytic {p0}"
        );
        // Mean rank within 2% of the analytic mean.
        let analytic: f64 = (0..n).map(|k| k as f64 * z.probability(k)).sum();
        let empirical = counts
            .iter()
            .enumerate()
            .map(|(k, &c)| k as f64 * c as f64)
            .sum::<f64>()
            / draws as f64;
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "mean rank {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let n = 64u64;
        let z = ZipfSampler::new(n, 0.0);
        let mut rng = SimRng::seed(0x0FF);
        let draws = 64_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() / expect < 0.15,
                "rank {k}: {c} draws vs uniform {expect}"
            );
        }
    }

    #[test]
    fn poisson_mean_and_cv_are_right() {
        let mean = 3 * MICROS;
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson { mean_gap: mean }, 0x9015);
        let draws = 100_000;
        let mut prev = 0u64;
        let mut gaps = Vec::with_capacity(draws);
        for _ in 0..draws {
            let t = g.next_arrival();
            assert!(t > prev, "arrivals must be strictly increasing");
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let m = gaps.iter().sum::<f64>() / draws as f64;
        let var = gaps.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / draws as f64;
        let cv = var.sqrt() / m;
        assert!(
            (m - mean as f64).abs() / (mean as f64) < 0.02,
            "mean gap {m} vs {mean}"
        );
        assert!(
            (cv - 1.0).abs() < 0.03,
            "exponential gaps have CV 1, got {cv}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_and_rates_bracket() {
        let process = ArrivalProcess::Mmpp {
            calm_gap: 4 * MICROS,
            burst_gap: 400 * NANOS,
            calm_dwell: 200 * MICROS,
            burst_dwell: 50 * MICROS,
        };
        let mut g = ArrivalGen::new(process, 0xB065);
        let draws = 100_000;
        let mut prev = 0u64;
        let mut gaps = Vec::with_capacity(draws);
        for _ in 0..draws {
            let t = g.next_arrival();
            assert!(t > prev);
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let m = gaps.iter().sum::<f64>() / draws as f64;
        let var = gaps.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / draws as f64;
        let cv = var.sqrt() / m;
        assert!(cv > 1.2, "MMPP gaps must be over-dispersed, CV = {cv}");
        // Long-run rate sits between the two phase rates and near the
        // dwell-weighted analytic value.
        let rate = 1e12 / m;
        let analytic = process.mean_rate_per_sec();
        assert!(rate > 1e12 / (4.0 * MICROS as f64));
        assert!(rate < 1e12 / (400.0 * NANOS as f64));
        assert!(
            (rate - analytic).abs() / analytic < 0.15,
            "rate {rate}/s vs analytic {analytic}/s"
        );
    }

    #[test]
    fn mmpp_is_deterministic_at_a_fixed_seed() {
        let process = ArrivalProcess::Mmpp {
            calm_gap: 2 * MICROS,
            burst_gap: 250 * NANOS,
            calm_dwell: 100 * MICROS,
            burst_dwell: 20 * MICROS,
        };
        let stream = |seed: u64| -> Vec<Time> {
            let mut g = ArrivalGen::new(process, seed);
            (0..64).map(|_| g.next_arrival()).collect()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }
}
