//! Bandwidth and serialization models for links and buses.
//!
//! A 10 G Ethernet port, a 100 G CMAC, and a PCIe Gen3 link all share the
//! same first-order model: bytes are serialized at a fixed rate onto a
//! shared medium, so a transmission occupies the medium for
//! `bytes / bandwidth` and back-to-back transmissions queue behind each
//! other. [`LinkSerializer`] captures exactly that "busy until" behaviour.

use crate::time::{Time, TimeDelta};

/// A data rate, stored as bits per second.
///
/// # Examples
///
/// ```
/// use strom_sim::Bandwidth;
/// let tenge = Bandwidth::gbit_per_sec(10.0);
/// // 1250 bytes at 10 Gbit/s take exactly 1 us.
/// assert_eq!(tenge.transfer_time_ps(1250), 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    bits_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from Gbit/s.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    pub fn gbit_per_sec(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        Self {
            bits_per_sec: gbps * 1e9,
        }
    }

    /// Creates a bandwidth from GB/s (gigabytes per second).
    pub fn gbyte_per_sec(gbps: f64) -> Self {
        Self::gbit_per_sec(gbps * 8.0)
    }

    /// The rate in Gbit/s.
    pub fn as_gbit_per_sec(&self) -> f64 {
        self.bits_per_sec / 1e9
    }

    /// The time to serialize `bytes` at this rate, in picoseconds
    /// (rounded up so a transfer never takes zero time).
    pub fn transfer_time_ps(&self, bytes: u64) -> TimeDelta {
        if bytes == 0 {
            return 0;
        }
        let ps = (bytes as f64 * 8.0) / self.bits_per_sec * 1e12;
        (ps.ceil() as TimeDelta).max(1)
    }

    /// The sustained rate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bits_per_sec / 8.0
    }
}

/// Serializes transmissions onto a shared medium, queueing behind earlier
/// ones — the core of the link, PCIe, and memory-bus models.
///
/// `admit` returns the interval `[start, end)` during which the given
/// transmission occupies the medium when submitted at `now`: it starts at
/// `max(now, busy_until)` and holds the medium for the serialization time.
#[derive(Debug, Clone)]
pub struct LinkSerializer {
    bandwidth: Bandwidth,
    busy_until: Time,
    /// Total bytes admitted, for utilization reports.
    bytes_total: u64,
}

impl LinkSerializer {
    /// Creates an idle serializer with the given bandwidth.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Self {
            bandwidth,
            busy_until: 0,
            bytes_total: 0,
        }
    }

    /// The configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The time until which the medium is currently occupied.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Total bytes admitted so far.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Admits a transmission of `bytes` submitted at `now`; returns
    /// `(start, end)` of its occupancy of the medium.
    pub fn admit(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        self.admit_with_overhead(now, bytes, 0)
    }

    /// Admits a transmission that also occupies the medium for a fixed
    /// per-command `overhead` (descriptor processing, TLP headers) — the
    /// cost that makes small random DMA commands so much less efficient
    /// than sequential streams.
    pub fn admit_with_overhead(&mut self, now: Time, bytes: u64, overhead: Time) -> (Time, Time) {
        let start = now.max(self.busy_until);
        let end = start + self.bandwidth.transfer_time_ps(bytes) + overhead;
        self.busy_until = end;
        self.bytes_total += bytes;
        (start, end)
    }

    /// Resets occupancy and counters (for reusing a testbed across runs).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.bytes_total = 0;
    }
}

/// Spaces transmissions to a *variable* target rate — the transmit-side
/// half of a congestion-control loop.
///
/// Unlike [`LinkSerializer`], whose bandwidth is a fixed property of the
/// medium, a pacer is told the current rate on every call (DCQCN adjusts
/// it between packets). `pace` returns the earliest time the given
/// transmission may start so that consecutive transmissions average the
/// requested rate: each packet reserves `bytes / rate` of pacer time
/// starting at `max(now, next_slot)`.
///
/// A pacer never delays below line rate on its own — callers feed its
/// result into [`LinkSerializer::admit`] as the submission time, so the
/// effective start is the later of the paced slot and the link's own
/// `busy_until`, and timer re-arming based on `busy_until` keeps working
/// unchanged.
#[derive(Debug, Clone, Default)]
pub struct Pacer {
    next_slot: Time,
}

impl Pacer {
    /// Creates an idle pacer (first transmission is never delayed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves pacer time for `bytes` at `rate`; returns the earliest
    /// permitted start of this transmission.
    pub fn pace(&mut self, now: Time, bytes: u64, rate: Bandwidth) -> Time {
        let start = now.max(self.next_slot);
        self.next_slot = start + rate.transfer_time_ps(bytes);
        start
    }

    /// The earliest time the next transmission may start (the end of the
    /// last reservation) — where to schedule a transmit-queue wakeup.
    pub fn next_ready(&self) -> Time {
        self.next_slot
    }

    /// Resets the pacer to idle.
    pub fn reset(&mut self) {
        self.next_slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MICROS;

    #[test]
    fn ten_gig_serialization_times() {
        let bw = Bandwidth::gbit_per_sec(10.0);
        assert_eq!(bw.transfer_time_ps(1250), MICROS);
        // 64 B at 10 Gbit/s = 51.2 ns.
        assert_eq!(bw.transfer_time_ps(64), 51_200);
        assert_eq!(bw.transfer_time_ps(0), 0);
    }

    #[test]
    fn gbyte_constructor_matches_gbit() {
        let a = Bandwidth::gbyte_per_sec(1.0);
        let b = Bandwidth::gbit_per_sec(8.0);
        assert_eq!(a.transfer_time_ps(1000), b.transfer_time_ps(1000));
    }

    #[test]
    fn tiny_transfers_take_at_least_one_ps() {
        let bw = Bandwidth::gbit_per_sec(100.0);
        assert!(bw.transfer_time_ps(1) >= 1);
    }

    #[test]
    fn serializer_queues_back_to_back() {
        let mut link = LinkSerializer::new(Bandwidth::gbit_per_sec(10.0));
        let (s1, e1) = link.admit(0, 1250);
        assert_eq!((s1, e1), (0, MICROS));
        // Submitted while busy: starts when the first ends.
        let (s2, e2) = link.admit(100, 1250);
        assert_eq!((s2, e2), (MICROS, 2 * MICROS));
        // Submitted after idle: starts immediately.
        let (s3, _) = link.admit(5 * MICROS, 1250);
        assert_eq!(s3, 5 * MICROS);
        assert_eq!(link.bytes_total(), 3750);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut link = LinkSerializer::new(Bandwidth::gbit_per_sec(10.0));
        link.admit(0, 10_000);
        link.reset();
        assert_eq!(link.busy_until(), 0);
        assert_eq!(link.bytes_total(), 0);
    }

    #[test]
    fn pacer_spaces_packets_to_the_requested_rate() {
        let mut p = Pacer::new();
        let half = Bandwidth::gbit_per_sec(5.0);
        // 1250 B at 5 Gbit/s reserve 2 us of pacer time each.
        assert_eq!(p.pace(0, 1250, half), 0);
        assert_eq!(p.pace(0, 1250, half), 2 * MICROS);
        assert_eq!(p.pace(0, 1250, half), 4 * MICROS);
        // An idle gap larger than the reservation is not credited back.
        assert_eq!(p.pace(100 * MICROS, 1250, half), 100 * MICROS);
    }

    #[test]
    fn pacer_tracks_rate_changes_immediately() {
        let mut p = Pacer::new();
        assert_eq!(p.pace(0, 1250, Bandwidth::gbit_per_sec(10.0)), 0);
        // Rate halves: the next packet is spaced at the new rate from the
        // previous reservation's end.
        assert_eq!(p.pace(0, 1250, Bandwidth::gbit_per_sec(5.0)), MICROS);
        assert_eq!(p.pace(0, 1250, Bandwidth::gbit_per_sec(5.0)), 3 * MICROS);
    }

    #[test]
    fn utilization_approaches_line_rate() {
        // Admitting 1 MiB in MTU-sized chunks back-to-back must finish in
        // almost exactly size/bandwidth.
        let mut link = LinkSerializer::new(Bandwidth::gbit_per_sec(10.0));
        let total: u64 = 1 << 20;
        let mut sent = 0;
        let mut end = 0;
        while sent < total {
            let chunk = 1500.min(total - sent);
            let (_, e) = link.admit(0, chunk);
            end = e;
            sent += chunk;
        }
        let ideal = Bandwidth::gbit_per_sec(10.0).transfer_time_ps(total);
        assert!(end >= ideal);
        assert!(end < ideal + 1000, "rounding should cost <1ns total");
    }
}
