//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by (time, insertion sequence): two events scheduled
//! for the same instant fire in the order they were scheduled, which makes
//! simulations reproducible regardless of payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use strom_telemetry::{Counter, TraceSink};

use crate::time::{Time, TimeDelta};

/// An event together with its firing time and a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute simulated time at which the event fires.
    pub at: Time,
    /// Monotonic insertion sequence; breaks ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that the `BinaryHeap` (a max-heap) pops the earliest
        // event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timed events with a monotonically advancing clock.
///
/// # Examples
///
/// ```
/// use strom_sim::EventQueue;
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(100, "b");
/// q.schedule_at(50, "a");
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((50, "a")));
/// assert_eq!(q.now(), 50);
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((100, "b")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Time,
    seq: u64,
    processed: u64,
    trace: TraceSink,
    dispatched: Option<Counter>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
            trace: TraceSink::default(),
            dispatched: None,
        }
    }

    /// Attaches telemetry: the queue publishes its clock to `trace` on every
    /// pop/advance (so instrumented components can stamp events with sim
    /// time without holding a clock reference) and counts dispatched events
    /// on `dispatched`. Either may be disabled/`None`.
    pub fn set_telemetry(&mut self, trace: TraceSink, dispatched: Option<Counter>) {
        trace.set_now(self.now);
        self.trace = trace;
        self.dispatched = dispatched;
    }

    /// The current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — hardware cannot react
    /// retroactively, and clamping keeps the clock monotonic.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: TimeDelta, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    ///
    /// If the clock was moved past the event's firing time by
    /// [`Self::advance_to`], the event still pops (in order) and the clock
    /// simply does not move backwards.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.heap.pop()?;
        self.now = self.now.max(s.at);
        self.processed += 1;
        self.trace.set_now(self.now);
        if let Some(c) = &self.dispatched {
            c.inc();
        }
        Some(s)
    }

    /// Advances the clock to `t` without processing events — used to model
    /// host CPU work happening between simulated I/O (e.g. a software
    /// CRC64 pass). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
        self.trace.set_now(self.now);
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 3);
        q.schedule_at(10, 1);
        q.schedule_at(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.schedule_at(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        // Scheduling in the past is clamped to now.
        q.schedule_at(1, ());
        let s = q.pop().unwrap();
        assert_eq!(s.at, 5);
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(25, "second");
        assert_eq!(q.pop().unwrap().at, 125);
    }

    #[test]
    fn telemetry_hook_publishes_clock_and_counts_dispatches() {
        let mut q = EventQueue::new();
        let trace = TraceSink::enabled(8);
        let dispatched = Counter::default();
        q.set_telemetry(trace.clone(), Some(dispatched.clone()));
        q.schedule_at(40, ());
        q.schedule_at(90, ());
        q.pop();
        assert_eq!(trace.now(), 40);
        q.advance_to(70);
        assert_eq!(trace.now(), 70);
        q.pop();
        assert_eq!(trace.now(), 90);
        assert_eq!(dispatched.get(), 2);
    }

    #[test]
    fn counters_track_processing() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.pending(), 2);
        assert_eq!(q.processed(), 0);
        q.pop();
        assert_eq!(q.pending(), 1);
        assert_eq!(q.processed(), 1);
        assert_eq!(q.peek_time(), Some(2));
    }
}
