//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by (time, insertion sequence): two events scheduled
//! for the same instant fire in the order they were scheduled, which makes
//! simulations reproducible regardless of payload type.
//!
//! Storage is a hybrid of a [hierarchical timer wheel](crate::wheel) for
//! near-future events (O(1) scheduling, the overwhelmingly common case:
//! link serialization, PCIe latencies, DMA completions) and an overflow
//! min-heap for far-future deadlines, which cascade into the wheel as the
//! clock advances. The original `BinaryHeap` engine survives as
//! [`ReferenceEventQueue`], differential-tested against the wheel — the
//! same keep-the-slow-one pattern as the byte-at-a-time CRC references.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use strom_telemetry::{Counter, TraceSink};

use crate::time::{Time, TimeDelta};
use crate::wheel::TimerWheel;

/// An event together with its firing time and a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute simulated time at which the event fires.
    pub at: Time,
    /// Monotonic insertion sequence; breaks ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that a `BinaryHeap` (a max-heap) pops the earliest
        // event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timed events with a monotonically advancing clock.
///
/// # Examples
///
/// ```
/// use strom_sim::EventQueue;
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(100, "b");
/// q.schedule_at(50, "a");
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((50, "a")));
/// assert_eq!(q.now(), 50);
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((100, "b")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    /// The earliest bucket, extracted from the wheel and held in
    /// *descending* seq order so [`Self::pop`] is a move off the end.
    /// Same-time events scheduled while the bucket drains re-enter the
    /// wheel (their seqs are larger, so they correctly pop afterwards).
    batch: Vec<Scheduled<E>>,
    now: Time,
    seq: u64,
    processed: u64,
    trace: TraceSink,
    dispatched: Option<Counter>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            wheel: TimerWheel::new(),
            batch: Vec::new(),
            now: 0,
            seq: 0,
            processed: 0,
            trace: TraceSink::default(),
            dispatched: None,
        }
    }

    /// Attaches telemetry: the queue publishes its clock to `trace` on every
    /// pop/advance (so instrumented components can stamp events with sim
    /// time without holding a clock reference) and counts dispatched events
    /// on `dispatched`. Either may be disabled/`None`.
    pub fn set_telemetry(&mut self, trace: TraceSink, dispatched: Option<Counter>) {
        trace.set_now(self.now);
        self.trace = trace;
        self.dispatched = dispatched;
    }

    /// The current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The number of events still pending.
    pub fn pending(&self) -> usize {
        self.wheel.len() + self.batch.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty() && self.wheel.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — hardware cannot react
    /// retroactively, and clamping keeps the clock monotonic.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        if self.wheel.is_empty() {
            // Nothing bounds the cursor: pull it up to the clock so a
            // long-idle queue files near-future events O(1) again.
            self.wheel.reset_cursor(self.now);
        }
        self.wheel.insert(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: TimeDelta, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    ///
    /// If the clock was moved past the event's firing time by
    /// [`Self::advance_to`], the event still pops (in order) and the clock
    /// simply does not move backwards.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.batch.is_empty() {
            self.wheel.pop_batch(&mut self.batch);
            self.batch.reverse();
        }
        let s = self.batch.pop()?;
        self.now = self.now.max(s.at);
        self.processed += 1;
        self.trace.set_now(self.now);
        if let Some(c) = &self.dispatched {
            c.inc();
        }
        Some(s)
    }

    /// Drains every pending event sharing the earliest firing time into
    /// `out` (appended in `(time, seq)` order) in one bucket operation —
    /// same-timestamp dispatch without re-touching the queue per event.
    /// Advances the clock exactly as the equivalent [`Self::pop`] loop
    /// would and returns the number of events drained.
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<E>>) -> usize {
        let n = if self.batch.is_empty() {
            self.wheel.pop_batch(out)
        } else {
            let n = self.batch.len();
            out.extend(self.batch.drain(..).rev());
            // Same-tick events scheduled during a partial pop of this
            // bucket re-entered the wheel with larger seqs; they are
            // still part of "the earliest tick", so drain them too.
            let extra = if self.wheel.min_time() == out.last().map(|s| s.at) {
                self.wheel.pop_batch(out)
            } else {
                0
            };
            n + extra
        };
        if n > 0 {
            let at = out.last().expect("n > 0").at;
            self.now = self.now.max(at);
            self.processed += n as u64;
            self.trace.set_now(self.now);
            if let Some(c) = &self.dispatched {
                c.add(n as u64);
            }
        }
        n
    }

    /// Advances the clock to `t` without processing events — used to model
    /// host CPU work happening between simulated I/O (e.g. a software
    /// CRC64 pass). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
        self.trace.set_now(self.now);
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.batch
            .last()
            .map(|s| s.at)
            .or_else(|| self.wheel.min_time())
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the differential
/// reference for the timer wheel (the engine equivalent of the
/// byte-at-a-time CRC references): O(log n) per operation, trivially
/// correct by construction. Property tests and the `sim_micro` benchmark
/// drive identical schedules through both and assert identical streams.
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// See [`EventQueue::now`].
    pub fn now(&self) -> Time {
        self.now
    }

    /// See [`EventQueue::processed`].
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// See [`EventQueue::pending`].
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// See [`EventQueue::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// See [`EventQueue::schedule_at`].
    pub fn schedule_at(&mut self, at: Time, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// See [`EventQueue::schedule_in`].
    pub fn schedule_in(&mut self, delay: TimeDelta, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// See [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.heap.pop()?;
        self.now = self.now.max(s.at);
        self.processed += 1;
        Some(s)
    }

    /// See [`EventQueue::pop_batch`]: drains every event tied with the
    /// earliest firing time, via repeated heap pops.
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<E>>) -> usize {
        let Some(at) = self.peek_time() else {
            return 0;
        };
        let mut n = 0;
        while self.heap.peek().map(|s| s.at) == Some(at) {
            out.push(self.heap.pop().expect("peeked"));
            n += 1;
        }
        self.now = self.now.max(at);
        self.processed += n as u64;
        n
    }

    /// See [`EventQueue::advance_to`].
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
    }

    /// See [`EventQueue::peek_time`].
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 3);
        q.schedule_at(10, 1);
        q.schedule_at(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.schedule_at(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        // Scheduling in the past is clamped to now.
        q.schedule_at(1, ());
        let s = q.pop().unwrap();
        assert_eq!(s.at, 5);
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(25, "second");
        assert_eq!(q.pop().unwrap().at, 125);
    }

    #[test]
    fn telemetry_hook_publishes_clock_and_counts_dispatches() {
        let mut q = EventQueue::new();
        let trace = TraceSink::enabled(8);
        let dispatched = Counter::default();
        q.set_telemetry(trace.clone(), Some(dispatched.clone()));
        q.schedule_at(40, ());
        q.schedule_at(90, ());
        q.pop();
        assert_eq!(trace.now(), 40);
        q.advance_to(70);
        assert_eq!(trace.now(), 70);
        q.pop();
        assert_eq!(trace.now(), 90);
        assert_eq!(dispatched.get(), 2);
    }

    #[test]
    fn counters_track_processing() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.pending(), 2);
        assert_eq!(q.processed(), 0);
        q.pop();
        assert_eq!(q.pending(), 1);
        assert_eq!(q.processed(), 1);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    fn pop_batch_drains_exactly_the_earliest_tick() {
        let mut q = EventQueue::new();
        q.schedule_at(7, "a");
        q.schedule_at(7, "b");
        q.schedule_at(9, "c");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 2);
        let got: Vec<_> = out.iter().map(|s| (s.at, s.event)).collect();
        assert_eq!(got, vec![(7, "a"), (7, "b")]);
        assert_eq!(q.now(), 7);
        assert_eq!(q.processed(), 2);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 1);
        assert_eq!(out[0].event, "c");
        assert_eq!(q.pop_batch(&mut out), 0);
    }

    #[test]
    fn pop_batch_counts_telemetry_per_event() {
        let mut q = EventQueue::new();
        let trace = TraceSink::enabled(8);
        let dispatched = Counter::default();
        q.set_telemetry(trace.clone(), Some(dispatched.clone()));
        for _ in 0..3 {
            q.schedule_at(11, ());
        }
        let mut out = Vec::new();
        q.pop_batch(&mut out);
        assert_eq!(dispatched.get(), 3);
        assert_eq!(trace.now(), 11);
    }

    #[test]
    fn partial_pop_then_batch_preserves_order() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule_at(5, i);
        }
        assert_eq!(q.pop().unwrap().event, 0);
        // A same-tick event scheduled mid-bucket still belongs to the
        // earliest tick — the batch drains it after the original events.
        q.schedule_at(5, 4);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 4);
        assert_eq!(
            out.iter().map(|s| s.event).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
    }

    #[test]
    fn reference_queue_matches_on_a_small_interleaving() {
        let mut q = EventQueue::new();
        let mut r = ReferenceEventQueue::new();
        for (at, ev) in [(30, 'a'), (10, 'b'), (30, 'c'), (20, 'd')] {
            q.schedule_at(at, ev);
            r.schedule_at(at, ev);
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
                }
                (None, None) => break,
                _ => panic!("queues diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
