//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by (time, insertion sequence): two events scheduled
//! for the same instant fire in the order they were scheduled, which makes
//! simulations reproducible regardless of payload type.
//!
//! Storage is a hybrid of a [hierarchical timer wheel](crate::wheel) for
//! near-future events (O(1) scheduling, the overwhelmingly common case:
//! link serialization, PCIe latencies, DMA completions) and an overflow
//! min-heap for far-future deadlines, which cascade into the wheel as the
//! clock advances. The original `BinaryHeap` engine survives as
//! [`ReferenceEventQueue`], differential-tested against the wheel — the
//! same keep-the-slow-one pattern as the byte-at-a-time CRC references.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use strom_telemetry::{Counter, TraceSink};

use crate::time::{Time, TimeDelta};
use crate::wheel::TimerWheel;

/// Cap on the number of events [`EventQueue`] pulls from the wheel in one
/// run. Bounds the memmove cost when [`EventQueue::schedule_at`] splices
/// an event into a partially drained run; buckets larger than this
/// cascade level-by-level as before.
const RUN_MAX: usize = 4096;

/// How many pops ahead of the cursor [`EventQueue`] prefetches payload
/// slab slots. A drained run fixes the pop order in advance, so the
/// otherwise-random slab read can start `PREFETCH_DIST` events early —
/// far enough to cover a DRAM miss at depth 1e6, near enough that the
/// line is still resident when its pop arrives.
const PREFETCH_DIST: usize = 8;

/// An event together with its firing time and a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute simulated time at which the event fires.
    pub at: Time,
    /// Monotonic insertion sequence; breaks ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that a `BinaryHeap` (a max-heap) pops the earliest
        // event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timed events with a monotonically advancing clock.
///
/// # Examples
///
/// ```
/// use strom_sim::EventQueue;
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(100, "b");
/// q.schedule_at(50, "a");
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((50, "a")));
/// assert_eq!(q.now(), 50);
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((100, "b")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The wheel carries compact `(at, seq, slab index)` tokens, not
    /// payloads. A pending event's payload is written to [`Self::pool`]
    /// once at schedule time and read once at pop time; every cascade,
    /// sort, and batch copy in between moves 24 bytes instead of a full
    /// `Scheduled<E>` — at depth 1e6 the queue is memory-bound, and the
    /// payload traffic, not the bucket arithmetic, is the cliff.
    wheel: TimerWheel<u32>,
    /// The earliest *run* of tokens — one or more whole wheel buckets,
    /// possibly spanning distinct firing times — in ascending `(at, seq)`
    /// order exactly as [`TimerWheel::pop_run`] produced it. Served
    /// front-to-back through [`Self::batch_pos`] so a refill never
    /// reverses or moves the run. Events scheduled before the run's last
    /// time while it drains are spliced into position
    /// ([`Self::schedule_at`]); everything else goes to the wheel, which
    /// therefore always fires at or after the run's last event.
    batch: Vec<Scheduled<u32>>,
    /// Index of the next unserved token in [`Self::batch`].
    batch_pos: usize,
    /// Payload slab, indexed by the token carried through the wheel.
    pool: Vec<Option<E>>,
    /// Free slab slots, reused LIFO so recently vacated (cache-warm)
    /// slots are refilled first.
    free: Vec<u32>,
    /// Scratch for same-tick wheel drains in [`Self::pop_batch`].
    tick_buf: Vec<Scheduled<u32>>,
    now: Time,
    seq: u64,
    processed: u64,
    trace: TraceSink,
    dispatched: Option<Counter>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            wheel: TimerWheel::new(),
            batch: Vec::new(),
            batch_pos: 0,
            pool: Vec::new(),
            free: Vec::new(),
            tick_buf: Vec::new(),
            now: 0,
            seq: 0,
            processed: 0,
            trace: TraceSink::default(),
            dispatched: None,
        }
    }

    /// Parks `event` in the slab and returns its token.
    fn park(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.pool[i as usize] = Some(event);
                i
            }
            None => {
                let i = u32::try_from(self.pool.len()).expect("more than u32::MAX pending events");
                self.pool.push(Some(event));
                i
            }
        }
    }

    /// Hints the CPU to pull the slab slot of the token `dist` pops ahead
    /// (index `batch_pos + dist`) into cache.
    #[inline]
    fn prefetch_ahead(&self, dist: usize) {
        #[cfg(target_arch = "x86_64")]
        if let Some(s) = self.batch.get(self.batch_pos + dist) {
            if let Some(slot) = self.pool.get(s.event as usize) {
                // SAFETY: prefetch is a pure cache hint on a valid
                // reference; it neither reads nor writes the value.
                unsafe {
                    core::arch::x86_64::_mm_prefetch(
                        slot as *const Option<E> as *const i8,
                        core::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
    }

    /// Reclaims a popped token's payload and frees its slab slot.
    fn unpark(&mut self, s: Scheduled<u32>) -> Scheduled<E> {
        let event = self.pool[s.event as usize]
            .take()
            .expect("token points at a live slab slot");
        self.free.push(s.event);
        Scheduled {
            at: s.at,
            seq: s.seq,
            event,
        }
    }

    /// Attaches telemetry: the queue publishes its clock to `trace` on every
    /// pop/advance (so instrumented components can stamp events with sim
    /// time without holding a clock reference) and counts dispatched events
    /// on `dispatched`. Either may be disabled/`None`.
    pub fn set_telemetry(&mut self, trace: TraceSink, dispatched: Option<Counter>) {
        trace.set_now(self.now);
        self.trace = trace;
        self.dispatched = dispatched;
    }

    /// The current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The number of events still pending.
    pub fn pending(&self) -> usize {
        self.wheel.len() + self.batch.len() - self.batch_pos
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.batch_pos == self.batch.len() && self.wheel.is_empty()
    }

    /// Refills the run buffer from the wheel when it is fully served.
    #[inline]
    fn refill(&mut self) {
        if self.batch_pos == self.batch.len() {
            self.batch.clear();
            self.batch_pos = 0;
            self.wheel.pop_run(&mut self.batch, RUN_MAX);
            for d in 0..PREFETCH_DIST {
                self.prefetch_ahead(d);
            }
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — hardware cannot react
    /// retroactively, and clamping keeps the clock monotonic.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let event = self.park(event);
        if self.batch.last().is_some_and(|max| at < max.at) && self.batch_pos < self.batch.len() {
            // The event lands inside the drained run, where the wheel can
            // no longer order it: splice it into position among the
            // unserved tokens. Runs are capped at `RUN_MAX`, so the
            // memmove stays small, and deltas shorter than the run span
            // are rare in practice.
            let pos = self.batch_pos
                + self.batch[self.batch_pos..].partition_point(|s| (s.at, s.seq) < (at, seq));
            self.batch.insert(pos, Scheduled { at, seq, event });
            return;
        }
        if self.wheel.is_empty() {
            // Nothing bounds the cursor: pull it up to the clock so a
            // long-idle queue files near-future events O(1) again.
            self.wheel.reset_cursor(self.now);
        }
        self.wheel.insert(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: TimeDelta, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    ///
    /// If the clock was moved past the event's firing time by
    /// [`Self::advance_to`], the event still pops (in order) and the clock
    /// simply does not move backwards.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.refill();
        self.prefetch_ahead(PREFETCH_DIST);
        let s = self.batch.get(self.batch_pos)?.clone();
        self.batch_pos += 1;
        self.now = self.now.max(s.at);
        self.processed += 1;
        self.trace.set_now(self.now);
        if let Some(c) = &self.dispatched {
            c.inc();
        }
        Some(self.unpark(s))
    }

    /// Drains every pending event sharing the earliest firing time into
    /// `out` (appended in `(time, seq)` order) in one bucket operation —
    /// same-timestamp dispatch without re-touching the queue per event.
    /// Advances the clock exactly as the equivalent [`Self::pop`] loop
    /// would and returns the number of events drained.
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<E>>) -> usize {
        self.refill();
        let n = match self.batch.get(self.batch_pos) {
            None => 0,
            Some(first) => {
                // The earliest tick is the equal-time group at the front
                // of the unserved run.
                let t = first.at;
                let end = self.batch[self.batch_pos..]
                    .iter()
                    .position(|s| s.at != t)
                    .map_or(self.batch.len(), |i| self.batch_pos + i);
                for i in self.batch_pos..end {
                    let s = self.batch[i].clone();
                    let e = self.unpark(s);
                    out.push(e);
                }
                let n = end - self.batch_pos;
                self.batch_pos = end;
                // Same-tick events scheduled during a partial pop of this
                // tick re-entered the wheel with larger seqs only when the
                // tick was the run's last time (earlier ones are spliced
                // into `batch`); they are still part of "the earliest
                // tick", so drain them too.
                let extra =
                    if self.batch_pos == self.batch.len() && self.wheel.min_time() == Some(t) {
                        let mut tick = std::mem::take(&mut self.tick_buf);
                        tick.clear();
                        self.wheel.pop_batch(&mut tick);
                        let extra = tick.len();
                        for s in tick.drain(..) {
                            let e = self.unpark(s);
                            out.push(e);
                        }
                        self.tick_buf = tick;
                        extra
                    } else {
                        0
                    };
                n + extra
            }
        };
        if n > 0 {
            let at = out.last().expect("n > 0").at;
            self.now = self.now.max(at);
            self.processed += n as u64;
            self.trace.set_now(self.now);
            if let Some(c) = &self.dispatched {
                c.add(n as u64);
            }
        }
        n
    }

    /// Advances the clock to `t` without processing events — used to model
    /// host CPU work happening between simulated I/O (e.g. a software
    /// CRC64 pass). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
        self.trace.set_now(self.now);
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.batch
            .get(self.batch_pos)
            .map(|s| s.at)
            .or_else(|| self.wheel.min_time())
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the differential
/// reference for the timer wheel (the engine equivalent of the
/// byte-at-a-time CRC references): O(log n) per operation, trivially
/// correct by construction. Property tests and the `sim_micro` benchmark
/// drive identical schedules through both and assert identical streams.
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// See [`EventQueue::now`].
    pub fn now(&self) -> Time {
        self.now
    }

    /// See [`EventQueue::processed`].
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// See [`EventQueue::pending`].
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// See [`EventQueue::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// See [`EventQueue::schedule_at`].
    pub fn schedule_at(&mut self, at: Time, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// See [`EventQueue::schedule_in`].
    pub fn schedule_in(&mut self, delay: TimeDelta, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// See [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.heap.pop()?;
        self.now = self.now.max(s.at);
        self.processed += 1;
        Some(s)
    }

    /// See [`EventQueue::pop_batch`]: drains every event tied with the
    /// earliest firing time, via repeated heap pops.
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<E>>) -> usize {
        let Some(at) = self.peek_time() else {
            return 0;
        };
        let mut n = 0;
        while self.heap.peek().map(|s| s.at) == Some(at) {
            out.push(self.heap.pop().expect("peeked"));
            n += 1;
        }
        self.now = self.now.max(at);
        self.processed += n as u64;
        n
    }

    /// See [`EventQueue::advance_to`].
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
    }

    /// See [`EventQueue::peek_time`].
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 3);
        q.schedule_at(10, 1);
        q.schedule_at(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.schedule_at(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        // Scheduling in the past is clamped to now.
        q.schedule_at(1, ());
        let s = q.pop().unwrap();
        assert_eq!(s.at, 5);
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(25, "second");
        assert_eq!(q.pop().unwrap().at, 125);
    }

    #[test]
    fn telemetry_hook_publishes_clock_and_counts_dispatches() {
        let mut q = EventQueue::new();
        let trace = TraceSink::enabled(8);
        let dispatched = Counter::default();
        q.set_telemetry(trace.clone(), Some(dispatched.clone()));
        q.schedule_at(40, ());
        q.schedule_at(90, ());
        q.pop();
        assert_eq!(trace.now(), 40);
        q.advance_to(70);
        assert_eq!(trace.now(), 70);
        q.pop();
        assert_eq!(trace.now(), 90);
        assert_eq!(dispatched.get(), 2);
    }

    #[test]
    fn counters_track_processing() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.pending(), 2);
        assert_eq!(q.processed(), 0);
        q.pop();
        assert_eq!(q.pending(), 1);
        assert_eq!(q.processed(), 1);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    fn pop_batch_drains_exactly_the_earliest_tick() {
        let mut q = EventQueue::new();
        q.schedule_at(7, "a");
        q.schedule_at(7, "b");
        q.schedule_at(9, "c");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 2);
        let got: Vec<_> = out.iter().map(|s| (s.at, s.event)).collect();
        assert_eq!(got, vec![(7, "a"), (7, "b")]);
        assert_eq!(q.now(), 7);
        assert_eq!(q.processed(), 2);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 1);
        assert_eq!(out[0].event, "c");
        assert_eq!(q.pop_batch(&mut out), 0);
    }

    #[test]
    fn pop_batch_counts_telemetry_per_event() {
        let mut q = EventQueue::new();
        let trace = TraceSink::enabled(8);
        let dispatched = Counter::default();
        q.set_telemetry(trace.clone(), Some(dispatched.clone()));
        for _ in 0..3 {
            q.schedule_at(11, ());
        }
        let mut out = Vec::new();
        q.pop_batch(&mut out);
        assert_eq!(dispatched.get(), 3);
        assert_eq!(trace.now(), 11);
    }

    #[test]
    fn partial_pop_then_batch_preserves_order() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule_at(5, i);
        }
        assert_eq!(q.pop().unwrap().event, 0);
        // A same-tick event scheduled mid-bucket still belongs to the
        // earliest tick — the batch drains it after the original events.
        q.schedule_at(5, 4);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 4);
        assert_eq!(
            out.iter().map(|s| s.event).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
    }

    #[test]
    fn reference_queue_matches_on_a_small_interleaving() {
        let mut q = EventQueue::new();
        let mut r = ReferenceEventQueue::new();
        for (at, ev) in [(30, 'a'), (10, 'b'), (30, 'c'), (20, 'd')] {
            q.schedule_at(at, ev);
            r.schedule_at(at, ev);
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
                }
                (None, None) => break,
                _ => panic!("queues diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
