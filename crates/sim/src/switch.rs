//! A deterministic store-and-forward Ethernet switch model.
//!
//! The paper deliberately removes the switch from its measurements ("we
//! directly connected two StRoM NICs to each other to remove the
//! potential noise introduced by a switch", §6.1); scaling the simulated
//! platform past two hosts puts one back. The model is a single
//! output-queued switch with `ports` ports, one NIC per port:
//!
//! ```text
//! ingress FIFO[p] ──┐
//! ingress FIFO[q] ──┼─► round-robin grant per egress ─► egress queue[e]
//! ingress FIFO[r] ──┘      (bounded, tail-drop)          └─► serializer
//! ```
//!
//! * **Ingress**: each port holds an arrival-ordered FIFO of received
//!   frames. A frame becomes *eligible* for forwarding `latency` after it
//!   has been fully received (store-and-forward switching delay).
//! * **Arbitration**: each egress port grants eligible ingress FIFO heads
//!   in round-robin order over the ingress ports, one frame per grant
//!   round, until no eligible head remains. Only FIFO heads are eligible
//!   (head-of-line blocking, as in a simple output-queued design). The
//!   grant order is a pure function of the queue contents and the
//!   per-egress cursors, so two same-seed simulations arbitrate
//!   identically — determinism does not depend on any RNG.
//! * **Egress**: each port owns a [`LinkSerializer`] at `port_rate` and a
//!   bounded queue of not-yet-transmitted frames. A granted frame that
//!   finds the queue at `egress_capacity` is **tail-dropped** (counted
//!   per port); otherwise it is admitted and leaves the port when its
//!   serialization completes.
//!
//! The model is generic over a caller payload `T` carried alongside each
//! frame, so the NIC layer can attach its own buffers and fault-model
//! decisions without this crate depending on them.

use std::collections::VecDeque;

use crate::rate::{Bandwidth, LinkSerializer};
use crate::rng::SimRng;
use crate::time::{Time, TimeDelta};

/// ECN marking policy for a [`Switch`] egress queue (RED/WRED-style).
///
/// A frame admitted to an egress queue observes the queue occupancy
/// `q` (frames already queued ahead of it, including the one in
/// service):
///
/// * `q < min_threshold` — never marked;
/// * `q >= max_threshold` — always marked;
/// * otherwise — marked with probability
///   `max_mark_prob * (q - min_threshold) / (max_threshold - min_threshold)`,
///   drawn from a dedicated [`SimRng`] stream seeded at construction.
///
/// Setting `min_threshold == max_threshold` gives a deterministic step
/// marker that consumes **zero** RNG draws — the configuration used by
/// reproducibility tests. Marking never drops frames; tail-drop at
/// `egress_capacity` still applies above it.
#[derive(Debug, Clone, Copy)]
pub struct EcnConfig {
    /// Occupancy below which frames are never marked.
    pub min_threshold: usize,
    /// Occupancy at or above which frames are always marked.
    pub max_threshold: usize,
    /// Marking probability as occupancy reaches `max_threshold`.
    pub max_mark_prob: f64,
    /// Seed of the switch's private WRED RNG stream.
    pub seed: u64,
}

impl EcnConfig {
    /// A deterministic step marker at `threshold` (no RNG draws).
    pub fn step(threshold: usize) -> Self {
        EcnConfig {
            min_threshold: threshold,
            max_threshold: threshold,
            max_mark_prob: 1.0,
            seed: 0,
        }
    }
}

/// Geometry and timing of a [`Switch`].
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Number of ports (one NIC per port).
    pub ports: usize,
    /// Egress serialization rate per port.
    pub port_rate: Bandwidth,
    /// Store-and-forward switching latency: delay between full frame
    /// reception on ingress and eligibility for egress arbitration.
    pub latency: TimeDelta,
    /// Maximum frames queued per egress port (including the frame in
    /// service); a granted frame beyond this bound is tail-dropped.
    pub egress_capacity: usize,
    /// ECN marking policy; `None` disables marking entirely (no RNG is
    /// even constructed, so disabled switches are bit-identical to the
    /// pre-ECN model).
    pub ecn: Option<EcnConfig>,
}

/// Per-port forwarding statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchPortCounters {
    /// Frames received on this ingress port.
    pub frames_in: u64,
    /// Frames serialized out of this egress port.
    pub frames_out: u64,
    /// Wire bytes serialized out of this egress port.
    pub bytes_out: u64,
    /// Frames tail-dropped at this egress port's queue bound.
    pub tail_drops: u64,
    /// Frames ECN-marked (CE) at this egress port.
    pub ecn_marked: u64,
    /// High watermark of this egress port's queue depth (frames,
    /// including the one in service) observed at admission time.
    pub queue_peak: u64,
}

/// A frame waiting in an ingress FIFO.
#[derive(Debug)]
struct InFrame<T> {
    dst: usize,
    wire_bytes: u64,
    /// When the frame becomes eligible for arbitration (fully received
    /// plus the switching latency).
    eligible: Time,
    payload: T,
}

/// A frame granted egress: it leaves the switch at `egress_end`.
#[derive(Debug)]
pub struct Delivery<T> {
    /// Ingress port the frame arrived on.
    pub src: usize,
    /// Egress port the frame leaves through.
    pub dst: usize,
    /// When the egress serializer finishes transmitting the frame.
    pub egress_end: Time,
    /// Whether the egress queue's ECN policy marked this frame (the
    /// caller applies the CE codepoint to the frame bytes).
    pub marked: bool,
    /// Caller payload attached at [`Switch::enqueue`].
    pub payload: T,
}

/// A frame tail-dropped at a full egress queue.
#[derive(Debug)]
pub struct TailDrop<T> {
    /// Ingress port the frame arrived on.
    pub src: usize,
    /// Egress port whose queue was full.
    pub dst: usize,
    /// Caller payload attached at [`Switch::enqueue`].
    pub payload: T,
}

/// The switch: per-port ingress FIFOs, round-robin arbitration, bounded
/// egress queues.
#[derive(Debug)]
pub struct Switch<T> {
    cfg: SwitchConfig,
    ingress: Vec<VecDeque<InFrame<T>>>,
    egress: Vec<LinkSerializer>,
    /// Serialization-end times of frames admitted to each egress port;
    /// entries at or before "now" have left the port and are pruned on
    /// the next grant. The live length is the egress queue depth.
    egress_queue: Vec<VecDeque<Time>>,
    /// Per-egress round-robin cursor: the ingress port granted first on
    /// the next round.
    rr: Vec<usize>,
    counters: Vec<SwitchPortCounters>,
    /// WRED marking stream; present only when `cfg.ecn` is, and drawn
    /// from only inside the probabilistic band, so deterministic
    /// configurations consume no randomness at all.
    mark_rng: Option<SimRng>,
}

impl<T> Switch<T> {
    /// Builds an idle switch.
    ///
    /// # Panics
    ///
    /// Panics on zero ports or a zero egress capacity.
    pub fn new(cfg: SwitchConfig) -> Self {
        assert!(cfg.ports > 0, "a switch needs at least one port");
        assert!(
            cfg.egress_capacity > 0,
            "egress queue capacity must be positive"
        );
        Switch {
            cfg,
            ingress: (0..cfg.ports).map(|_| VecDeque::new()).collect(),
            egress: (0..cfg.ports)
                .map(|_| LinkSerializer::new(cfg.port_rate))
                .collect(),
            egress_queue: (0..cfg.ports).map(|_| VecDeque::new()).collect(),
            rr: vec![0; cfg.ports],
            counters: vec![SwitchPortCounters::default(); cfg.ports],
            mark_rng: cfg.ecn.map(|e| SimRng::seed(e.seed)),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Accepts a frame fully received on ingress port `src` at `received`,
    /// destined for the NIC on port `dst`. Returns the time the frame
    /// becomes eligible for arbitration — the caller schedules a switch
    /// tick no later than that.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range port or a self-directed frame.
    pub fn enqueue(
        &mut self,
        src: usize,
        dst: usize,
        wire_bytes: u64,
        received: Time,
        payload: T,
    ) -> Time {
        assert!(
            src < self.cfg.ports && dst < self.cfg.ports,
            "port out of range"
        );
        assert_ne!(src, dst, "a NIC does not switch frames to itself");
        let eligible = received + self.cfg.latency;
        self.counters[src].frames_in += 1;
        self.ingress[src].push_back(InFrame {
            dst,
            wire_bytes,
            eligible,
            payload,
        });
        eligible
    }

    /// Frames still queued on ingress (not yet granted or dropped).
    pub fn pending(&self) -> usize {
        self.ingress.iter().map(VecDeque::len).sum()
    }

    /// Per-port counters.
    pub fn counters(&self, port: usize) -> SwitchPortCounters {
        self.counters[port]
    }

    /// Total tail drops across all egress ports.
    pub fn total_tail_drops(&self) -> u64 {
        self.counters.iter().map(|c| c.tail_drops).sum()
    }

    /// Runs arbitration at `now`: repeatedly grants one eligible ingress
    /// FIFO head per egress port (round-robin over ingress ports) until
    /// no grant is possible, appending the outcomes to `deliveries` and
    /// `drops` in grant order.
    pub fn arbitrate(
        &mut self,
        now: Time,
        deliveries: &mut Vec<Delivery<T>>,
        drops: &mut Vec<TailDrop<T>>,
    ) {
        loop {
            let mut granted = false;
            for e in 0..self.cfg.ports {
                // One grant per egress per round: scan ingress ports from
                // this egress's cursor for an eligible head destined here.
                let Some(src) = (0..self.cfg.ports)
                    .map(|k| (self.rr[e] + k) % self.cfg.ports)
                    .find(|&i| {
                        self.ingress[i]
                            .front()
                            .is_some_and(|f| f.dst == e && f.eligible <= now)
                    })
                else {
                    continue;
                };
                let frame = self.ingress[src].pop_front().expect("head just matched");
                self.rr[e] = (src + 1) % self.cfg.ports;
                granted = true;
                // Prune frames that have finished serializing; what
                // remains is the live egress queue depth.
                while self.egress_queue[e].front().is_some_and(|&end| end <= now) {
                    self.egress_queue[e].pop_front();
                }
                let occupancy = self.egress_queue[e].len();
                if occupancy >= self.cfg.egress_capacity {
                    self.counters[e].tail_drops += 1;
                    drops.push(TailDrop {
                        src,
                        dst: e,
                        payload: frame.payload,
                    });
                    continue;
                }
                let marked = self.mark_decision(e, occupancy);
                let (_, egress_end) = self.egress[e].admit(now, frame.wire_bytes);
                self.egress_queue[e].push_back(egress_end);
                self.counters[e].frames_out += 1;
                self.counters[e].bytes_out += frame.wire_bytes;
                self.counters[e].queue_peak = self.counters[e].queue_peak.max(occupancy as u64 + 1);
                if marked {
                    self.counters[e].ecn_marked += 1;
                }
                deliveries.push(Delivery {
                    src,
                    dst: e,
                    egress_end,
                    marked,
                    payload: frame.payload,
                });
            }
            if !granted {
                return;
            }
        }
    }

    /// The WRED marking decision for a frame admitted to egress `e` that
    /// observes `occupancy` frames queued ahead of it. RNG is consumed
    /// only inside the probabilistic band between the thresholds.
    fn mark_decision(&mut self, _e: usize, occupancy: usize) -> bool {
        let Some(ecn) = self.cfg.ecn else {
            return false;
        };
        if occupancy >= ecn.max_threshold {
            return true;
        }
        if occupancy < ecn.min_threshold {
            return false;
        }
        let span = (ecn.max_threshold - ecn.min_threshold) as f64;
        let p = ecn.max_mark_prob * (occupancy - ecn.min_threshold) as f64 / span;
        self.mark_rng
            .as_mut()
            .expect("mark_rng exists iff cfg.ecn does")
            .chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::NANOS;

    fn cfg(ports: usize, capacity: usize) -> SwitchConfig {
        SwitchConfig {
            ports,
            port_rate: Bandwidth::gbit_per_sec(10.0),
            latency: 300 * NANOS,
            egress_capacity: capacity,
            ecn: None,
        }
    }

    fn drain(sw: &mut Switch<u32>, now: Time) -> (Vec<Delivery<u32>>, Vec<TailDrop<u32>>) {
        let mut d = Vec::new();
        let mut x = Vec::new();
        sw.arbitrate(now, &mut d, &mut x);
        (d, x)
    }

    #[test]
    fn frame_is_held_for_the_switching_latency() {
        let mut sw = Switch::new(cfg(2, 8));
        let eligible = sw.enqueue(0, 1, 100, 1000, 7);
        assert_eq!(eligible, 1000 + 300 * NANOS);
        let (d, _) = drain(&mut sw, eligible - 1);
        assert!(d.is_empty(), "not yet eligible");
        let (d, _) = drain(&mut sw, eligible);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].src, d[0].dst, d[0].payload), (0, 1, 7));
        assert!(d[0].egress_end > eligible, "serialization takes time");
    }

    #[test]
    fn round_robin_grants_rotate_over_ingress_ports() {
        let mut sw = Switch::new(cfg(4, 64));
        // Ports 0, 1, 2 each have two frames for port 3, all eligible.
        for src in 0..3usize {
            for i in 0..2u32 {
                sw.enqueue(src, 3, 100, 0, src as u32 * 10 + i);
            }
        }
        let (d, x) = drain(&mut sw, 300 * NANOS);
        assert!(x.is_empty());
        let order: Vec<u32> = d.iter().map(|g| g.payload).collect();
        // Cursor starts at 0 and advances past each granted port:
        // 0, 1, 2, 0, 1, 2 — no ingress port is served twice in a row
        // while another has an eligible frame.
        assert_eq!(order, vec![0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn egress_queue_tail_drops_at_the_bound() {
        let mut sw = Switch::new(cfg(3, 2));
        // Six eligible frames race for port 2, which holds at most two.
        for i in 0..3u32 {
            sw.enqueue(0, 2, 1_000, 0, i);
            sw.enqueue(1, 2, 1_000, 0, 100 + i);
        }
        let (d, x) = drain(&mut sw, 300 * NANOS);
        assert_eq!(d.len(), 2, "queue admits exactly its capacity");
        assert_eq!(x.len(), 4, "the rest tail-drop");
        assert_eq!(sw.counters(2).tail_drops, 4);
        assert_eq!(sw.counters(2).frames_out, 2);
        // Drops preserve src attribution for per-port accounting.
        assert!(x.iter().all(|t| t.dst == 2));
    }

    #[test]
    fn egress_queue_drains_as_time_advances() {
        let mut sw = Switch::new(cfg(2, 1));
        sw.enqueue(0, 1, 1_000, 0, 1);
        let (d, _) = drain(&mut sw, 300 * NANOS);
        let end = d[0].egress_end;
        // A second frame while the first still serializes: dropped.
        sw.enqueue(0, 1, 1_000, end - 200 * NANOS, 2);
        let (d, x) = drain(&mut sw, end - 200 * NANOS + 300 * NANOS);
        // eligible at end+100ns > end: queue drained by then, admitted.
        assert_eq!((d.len(), x.len()), (1, 0));
        assert_eq!(sw.counters(1).frames_out, 2);
    }

    #[test]
    fn counters_track_bytes_and_frames() {
        let mut sw = Switch::new(cfg(2, 8));
        sw.enqueue(0, 1, 1_500, 0, 0);
        sw.enqueue(0, 1, 500, 0, 1);
        drain(&mut sw, 300 * NANOS);
        let c = sw.counters(1);
        assert_eq!((c.frames_out, c.bytes_out), (2, 2_000));
        assert_eq!(sw.counters(0).frames_in, 2);
        assert_eq!(sw.pending(), 0);
    }

    #[test]
    fn ingress_fifo_preserves_arrival_order_per_port() {
        let mut sw = Switch::new(cfg(2, 8));
        for i in 0..5u32 {
            sw.enqueue(0, 1, 100, i as u64 * 10, i);
        }
        let (d, _) = drain(&mut sw, 300 * NANOS + 100);
        let order: Vec<u32> = d.iter().map(|g| g.payload).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        // Egress completion times are strictly increasing: the
        // serializer admits them back to back.
        assert!(d.windows(2).all(|w| w[0].egress_end < w[1].egress_end));
    }

    #[test]
    fn step_marking_fires_exactly_at_the_threshold() {
        // Step marker at occupancy 2: frames 0 and 1 (seeing 0 and 1
        // queued ahead) pass unmarked; frames 2.. (seeing >= 2) are CE.
        let mut c = cfg(3, 64);
        c.ecn = Some(EcnConfig::step(2));
        let mut sw = Switch::new(c);
        for i in 0..6u32 {
            sw.enqueue(0, 2, 1_000, 0, i);
        }
        let (d, x) = drain(&mut sw, 300 * NANOS);
        assert!(x.is_empty());
        let marks: Vec<bool> = d.iter().map(|g| g.marked).collect();
        assert_eq!(marks, vec![false, false, true, true, true, true]);
        assert_eq!(sw.counters(2).ecn_marked, 4);
        assert_eq!(sw.counters(2).queue_peak, 6);
    }

    #[test]
    fn queue_peak_tracks_the_high_watermark() {
        let mut sw = Switch::new(cfg(2, 64));
        sw.enqueue(0, 1, 1_000, 0, 0);
        drain(&mut sw, 300 * NANOS);
        assert_eq!(sw.counters(1).queue_peak, 1);
        // Two more while the first may still serialize.
        sw.enqueue(0, 1, 1_000, 0, 1);
        sw.enqueue(0, 1, 1_000, 0, 2);
        drain(&mut sw, 300 * NANOS);
        assert_eq!(sw.counters(1).queue_peak, 3);
    }

    #[test]
    fn wred_band_marks_probabilistically_and_reproducibly() {
        let run = |seed: u64| {
            let mut c = cfg(2, 4096);
            c.ecn = Some(EcnConfig {
                min_threshold: 0,
                max_threshold: 1_000,
                max_mark_prob: 0.5,
                seed,
            });
            let mut sw = Switch::new(c);
            for i in 0..900u32 {
                sw.enqueue(0, 1, 1_000, 0, i);
            }
            let (d, _) = drain(&mut sw, 300 * NANOS);
            d.iter().map(|g| g.marked).collect::<Vec<bool>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same marks");
        assert_ne!(a, run(8), "different seed, different marks");
        // Probability ramps from 0 toward 0.5·0.9: the tail should mark
        // far more often than the head, and neither all nor none.
        let head = a[..300].iter().filter(|&&m| m).count();
        let tail = a[600..].iter().filter(|&&m| m).count();
        assert!(head < tail, "head {head} vs tail {tail}");
        assert!(tail > 60 && head < 120);
    }

    #[test]
    fn disabled_ecn_never_marks() {
        let mut sw = Switch::new(cfg(3, 2));
        for i in 0..6u32 {
            sw.enqueue(0, 2, 1_000, 0, i);
        }
        let (d, _) = drain(&mut sw, 300 * NANOS);
        assert!(d.iter().all(|g| !g.marked));
        assert_eq!(sw.counters(2).ecn_marked, 0);
    }

    #[test]
    fn arbitration_is_deterministic() {
        let run = || {
            let mut sw = Switch::new(cfg(8, 4));
            for src in 0..8usize {
                for i in 0..4u32 {
                    let dst = (src + 1 + i as usize) % 8;
                    if dst != src {
                        sw.enqueue(src, dst, 200 + i as u64, i as u64, src as u32 * 100 + i);
                    }
                }
            }
            let mut d = Vec::new();
            let mut x = Vec::new();
            sw.arbitrate(400 * NANOS, &mut d, &mut x);
            (
                d.iter()
                    .map(|g| (g.src, g.dst, g.egress_end, g.payload))
                    .collect::<Vec<_>>(),
                x.len(),
            )
        };
        assert_eq!(run(), run());
    }
}
