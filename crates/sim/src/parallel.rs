//! Deterministic fan-out across OS threads for embarrassingly parallel
//! sweeps (multi-seed chaos soaks, multi-point figure experiments).
//!
//! Each item runs one fully independent simulation — its own testbed,
//! its own seeded RNG, no shared mutable state — so host-side scheduling
//! cannot perturb simulated time. [`parallel_map`] only changes *when*
//! (in wall-clock) each item runs, never *what* it computes, and results
//! are returned in input order, so a parallel sweep's output is
//! bit-identical to running the same closure in a sequential loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `max_workers` scoped threads,
/// returning results in input order.
///
/// The closure must be self-contained per item (the usual shape: build a
/// simulation from a seed, run it, return its report). Work is handed
/// out through an atomic counter, so thread count and scheduling affect
/// only wall-clock time. A panic in any worker propagates to the caller
/// once the scope joins.
///
/// With one worker (or one item) this degenerates to a plain sequential
/// loop on the calling thread — handy for determinism A/B tests.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = max_workers.max(1).min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let item = items[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each item is claimed once");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every worker stored its result")
        })
        .collect()
}

/// A sensible worker count for [`parallel_map`]: the machine's available
/// parallelism, bounded so sweeps do not oversubscribe small CI runners.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let out = parallel_map((0..100u64).collect(), 8, |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn matches_the_sequential_loop_bit_for_bit() {
        // Per-item deterministic work (a seeded RNG stream) must not be
        // perturbed by which worker runs it.
        let work = |seed: u64| {
            let mut rng = crate::SimRng::seed(seed);
            (0..1000)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let seeds: Vec<u64> = (0..24).collect();
        let sequential: Vec<u64> = seeds.iter().map(|&s| work(s)).collect();
        let parallel = parallel_map(seeds, 6, work);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn single_worker_and_empty_inputs_degenerate() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |i| i + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(Vec::<u64>::new(), 8, |i| i), Vec::<u64>::new());
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(vec![0u64, 1, 2, 3], 2, |i| {
                assert_ne!(i, 2, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}
