//! Deterministic fan-out across OS threads for embarrassingly parallel
//! sweeps (multi-seed chaos soaks, multi-point figure experiments).
//!
//! Each item runs one fully independent simulation — its own testbed,
//! its own seeded RNG, no shared mutable state — so host-side scheduling
//! cannot perturb simulated time. [`parallel_map`] only changes *when*
//! (in wall-clock) each item runs, never *what* it computes, and results
//! are returned in input order, so a parallel sweep's output is
//! bit-identical to running the same closure in a sequential loop.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size array of slots owned one-per-index by whichever worker
/// claimed that index from the dispenser.
///
/// The dispenser's `fetch_add` hands every index to exactly one worker,
/// so slot access is exclusive by construction — no per-slot lock needed.
/// Contents are `MaybeUninit`: dropping the container never drops slot
/// contents, which makes a mid-sweep panic leak (never double-drop) the
/// unclaimed items and finished results.
struct Slots<T>(Vec<UnsafeCell<MaybeUninit<T>>>);

// SAFETY: distinct indices refer to disjoint slots, and the atomic
// dispenser gives each index to exactly one worker; the scope join
// orders all worker writes before the caller's reads.
unsafe impl<T: Send> Sync for Slots<T> {}

/// Maps `f` over `items` on up to `max_workers` scoped threads,
/// returning results in input order.
///
/// The closure must be self-contained per item (the usual shape: build a
/// simulation from a seed, run it, return its report). Work is handed
/// out as index chunks from one atomic counter, and each worker writes
/// results straight into the pre-sized slot for its index, so thread
/// count and scheduling affect only wall-clock time — there is no lock
/// to contend on and no allocation in the handout path. A panic in any
/// worker propagates to the caller once the scope joins (leaking, not
/// dropping, the unfinished slots).
///
/// With one worker (or one item) this degenerates to a plain sequential
/// loop on the calling thread — handy for determinism A/B tests.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = max_workers.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Chunked handout: one `fetch_add` claims `chunk` consecutive items.
    // Small enough to keep workers balanced on heavy-tailed sims, large
    // enough that many-item sweeps are not serialized on the counter.
    let chunk = (n / (workers * 8)).max(1);
    let items = Slots(
        items
            .into_iter()
            .map(|t| UnsafeCell::new(MaybeUninit::new(t)))
            .collect(),
    );
    let results: Slots<R> = Slots(
        (0..n)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
    );
    let next = AtomicUsize::new(0);
    // Capture whole-struct references: closure field capture would
    // otherwise borrow the inner `Vec` directly, past the `Sync` wrapper.
    let (items_ref, results_ref, next_ref, f_ref) = (&items, &results, &next, &f);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let start = next_ref.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    // SAFETY: the dispenser hands index `i` to this worker
                    // alone; the item slot was initialized from `items`
                    // and is read (moved out) exactly once.
                    let item = unsafe { (*items_ref.0[i].get()).assume_init_read() };
                    let result = f_ref(item);
                    // SAFETY: same exclusivity; the result slot is written
                    // exactly once and read only after the scope joins.
                    unsafe { (*results_ref.0[i].get()).write(result) };
                }
            });
        }
    });
    results
        .0
        .into_iter()
        // SAFETY: the scope joined without panicking, so every index was
        // claimed and its result slot written.
        .map(|slot| unsafe { slot.into_inner().assume_init() })
        .collect()
}

/// A sensible worker count for [`parallel_map`]: the machine's available
/// parallelism, bounded so sweeps do not oversubscribe small CI runners.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let out = parallel_map((0..100u64).collect(), 8, |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn matches_the_sequential_loop_bit_for_bit() {
        // Per-item deterministic work (a seeded RNG stream) must not be
        // perturbed by which worker runs it.
        let work = |seed: u64| {
            let mut rng = crate::SimRng::seed(seed);
            (0..1000)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let seeds: Vec<u64> = (0..24).collect();
        let sequential: Vec<u64> = seeds.iter().map(|&s| work(s)).collect();
        let parallel = parallel_map(seeds, 6, work);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn chunked_handout_covers_every_item_exactly_once() {
        // Many more items than workers so the dispenser hands out
        // multi-item chunks; every index must be mapped exactly once and
        // land in its own slot.
        let out = parallel_map((0..10_000u64).collect(), 4, |i| i + 1);
        assert_eq!(out, (1..=10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn non_copy_items_and_results_round_trip() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let expect: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        let out = parallel_map(items, 3, |s| format!("{s}!"));
        assert_eq!(out, expect);
    }

    #[test]
    fn single_worker_and_empty_inputs_degenerate() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |i| i + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(Vec::<u64>::new(), 8, |i| i), Vec::<u64>::new());
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(vec![0u64, 1, 2, 3], 2, |i| {
                assert_ne!(i, 2, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}
