//! Latency and throughput statistics in the paper's reporting style.
//!
//! Every latency figure in the paper reports the **median** with **1st and
//! 99th percentile** whiskers (Figs 5, 7, 8, 9, 12); [`Samples`] collects
//! raw observations and [`LatencySummary`] condenses them the same way.

use crate::time::Time;

/// A collection of raw samples (latencies in picoseconds, or any metric).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<u64>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
    }

    /// The number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read-only access to the raw values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The `q`-quantile (0.0 ..= 1.0) by the nearest-rank method.
    ///
    /// Returns `None` on an empty sample set.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// The arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().map(|&v| v as f64).sum::<f64>() / self.values.len() as f64)
    }

    /// Condenses into the paper's median/p1/p99 summary.
    ///
    /// Returns `None` on an empty sample set.
    pub fn summarize(&self) -> Option<LatencySummary> {
        Some(LatencySummary {
            median: self.quantile(0.5)?,
            p01: self.quantile(0.01)?,
            p99: self.quantile(0.99)?,
            mean: self.mean()?,
            count: self.values.len(),
        })
    }
}

/// Median / 1st percentile / 99th percentile, as reported in the paper's
/// latency plots, plus the mean (used by Fig 10, which reports averages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median observation.
    pub median: u64,
    /// 1st-percentile observation (lower whisker).
    pub p01: u64,
    /// 99th-percentile observation (upper whisker).
    pub p99: u64,
    /// Arithmetic mean (Fig 10 reports average latency).
    pub mean: f64,
    /// Number of observations summarized.
    pub count: usize,
}

impl LatencySummary {
    /// Median in microseconds (latencies are recorded in picoseconds).
    pub fn median_us(&self) -> f64 {
        self.median as f64 / 1e6
    }

    /// 1st percentile in microseconds.
    pub fn p01_us(&self) -> f64 {
        self.p01 as f64 / 1e6
    }

    /// 99th percentile in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99 as f64 / 1e6
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean / 1e6
    }
}

/// Computes goodput in Gbit/s for `bytes` of payload delivered over the
/// simulated interval `[start, end]`.
///
/// Returns 0 for an empty interval.
pub fn goodput_gbps(bytes: u64, start: Time, end: Time) -> f64 {
    if end <= start {
        return 0.0;
    }
    let secs = (end - start) as f64 / 1e12;
    bytes as f64 * 8.0 / 1e9 / secs
}

/// Computes a message rate in million messages per second over the
/// simulated interval `[start, end]`.
pub fn msg_rate_mps(messages: u64, start: Time, end: Time) -> f64 {
    if end <= start {
        return 0.0;
    }
    let secs = (end - start) as f64 / 1e12;
    messages as f64 / 1e6 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.record(v);
        }
        assert_eq!(s.quantile(0.5), Some(50));
        assert_eq!(s.quantile(0.01), Some(1));
        assert_eq!(s.quantile(0.99), Some(99));
        assert_eq!(s.quantile(1.0), Some(100));
        assert_eq!(s.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_samples_have_no_summary() {
        let s = Samples::new();
        assert!(s.summarize().is_none());
        assert!(s.quantile(0.5).is_none());
        assert!(s.mean().is_none());
    }

    #[test]
    fn summary_fields() {
        let mut s = Samples::new();
        for v in [10u64, 20, 30] {
            s.record(v);
        }
        let sum = s.summarize().unwrap();
        assert_eq!(sum.median, 20);
        assert_eq!(sum.p01, 10);
        assert_eq!(sum.p99, 30);
        assert!((sum.mean - 20.0).abs() < 1e-9);
        assert_eq!(sum.count, 3);
    }

    #[test]
    fn summary_unit_conversions() {
        let sum = LatencySummary {
            median: 3_000_000,
            p01: 1_000_000,
            p99: 9_000_000,
            mean: 4_000_000.0,
            count: 1,
        };
        assert!((sum.median_us() - 3.0).abs() < 1e-12);
        assert!((sum.p01_us() - 1.0).abs() < 1e-12);
        assert!((sum.p99_us() - 9.0).abs() < 1e-12);
        assert!((sum.mean_us() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn goodput_math() {
        // 1.25 GB in 1 s = 10 Gbit/s.
        let g = goodput_gbps(1_250_000_000, 0, 1_000_000_000_000);
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(goodput_gbps(100, 5, 5), 0.0);
    }

    #[test]
    fn msg_rate_math() {
        // 8 M messages in 1 s = 8 Mmsg/s.
        let r = msg_rate_mps(8_000_000, 0, 1_000_000_000_000);
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut s = Samples::new();
        for v in [5u64, 1, 9, 7, 3, 8, 2, 6, 4] {
            s.record(v);
        }
        let mut prev = 0;
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }
}
