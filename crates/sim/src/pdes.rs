//! Conservative time-windowed parallel DES (PDES) engine.
//!
//! The cluster model has *physical lookahead*: every event that crosses
//! from one node's NIC to another rides a link or a switch hop whose
//! latency is at least the serialization quantum of one frame. A
//! partition (one node, or the switch) therefore cannot be surprised by
//! a remote event sooner than `lookahead` picoseconds after the remote
//! partition's current time — the classic conservative-synchronization
//! guarantee (Chandy/Misra/Bryant, here in its barrier-window form).
//!
//! The engine exploits that: the event space is split into partitions,
//! each with its own [`EventQueue`] (and thus its own timer wheel),
//! driven by a pool of worker threads. Execution proceeds in *windows*:
//!
//! 1. **Deliver** — each partition drains its inbound mailboxes (one
//!    ordered mailbox per source partition), sorts the arrivals by the
//!    canonical key `(time, source partition, source sequence)`, and
//!    files them into its local queue.
//! 2. **Barrier**, then every worker computes the same global minimum
//!    next-event time `m`; the window is `[m, m + lookahead)`.
//! 3. **Execute** — each partition runs all its events with `at <
//!    window_end` in canonical-key order. Emissions to *itself* go
//!    straight into its queue (strictly future: `delay >= 1`);
//!    emissions to *other* partitions (which must respect `delay >=
//!    lookahead`, checked at every send) are appended to the per-pair
//!    mailbox, to be delivered at the next window's step 1. A second
//!    barrier ends the window.
//!
//! Safety of the window: every event executed in the window has `at >=
//! m`, so every cross-partition emission lands at `at + lookahead >=
//! window_end` — no partition can receive an event inside a window it
//! is already executing. Window time-ranges are therefore disjoint and
//! ascending across the run.
//!
//! **Determinism.** Every event carries a key `(at, src, seq)` assigned
//! at *send* time — `src` is the emitting partition, `seq` its private
//! emission counter. A partition handles its events in exactly
//! canonical-key order, so the sequence of `handle` calls each
//! partition sees — and hence its state, its emissions, and their
//! sequence numbers — is a pure function of the model, independent of
//! worker count and thread scheduling. The global dispatch order is
//! defined as the merge by `(at, dst, src, seq)`; equal-time events at
//! different destinations cannot affect each other inside a window
//! (cross sends land at least `lookahead` later), so this merge is a
//! legal serialization. [`PdesEngine::run_reference`] executes that
//! exact serialization one event at a time on a single global heap —
//! the differential reference, kept for the same reason
//! [`ReferenceEventQueue`](crate::ReferenceEventQueue) shadows the
//! timer wheel — and must produce bit-identical dispatch logs,
//! fingerprints, and partition states to [`PdesEngine::run`] at any
//! worker count.

use std::cell::UnsafeCell;
use std::cmp::Ordering as CmpOrdering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{EventQueue, Scheduled};
use crate::time::{Time, TimeDelta};

/// Identifies a partition (a node, or the switch) in a PDES run.
pub type PartitionId = usize;

/// "No pending event" marker in the shared next-time slots.
const T_NONE: u64 = u64::MAX;

/// One partition of the simulated world: a self-contained chunk of
/// state whose only interaction with other partitions is through timed
/// events sent via the [`Outbox`].
pub trait Partition {
    /// The event payload exchanged between partitions.
    type Event;

    /// Called once at time zero, before any event fires; seed the
    /// initial events here. Self-sends need `delay >= 1` and
    /// cross-sends `delay >= lookahead`, exactly as in [`Self::handle`].
    fn init(&mut self, out: &mut Outbox<'_, Self::Event>);

    /// Handles one event at simulated time `out.now()`. Emissions go
    /// through `out`; sending under the contract delays panics — that
    /// would falsify the conservative window argument.
    fn handle(&mut self, event: Self::Event, out: &mut Outbox<'_, Self::Event>);
}

/// Collects the emissions of one `init`/`handle` call and enforces the
/// lookahead contract at every send.
pub struct Outbox<'a, E> {
    src: PartitionId,
    now: Time,
    lookahead: TimeDelta,
    emit_seq: &'a mut u64,
    self_out: &'a mut Vec<(Time, u64, E)>,
    cross_out: &'a mut Vec<(PartitionId, Time, u64, E)>,
}

impl<E> Outbox<'_, E> {
    /// The simulated time of the event being handled (zero in `init`).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The partition this outbox belongs to.
    pub fn src(&self) -> PartitionId {
        self.src
    }

    /// Schedules `event` to fire at partition `dst`, `delay` picoseconds
    /// from now.
    ///
    /// # Panics
    ///
    /// A self-send with `delay == 0` panics (events must make progress:
    /// the equal-time batch a partition executes is fixed before it
    /// starts). A cross-partition send with `delay < lookahead` panics —
    /// it violates the physical-lookahead premise the window barrier is
    /// built on, and silently accepting it would let a parallel run
    /// diverge from the reference.
    pub fn send(&mut self, dst: PartitionId, delay: TimeDelta, event: E) {
        let seq = *self.emit_seq;
        *self.emit_seq += 1;
        let at = self.now + delay;
        if dst == self.src {
            assert!(
                delay >= 1,
                "partition {dst}: zero-delay self-send at t={}",
                self.now
            );
            self.self_out.push((at, seq, event));
        } else {
            assert!(
                delay >= self.lookahead,
                "partition {} -> {dst}: delay {delay} ps under the lookahead {} ps at t={}",
                self.src,
                self.lookahead,
                self.now
            );
            self.cross_out.push((dst, at, seq, event));
        }
    }
}

/// One dispatched event in the canonical global order, for record-mode
/// differential comparisons. Field order is the merge key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DispatchRecord {
    /// Firing time.
    pub at: Time,
    /// Destination (handling) partition.
    pub dst: PartitionId,
    /// Source (emitting) partition.
    pub src: PartitionId,
    /// Source emission sequence.
    pub seq: u64,
}

/// What a PDES run produced, for throughput reporting and differential
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdesReport {
    /// Total events dispatched across all partitions.
    pub events: u64,
    /// Number of windows executed (the reference counts one per event).
    pub windows: u64,
    /// XOR over per-partition dispatch-stream fingerprints: identical
    /// across worker counts and the reference iff every partition saw
    /// the same event stream.
    pub fingerprint: u64,
    /// Per-partition dispatch-stream fingerprints (FNV-1a over the
    /// canonical keys, in handling order).
    pub partition_fingerprints: Vec<u64>,
    /// The full dispatch log, merged into canonical global order —
    /// populated only when the engine was built [`PdesEngine::recorded`].
    pub log: Option<Vec<DispatchRecord>>,
}

/// An event filed in a partition's local queue, carrying its send-time
/// canonical key (the firing time rides in the queue's [`Scheduled`]).
#[derive(Debug, Clone)]
struct LocalEvent<E> {
    src: PartitionId,
    seq: u64,
    event: E,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_mix(fp: &mut u64, v: u64) {
    *fp = (*fp ^ v).wrapping_mul(FNV_PRIME);
}

/// Everything one partition's owning worker touches while executing.
struct PartState<P: Partition> {
    part: P,
    queue: EventQueue<LocalEvent<P::Event>>,
    /// Private emission counter (the `seq` of the canonical key).
    emit_seq: u64,
    /// FNV-1a over this partition's dispatch stream.
    fp: u64,
    dispatched: u64,
    log: Option<Vec<DispatchRecord>>,
    /// Scratch: equal-time batch being sorted into canonical order.
    batch: Vec<Scheduled<LocalEvent<P::Event>>>,
    /// Scratch: self emissions of the current handle call.
    self_out: Vec<(Time, u64, P::Event)>,
    /// Cross emissions of the current window, flushed to the mailboxes
    /// at the window's end.
    cross_out: Vec<(PartitionId, Time, u64, P::Event)>,
    /// Scratch: mailbox arrivals being sorted before filing.
    inbound: Vec<(Time, PartitionId, u64, P::Event)>,
}

impl<P: Partition> PartState<P> {
    fn new(part: P, record: bool) -> Self {
        Self {
            part,
            queue: EventQueue::new(),
            emit_seq: 0,
            fp: FNV_OFFSET,
            dispatched: 0,
            log: record.then(Vec::new),
            batch: Vec::new(),
            self_out: Vec::new(),
            cross_out: Vec::new(),
            inbound: Vec::new(),
        }
    }

    fn next_time(&self) -> u64 {
        self.queue.peek_time().unwrap_or(T_NONE)
    }

    /// Runs `init` at time zero and files the seeded self events (cross
    /// seeds stay in `cross_out` for the caller to flush).
    fn run_init(&mut self, me: PartitionId, lookahead: TimeDelta) {
        let mut out = Outbox {
            src: me,
            now: 0,
            lookahead,
            emit_seq: &mut self.emit_seq,
            self_out: &mut self.self_out,
            cross_out: &mut self.cross_out,
        };
        self.part.init(&mut out);
        for (at, seq, event) in self.self_out.drain(..) {
            self.queue.schedule_at(
                at,
                LocalEvent {
                    src: me,
                    seq,
                    event,
                },
            );
        }
    }

    /// Drains every inbound mailbox into the local queue in canonical
    /// order. Mailboxes are indexed `src * n + dst` in `boxes`.
    fn deliver(&mut self, me: PartitionId, n: usize, boxes: &[Mailbox<P::Event>]) {
        for src in 0..n {
            let mut inbox = boxes[src * n + me].lock().expect("mailbox poisoned");
            for (at, seq, event) in inbox.drain(..) {
                self.inbound.push((at, src, seq, event));
            }
        }
        self.inbound
            .sort_by_key(|&(at, src, seq, _)| (at, src, seq));
        for (at, src, seq, event) in self.inbound.drain(..) {
            self.queue.schedule_at(at, LocalEvent { src, seq, event });
        }
    }

    /// Executes every local event with `at < window_end` in canonical
    /// order, accumulating cross emissions in `self.cross_out`.
    fn run_window(&mut self, me: PartitionId, window_end: Time, lookahead: TimeDelta) {
        while self.queue.peek_time().is_some_and(|t| t < window_end) {
            let mut batch = std::mem::take(&mut self.batch);
            batch.clear();
            self.queue.pop_batch(&mut batch);
            // The queue hands the equal-time group out in insertion
            // order; the canonical order within a tick is (src, seq).
            batch.sort_by_key(|s| (s.event.src, s.event.seq));
            for s in batch.drain(..) {
                fnv_mix(&mut self.fp, s.at);
                fnv_mix(&mut self.fp, s.event.src as u64);
                fnv_mix(&mut self.fp, s.event.seq);
                self.dispatched += 1;
                if let Some(log) = &mut self.log {
                    log.push(DispatchRecord {
                        at: s.at,
                        dst: me,
                        src: s.event.src,
                        seq: s.event.seq,
                    });
                }
                let mut out = Outbox {
                    src: me,
                    now: s.at,
                    lookahead,
                    emit_seq: &mut self.emit_seq,
                    self_out: &mut self.self_out,
                    cross_out: &mut self.cross_out,
                };
                self.part.handle(s.event.event, &mut out);
                for (at, seq, event) in self.self_out.drain(..) {
                    self.queue.schedule_at(
                        at,
                        LocalEvent {
                            src: me,
                            seq,
                            event,
                        },
                    );
                }
            }
            self.batch = batch;
        }
    }

    /// Flushes the window's cross emissions into the per-pair mailboxes.
    fn flush_cross(&mut self, me: PartitionId, n: usize, boxes: &[Mailbox<P::Event>]) {
        for (dst, at, seq, event) in self.cross_out.drain(..) {
            boxes[me * n + dst]
                .lock()
                .expect("mailbox poisoned")
                .push((at, seq, event));
        }
    }
}

/// One ordered cross-partition mailbox: `(arrival time, send seq,
/// event)` triples from a single source, appended in the sender's
/// window and drained by the receiver in the next.
type Mailbox<E> = Mutex<Vec<(Time, u64, E)>>;

/// The window barrier: a cyclic barrier that doubles as the min-reduce
/// for the window consensus and can be *poisoned*.
///
/// The threaded window loop needs every worker to agree, each window,
/// on one value: the global minimum next-event time `m`. Computing it
/// from per-partition atomic slots and having each worker take its own
/// minimum opens a consensus seam — any two workers reading different
/// values (a caught panic leaving slots stale, a reordered relaxed
/// load) makes one worker exit the loop while its peers re-enter it,
/// and a `std::sync::Barrier` then blocks the survivors forever. Here
/// the fold happens once, under the barrier's own mutex: each arrival
/// folds its local minimum into the generation accumulator, the last
/// arrival publishes the result, and every waiter reads that single
/// published value. Divergence is impossible by construction.
///
/// Poisoning handles the other half of the liveness argument: a worker
/// that has to stop (a caught model panic) — or that dies by a path we
/// never anticipated (see `ExitGuard`) — marks the group poisoned and
/// wakes every waiter, so no peer is ever left waiting on an arrival
/// that cannot happen.
struct WindowBarrier {
    state: Mutex<BarrierState>,
    cv: std::sync::Condvar,
    workers: usize,
}

struct BarrierState {
    /// Arrivals so far in the current generation.
    count: usize,
    /// Completed generations; bumped by the last arrival.
    generation: u64,
    /// Min-fold accumulator for the in-progress generation.
    acc: u64,
    /// Published fold result of the last completed generation.
    result: u64,
    /// Once true the group is dead: every current and future waiter
    /// returns immediately with the poisoned flag set.
    poisoned: bool,
}

impl WindowBarrier {
    fn new(workers: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                acc: T_NONE,
                result: T_NONE,
                poisoned: false,
            }),
            cv: std::sync::Condvar::new(),
            workers,
        }
    }

    /// Arrives at the barrier folding `local` into the group minimum.
    /// Returns `(group_min, poisoned)`; on `poisoned` the group value
    /// is meaningless and the caller must leave the window loop.
    fn arrive(&self, local: u64) -> (u64, bool) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.poisoned {
            return (T_NONE, true);
        }
        st.acc = st.acc.min(local);
        st.count += 1;
        if st.count == self.workers {
            st.result = st.acc;
            st.acc = T_NONE;
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            return (st.result, false);
        }
        let gen = st.generation;
        loop {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.poisoned {
                return (T_NONE, true);
            }
            if st.generation != gen {
                // A waiter cannot sleep through two generations: the
                // next one needs all `workers` arrivals, including ours.
                return (st.result, false);
            }
        }
    }

    /// Kills the group: wakes every waiter and makes every subsequent
    /// arrival return poisoned.
    fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// Poisons the barrier if the owning worker unwinds out of the window
/// loop by any path that did not explicitly disarm the guard. The two
/// phase bodies already run under `catch_unwind`, so this should be
/// unreachable — but "a worker died and its peers wait forever" is the
/// one failure the engine must rule out unconditionally, not just on
/// the paths we thought of.
struct ExitGuard<'a> {
    barrier: &'a WindowBarrier,
    armed: bool,
}

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.poison();
        }
    }
}

/// A partition cell mutated only by its owning worker within a window;
/// the window barriers order cross-worker access.
struct PartCell<P: Partition>(UnsafeCell<PartState<P>>);

// SAFETY: each cell is accessed mutably only by the worker that owns
// its index (static `p % workers` assignment); the window barriers
// order those accesses, and the scope join orders them against the
// caller's final collection.
unsafe impl<P: Partition + Send> Sync for PartCell<P> where P::Event: Send {}

/// The conservative time-windowed PDES engine. Build with the model's
/// partitions and its physical lookahead, then call [`Self::run`] (the
/// windowed engine, any worker count) or [`Self::run_reference`] (the
/// sequential global-heap differential reference).
pub struct PdesEngine<P: Partition> {
    lookahead: TimeDelta,
    record: bool,
    parts: Vec<PartCell<P>>,
    /// `boxes[src * n + dst]`: the ordered mailbox from `src` to `dst`.
    /// Locked once per append/drain; uncontended by construction (the
    /// two sides touch it in different phases).
    boxes: Vec<Mailbox<P::Event>>,
}

impl<P: Partition> PdesEngine<P> {
    /// Creates an engine over `partitions` with the given physical
    /// lookahead (picoseconds; must be at least 1).
    pub fn new(partitions: Vec<P>, lookahead: TimeDelta) -> Self {
        assert!(lookahead >= 1, "lookahead must be at least 1 ps");
        let n = partitions.len();
        assert!(n >= 1, "at least one partition");
        Self {
            lookahead,
            record: false,
            parts: partitions
                .into_iter()
                .map(|p| PartCell(UnsafeCell::new(PartState::new(p, false))))
                .collect(),
            boxes: (0..n * n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Enables record mode: the report carries the full dispatch log in
    /// canonical global order (for differential tests; costs memory).
    pub fn recorded(mut self) -> Self {
        self.record = true;
        for cell in &mut self.parts {
            cell.0.get_mut().log = Some(Vec::new());
        }
        self
    }

    /// Builds the report from the final partition states and hands the
    /// partitions back for model-state comparison.
    fn collect(self, windows: u64) -> (PdesReport, Vec<P>) {
        let mut events = 0;
        let mut fingerprint = 0u64;
        let mut partition_fingerprints = Vec::with_capacity(self.parts.len());
        let mut log = self.record.then(Vec::new);
        let mut partitions = Vec::with_capacity(self.parts.len());
        for cell in self.parts {
            let st = cell.0.into_inner();
            events += st.dispatched;
            fingerprint ^= st.fp;
            partition_fingerprints.push(st.fp);
            if let (Some(all), Some(mine)) = (&mut log, st.log) {
                all.extend(mine);
            }
            partitions.push(st.part);
        }
        if let Some(all) = &mut log {
            // Per-partition logs are each sorted by (at, src, seq);
            // the canonical global order adds dst to the key.
            all.sort();
        }
        (
            PdesReport {
                events,
                windows,
                fingerprint,
                partition_fingerprints,
                log,
            },
            partitions,
        )
    }

    /// Runs the model to quiescence on `workers` threads (clamped to
    /// the partition count; 1 runs the identical window loop inline on
    /// the calling thread) and returns the report plus the final
    /// partitions.
    pub fn run(mut self, workers: usize) -> (PdesReport, Vec<P>)
    where
        P: Send,
        P::Event: Send,
    {
        let n = self.parts.len();
        let workers = workers.max(1).min(n);
        let lookahead = self.lookahead;
        // Init runs sequentially — it is once-per-run and cheap next to
        // the event stream.
        for p in 0..n {
            let st = self.parts[p].0.get_mut();
            st.run_init(p, lookahead);
        }
        for p in 0..n {
            // Split borrow: flush needs &self.boxes alongside &mut state.
            let cell = &self.parts[p];
            // SAFETY: exclusive access — single-threaded here.
            let st = unsafe { &mut *cell.0.get() };
            st.flush_cross(p, n, &self.boxes);
        }
        let windows = if workers == 1 {
            self.run_windows_inline(n)
        } else {
            self.run_windows_threaded(n, workers)
        };
        self.collect(windows)
    }

    /// The window loop on the calling thread: same phases, same order,
    /// no barriers — the sequential engine the parallel one must match.
    fn run_windows_inline(&mut self, n: usize) -> u64 {
        let lookahead = self.lookahead;
        let mut windows = 0;
        loop {
            let mut m = T_NONE;
            for p in 0..n {
                // SAFETY: exclusive access — single-threaded.
                let st = unsafe { &mut *self.parts[p].0.get() };
                st.deliver(p, n, &self.boxes);
                m = m.min(st.next_time());
            }
            if m == T_NONE {
                return windows;
            }
            let window_end = m + lookahead;
            windows += 1;
            for p in 0..n {
                // SAFETY: exclusive access — single-threaded.
                let st = unsafe { &mut *self.parts[p].0.get() };
                st.run_window(p, window_end, lookahead);
                st.flush_cross(p, n, &self.boxes);
            }
        }
    }

    /// The window loop across `workers` persistent threads with static
    /// round-robin partition ownership and two barriers per window.
    fn run_windows_threaded(&mut self, n: usize, workers: usize) -> u64
    where
        P: Send,
        P::Event: Send,
    {
        let lookahead = self.lookahead;
        let parts = &self.parts;
        let boxes = &self.boxes;
        let windows = AtomicU64::new(0);
        let barrier = WindowBarrier::new(workers);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let stash = |e: Box<dyn std::any::Any + Send>| {
            panic_payload
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get_or_insert(e);
            barrier.poison();
        };
        std::thread::scope(|scope| {
            for w in 0..workers {
                let barrier = &barrier;
                let stash = &stash;
                let windows = &windows;
                scope.spawn(move || {
                    // Any exit from this closure that is not the `break`
                    // below (an unwind we failed to anticipate) poisons
                    // the barrier so the peers wake instead of waiting
                    // forever for a worker that will never arrive.
                    let mut guard = ExitGuard {
                        barrier,
                        armed: true,
                    };
                    let owned = || (w..n).step_by(workers);
                    loop {
                        // Phase A: deliver mailboxes, fold this worker's
                        // minimum next-event time.
                        let mut local = T_NONE;
                        let a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            for p in owned() {
                                // SAFETY: `p % workers == w` — this worker
                                // owns the cell; the window barrier orders
                                // this against other workers' phases.
                                let st = unsafe { &mut *parts[p].0.get() };
                                st.deliver(p, n, boxes);
                                local = local.min(st.next_time());
                            }
                        }));
                        if let Err(e) = a {
                            stash(e);
                        }
                        // Phase B: the barrier computes the window start
                        // once, under its own lock — every worker gets
                        // the identical `m` (or the poison notice) by
                        // construction, so no worker can leave the loop
                        // while a peer re-enters it.
                        let (m, poisoned) = barrier.arrive(local);
                        if poisoned || m == T_NONE {
                            break;
                        }
                        let window_end = m + lookahead;
                        if w == 0 {
                            windows.fetch_add(1, Ordering::Relaxed);
                        }
                        // Phase C: execute the window, flush mailboxes.
                        let c = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            for p in owned() {
                                // SAFETY: as above — owner-only access.
                                let st = unsafe { &mut *parts[p].0.get() };
                                st.run_window(p, window_end, lookahead);
                                st.flush_cross(p, n, boxes);
                            }
                        }));
                        if let Err(e) = c {
                            stash(e);
                        }
                        let (_, poisoned) = barrier.arrive(T_NONE);
                        if poisoned {
                            break;
                        }
                    }
                    guard.armed = false;
                });
            }
        });
        if let Some(e) = panic_payload
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
        {
            std::panic::resume_unwind(e);
        }
        windows.load(Ordering::Relaxed)
    }

    /// The sequential differential reference: one global heap ordered by
    /// the canonical key `(at, dst, src, seq)`, one event at a time —
    /// the exact serialization the windowed engine's merge defines.
    /// Must be bit-identical to [`Self::run`] at any worker count.
    pub fn run_reference(mut self) -> (PdesReport, Vec<P>) {
        let n = self.parts.len();
        let lookahead = self.lookahead;
        let mut heap: BinaryHeap<Reverse<RefEntry<P::Event>>> = BinaryHeap::new();
        let mut self_out: Vec<(Time, u64, P::Event)> = Vec::new();
        let mut cross_out: Vec<(PartitionId, Time, u64, P::Event)> = Vec::new();
        for p in 0..n {
            let st = self.parts[p].0.get_mut();
            let mut out = Outbox {
                src: p,
                now: 0,
                lookahead,
                emit_seq: &mut st.emit_seq,
                self_out: &mut self_out,
                cross_out: &mut cross_out,
            };
            st.part.init(&mut out);
            for (at, seq, event) in self_out.drain(..) {
                heap.push(Reverse(RefEntry {
                    at,
                    dst: p,
                    src: p,
                    seq,
                    event,
                }));
            }
            for (dst, at, seq, event) in cross_out.drain(..) {
                heap.push(Reverse(RefEntry {
                    at,
                    dst,
                    src: p,
                    seq,
                    event,
                }));
            }
        }
        let mut events = 0u64;
        while let Some(Reverse(entry)) = heap.pop() {
            events += 1;
            let st = self.parts[entry.dst].0.get_mut();
            fnv_mix(&mut st.fp, entry.at);
            fnv_mix(&mut st.fp, entry.src as u64);
            fnv_mix(&mut st.fp, entry.seq);
            st.dispatched += 1;
            if let Some(log) = &mut st.log {
                log.push(DispatchRecord {
                    at: entry.at,
                    dst: entry.dst,
                    src: entry.src,
                    seq: entry.seq,
                });
            }
            let mut out = Outbox {
                src: entry.dst,
                now: entry.at,
                lookahead,
                emit_seq: &mut st.emit_seq,
                self_out: &mut self_out,
                cross_out: &mut cross_out,
            };
            st.part.handle(entry.event, &mut out);
            let me = entry.dst;
            for (at, seq, event) in self_out.drain(..) {
                heap.push(Reverse(RefEntry {
                    at,
                    dst: me,
                    src: me,
                    seq,
                    event,
                }));
            }
            for (dst, at, seq, event) in cross_out.drain(..) {
                heap.push(Reverse(RefEntry {
                    at,
                    dst,
                    src: me,
                    seq,
                    event,
                }));
            }
        }
        self.collect(events)
    }
}

/// A pending event in the reference executor's global heap, ordered by
/// the canonical key alone (the payload does not participate).
struct RefEntry<E> {
    at: Time,
    dst: PartitionId,
    src: PartitionId,
    seq: u64,
    event: E,
}

impl<E> RefEntry<E> {
    fn key(&self) -> (Time, PartitionId, PartitionId, u64) {
        (self.at, self.dst, self.src, self.seq)
    }
}

impl<E> PartialEq for RefEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for RefEntry<E> {}

impl<E> PartialOrd for RefEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for RefEntry<E> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    /// A chatty token-passing partition: every received token does a
    /// little arithmetic, mutates a running digest, and forwards new
    /// tokens to pseudo-random peers (or itself) with pseudo-random
    /// delays — enough nondeterminism-bait to catch ordering bugs.
    struct Chatter {
        me: PartitionId,
        n: usize,
        rng: SimRng,
        digest: u64,
        budget: u32,
        lookahead: TimeDelta,
    }

    impl Chatter {
        fn fleet(n: usize, seed: u64, budget: u32, lookahead: TimeDelta) -> Vec<Chatter> {
            (0..n)
                .map(|me| Chatter {
                    me,
                    n,
                    rng: SimRng::seed(seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    digest: 0,
                    budget,
                    lookahead,
                })
                .collect()
        }
    }

    impl Partition for Chatter {
        type Event = u64;

        fn init(&mut self, out: &mut Outbox<'_, u64>) {
            out.send(self.me, 1 + self.rng.below(50), self.me as u64);
        }

        fn handle(&mut self, event: u64, out: &mut Outbox<'_, u64>) {
            self.digest = (self.digest ^ event ^ out.now()).wrapping_mul(0x100_0000_01b3);
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            // Fan out 1-2 tokens; bias toward tie-prone delays.
            for _ in 0..1 + self.rng.below(2) {
                let dst = self.rng.below(self.n as u64) as usize;
                let delay = if dst == self.me {
                    1 + self.rng.below(3) * 25
                } else {
                    self.lookahead + self.rng.below(3) * 25
                };
                out.send(dst, delay, self.digest ^ dst as u64);
            }
        }
    }

    fn digests(parts: &[Chatter]) -> Vec<u64> {
        parts.iter().map(|p| p.digest).collect()
    }

    #[test]
    fn windowed_matches_reference_bit_for_bit() {
        for seed in 0..6 {
            let la = 100;
            let (r_ref, p_ref) = PdesEngine::new(Chatter::fleet(5, seed, 40, la), la)
                .recorded()
                .run_reference();
            let (r_one, p_one) = PdesEngine::new(Chatter::fleet(5, seed, 40, la), la)
                .recorded()
                .run(1);
            let (r_many, p_many) = PdesEngine::new(Chatter::fleet(5, seed, 40, la), la)
                .recorded()
                .run(4);
            assert!(r_ref.events > 100, "model too quiet to prove anything");
            assert_eq!(r_one.log, r_ref.log, "seed {seed}: 1-worker log diverged");
            assert_eq!(r_many.log, r_ref.log, "seed {seed}: 4-worker log diverged");
            assert_eq!(r_one.fingerprint, r_ref.fingerprint);
            assert_eq!(r_many.fingerprint, r_ref.fingerprint);
            assert_eq!(r_many.partition_fingerprints, r_ref.partition_fingerprints);
            assert_eq!(
                digests(&p_one),
                digests(&p_ref),
                "seed {seed}: state diverged"
            );
            assert_eq!(
                digests(&p_many),
                digests(&p_ref),
                "seed {seed}: state diverged"
            );
            assert_eq!(r_one.events, r_ref.events);
            assert_eq!(r_many.events, r_ref.events);
        }
    }

    #[test]
    fn windows_batch_many_events() {
        let la = 1000;
        let (report, _) = PdesEngine::new(Chatter::fleet(4, 7, 200, la), la).run(1);
        assert!(
            report.windows < report.events,
            "windowing degenerated to one event per window: {} windows for {} events",
            report.windows,
            report.events
        );
    }

    /// Two partitions fire at partition 2 at the same instant, plus a
    /// same-time self-send: the tie must break by (src, then seq), no
    /// matter which mailbox delivered first.
    #[test]
    fn same_window_ties_break_by_source_then_sequence() {
        struct Tie {
            me: PartitionId,
        }
        impl Partition for Tie {
            type Event = u64;
            fn init(&mut self, out: &mut Outbox<'_, u64>) {
                match self.me {
                    // Both cross-sends land at t=100 on partition 2.
                    0 => {
                        out.send(2, 100, 7); // seq 0
                        out.send(2, 100, 8); // seq 1
                    }
                    1 => out.send(2, 100, 9), // seq 0
                    // Partition 2's own event also at t=100.
                    _ => out.send(2, 100, 1), // seq 0
                }
            }
            fn handle(&mut self, event: u64, out: &mut Outbox<'_, u64>) {
                let _ = event;
                let _ = out;
            }
        }
        let (report, parts) =
            PdesEngine::new(vec![Tie { me: 0 }, Tie { me: 1 }, Tie { me: 2 }], 100)
                .recorded()
                .run(3);
        let _ = parts;
        let log = report.log.expect("record mode");
        let expect: Vec<DispatchRecord> = vec![
            DispatchRecord {
                at: 100,
                dst: 2,
                src: 0,
                seq: 0,
            },
            DispatchRecord {
                at: 100,
                dst: 2,
                src: 0,
                seq: 1,
            },
            DispatchRecord {
                at: 100,
                dst: 2,
                src: 1,
                seq: 0,
            },
            DispatchRecord {
                at: 100,
                dst: 2,
                src: 2,
                seq: 0,
            },
        ];
        assert_eq!(log, expect);
    }

    struct OneShot {
        dst: PartitionId,
        delay: TimeDelta,
    }
    impl Partition for OneShot {
        type Event = ();
        fn init(&mut self, out: &mut Outbox<'_, ()>) {
            out.send(self.dst, self.delay, ());
        }
        fn handle(&mut self, _event: (), _out: &mut Outbox<'_, ()>) {}
    }

    #[test]
    #[should_panic(expected = "under the lookahead")]
    fn lookahead_violation_panics() {
        let parts = vec![
            OneShot { dst: 1, delay: 50 },
            OneShot { dst: 0, delay: 100 },
        ];
        let _ = PdesEngine::new(parts, 100).run(1);
    }

    #[test]
    #[should_panic(expected = "zero-delay self-send")]
    fn zero_delay_self_send_panics() {
        let parts = vec![OneShot { dst: 0, delay: 0 }];
        let _ = PdesEngine::new(parts, 100).run(1);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        struct Bomb {
            me: PartitionId,
        }
        impl Partition for Bomb {
            type Event = ();
            fn init(&mut self, out: &mut Outbox<'_, ()>) {
                out.send(self.me, 10, ());
            }
            fn handle(&mut self, _event: (), out: &mut Outbox<'_, ()>) {
                assert_ne!(out.src(), 1, "boom");
                out.send(out.src(), 10, ());
            }
        }
        let caught = std::panic::catch_unwind(|| {
            let parts = (0..3).map(|me| Bomb { me }).collect();
            let _ = PdesEngine::new(parts, 100).run(3);
        });
        assert!(caught.is_err());
    }
}
