//! Deterministic discrete-event simulation (DES) engine for StRoM.
//!
//! The StRoM paper evaluates real FPGA hardware; this crate provides the
//! substrate that replaces the testbed: a picosecond-resolution simulated
//! clock, a deterministic event queue (a hierarchical timer wheel with an
//! overflow heap, differential-tested against a reference binary heap),
//! bandwidth/latency primitives that
//! model serialization over links and buses, bounded FIFOs mirroring the
//! HLS `stream<>` objects, and latency statistics matching the paper's
//! reporting style (median with 1st/99th-percentile whiskers).
//!
//! Everything in this crate is deterministic: two runs with the same seed
//! produce identical event orders and identical statistics, which the
//! property tests rely on.

pub mod arrivals;
pub mod event;
pub mod fifo;
pub mod parallel;
pub mod pdes;
pub mod rate;
pub mod report;
pub mod rng;
pub mod stats;
pub mod switch;
pub mod time;
pub mod wheel;

pub use arrivals::{ArrivalGen, ArrivalProcess, ZipfSampler};
pub use event::{EventQueue, ReferenceEventQueue, Scheduled};
pub use fifo::Fifo;
pub use parallel::{default_workers, parallel_map};
pub use pdes::{DispatchRecord, Outbox, Partition, PartitionId, PdesEngine, PdesReport};
pub use rate::{Bandwidth, LinkSerializer, Pacer};
pub use rng::SimRng;
pub use stats::{LatencySummary, Samples};
pub use switch::{Delivery, EcnConfig, Switch, SwitchConfig, SwitchPortCounters, TailDrop};
pub use time::{Clock, Time, TimeDelta};
