//! Hierarchical timer wheel: the O(1) storage engine behind
//! [`EventQueue`](crate::EventQueue).
//!
//! A discrete-event simulator at 100 G line rate dispatches hundreds of
//! millions of events per simulated second, and almost all of them are
//! *near-future*: link serialization, PCIe hops, and DMA completions are
//! short, config-bounded delays. A comparison-based heap pays O(log n)
//! per event and a comparator-driven pointer chase per level; the wheel
//! places each event in a bucket by simple bit arithmetic instead.
//!
//! # Geometry
//!
//! Three levels of 4096 slots, 1 ps granularity at level 0. A slot at
//! level `k` spans `4096^k` ps, so the wheel covers `4096^3 = 2^36` ps
//! (~68.7 ms) ahead of its cursor — beyond the longest backed-off
//! retransmission deadline (`100 µs << 6` = 6.4 ms). Events scheduled
//! further out than the horizon wait in an overflow min-heap and migrate
//! into the wheel as the cursor advances.
//!
//! The wide radix is deliberate: with 12-bit digits the common delta
//! band (sub-2 µs link/PCIe/DMA hops) files at level 1 and is handed
//! back out as one sorted bucket ([`TimerWheel::pop_run`]) without ever
//! cascading — at high occupancy the cascade traffic, not the bucket
//! arithmetic, is what made throughput sag with depth. Occupancy per
//! level is a two-tier bitmap (64 words plus a one-bit-per-word
//! summary), so finding the first pending slot is still two
//! `trailing_zeros`.
//!
//! An event's level is the highest 12-bit digit in which its firing time
//! differs from the cursor (`level_of(at ^ cur)`, the Linux timer-wheel
//! rule). This keeps every occupied slot *ahead* of the cursor in plain
//! (non-wrapping) slot order. When the cursor enters a level-`k` slot,
//! that slot's events re-place into levels `< k` (cascade); each event
//! cascades at most twice, so scheduling stays amortized O(1).
//!
//! # Determinism
//!
//! The public order is the exact `(time, seq)` total order of the
//! reference heap. Two events only share a level-0 slot if they share an
//! exact firing time, and a drained bucket is sorted before it is handed
//! out — cascading from different levels may interleave arrival order
//! inside a bucket, and the sort restores it. Equivalence with
//! [`ReferenceEventQueue`](crate::event::ReferenceEventQueue) is
//! property-tested over randomized schedule/pop/advance interleavings.

use std::collections::BinaryHeap;

use crate::event::Scheduled;
use crate::time::Time;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 12;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; deltas of `4096^LEVELS` ps or more overflow.
const LEVELS: usize = 3;
/// log2 of the wheel horizon in picoseconds.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// 64-bit words per occupancy bitmap.
const WORDS: usize = SLOTS / 64;
/// Max whole buckets per [`TimerWheel::pop_run`] at levels >= 1.
const MULTI_BUCKETS: usize = 32;
/// Levels whose buckets [`TimerWheel::pop_run`] may hand out whole
/// (slot span <= 4096 ps); deeper buckets always cascade first.
const HANDOUT_LEVELS: usize = 2;

/// The level whose 12-bit digit is the highest one set in `x = at ^ cur`.
///
/// `x` must be below the horizon (`x >> HORIZON_BITS == 0`).
#[inline]
fn level_of(x: u64) -> usize {
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// One level's occupancy: a bit per slot, plus a one-bit-per-word summary
/// so the first occupied slot is two `trailing_zeros` away.
#[derive(Debug, Clone)]
struct Occupancy {
    summary: u64,
    words: [u64; WORDS],
}

impl Default for Occupancy {
    fn default() -> Self {
        Self {
            summary: 0,
            words: [0; WORDS],
        }
    }
}

impl Occupancy {
    #[inline]
    fn set(&mut self, idx: usize) {
        self.words[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        let w = idx / 64;
        self.words[w] &= !(1 << (idx % 64));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.summary == 0
    }

    /// The lowest occupied slot index, if any.
    #[inline]
    fn first(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let w = self.summary.trailing_zeros() as usize;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }
}

/// Timed-event storage with O(1) near-future scheduling.
///
/// The wheel is pure storage: it neither assigns sequence numbers nor
/// tracks a public clock — [`EventQueue`](crate::EventQueue) layers both
/// on top. The only ordering contract is that [`Self::pop_batch`] and
/// [`Self::pop_run`] drain buckets in `(time, seq)` order.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets; bucket `(k, i)` lives at `k * SLOTS + i`.
    slots: Vec<Vec<Scheduled<E>>>,
    /// Per-level occupancy bitmaps.
    occupied: [Occupancy; LEVELS],
    /// Events beyond the wheel horizon, earliest `(at, seq)` first
    /// (`Scheduled`'s reversed `Ord` makes the max-heap pop the minimum).
    overflow: BinaryHeap<Scheduled<E>>,
    /// Scratch buffer reused by cascades (capacity recycles via swap).
    cascade_buf: Vec<Scheduled<E>>,
    /// Wheel cursor: a lower bound on every pending firing time. Distinct
    /// from the simulation clock, which may run ahead via `advance_to`.
    cur: Time,
    /// Total pending events (wheel + overflow).
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        Self {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [
                Occupancy::default(),
                Occupancy::default(),
                Occupancy::default(),
            ],
            overflow: BinaryHeap::new(),
            cascade_buf: Vec::new(),
            cur: 0,
            len: 0,
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Moves the cursor forward to `t` — allowed only while empty, where
    /// the cursor bounds nothing. Keeps a long-idle wheel from filing
    /// fresh events into the overflow heap just because the cursor was
    /// left far in the past.
    pub fn reset_cursor(&mut self, t: Time) {
        debug_assert!(self.is_empty(), "cursor reset with events pending");
        self.cur = self.cur.max(t);
    }

    /// Inserts an event. `s.at` must not precede the cursor (the event
    /// queue's past-time clamp guarantees this).
    pub fn insert(&mut self, s: Scheduled<E>) {
        debug_assert!(
            s.at >= self.cur,
            "insert at {} before cursor {}",
            s.at,
            self.cur
        );
        self.place(s);
        self.len += 1;
    }

    /// Files an event into its wheel slot or the overflow heap. Does not
    /// touch `len` (shared by insert, cascade, and overflow migration).
    fn place(&mut self, s: Scheduled<E>) {
        let x = s.at ^ self.cur;
        if x >> HORIZON_BITS != 0 {
            self.overflow.push(s);
            return;
        }
        let k = level_of(x);
        let idx = ((s.at >> (SLOT_BITS * k as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[k * SLOTS + idx].push(s);
        self.occupied[k].set(idx);
    }

    /// Pulls every overflow event now inside the horizon into the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(peek) = self.overflow.peek() {
            if (peek.at ^ self.cur) >> HORIZON_BITS != 0 {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            self.place(s);
        }
    }

    /// The earliest pending firing time, without disturbing the wheel.
    pub fn min_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        // Level 0 buckets hold exact times; the lowest occupied slot is
        // the global minimum (higher levels sit past the next boundary).
        if let Some(idx) = self.occupied[0].first() {
            return Some((self.cur & !(SLOTS as u64 - 1)) + idx as u64);
        }
        // Otherwise the lowest occupied level's first slot contains the
        // minimum; a level-k slot spans 4096^k ps, so scan it.
        for k in 1..LEVELS {
            if let Some(idx) = self.occupied[k].first() {
                return self.slots[k * SLOTS + idx].iter().map(|s| s.at).min();
            }
        }
        self.overflow.peek().map(|s| s.at)
    }

    /// Drains a *run* of earliest pending events — one or more whole
    /// buckets, possibly spanning distinct firing times — appending them
    /// to `out` in `(at, seq)` order. Returns the number of events moved
    /// (0 when empty, otherwise at least one whole bucket; `max_run` is a
    /// soft cap checked between buckets).
    ///
    /// Two run sources, both resting on the same dominance argument as
    /// the lone-event fast path in [`Self::pop_batch`]:
    ///
    /// * every level-0 event lives inside the cursor's current 4096-ps
    ///   block and precedes everything filed at a higher level, so the
    ///   occupied level-0 slots drain together in index order;
    /// * with level 0 empty, the first occupied slot of the lowest
    ///   occupied level holds the globally earliest events, so when it
    ///   fits the cap it is handed out sorted *instead of* re-placing
    ///   every event one level down.
    ///
    /// The second source is what fixes the depth-1e6 throughput cliff:
    /// at high occupancy each event used to pay a cascade hop per level
    /// (a random-access `Vec` push over a tens-of-MB working set) before
    /// reaching level 0; serving whole buckets replaces those hops with
    /// one cache-friendly in-place sort.
    ///
    /// The caller owns ordering across calls: after a run is taken, every
    /// event still in the wheel fires at or after the run's last time, so
    /// a later insert must not precede it (the event queue's batch spill
    /// guarantees this).
    pub fn pop_run(&mut self, out: &mut Vec<Scheduled<E>>, max_run: usize) -> usize {
        if self.len == 0 {
            return 0;
        }
        let start = out.len();
        loop {
            self.migrate_overflow();
            let Some(k) = (0..LEVELS).find(|&k| !self.occupied[k].is_empty()) else {
                let next = self
                    .overflow
                    .peek()
                    .expect("len > 0 with an empty wheel implies overflow events")
                    .at;
                self.cur = next;
                continue;
            };
            if k >= HANDOUT_LEVELS {
                // Never hand a deep bucket out whole: a level-2 slot
                // spans 4096² ps ≈ 16.8 µs, and a served run that wide
                // turns almost every near-future schedule into a batch
                // splice in the event queue (a memmove per event — the
                // measured cost was a 3x throughput dip at the depth
                // where level-2 buckets happened to fit the cap).
                // Re-place its events a level down instead.
                let idx = self.occupied[k].first().expect("level is occupied");
                self.cascade(k, idx);
                continue;
            }
            // Every occupied level-k slot shares the cursor's digits
            // above level k (that is what made it file at level k), so
            // in index order the slots' time ranges are disjoint and
            // ascending, and all of them precede every higher-level and
            // every overflow event. Whole buckets can therefore be
            // handed out back-to-back until the cap, each sorted in
            // place — this multi-bucket drain is what amortizes the
            // per-refill cost at shallow depths, where a single bucket
            // holds only a handful of events.
            let mut taken = 0;
            while out.len() - start < max_run {
                if k > 0 && taken == MULTI_BUCKETS {
                    // Bound the run's *time span* at higher levels: each
                    // extra bucket widens the window into which a fresh
                    // schedule can land (forcing a batch splice in the
                    // event queue), so runs trade refill amortization
                    // against splice frequency.
                    break;
                }
                let Some(idx) = self.occupied[k].first() else {
                    break;
                };
                let bucket = k * SLOTS + idx;
                let n = self.slots[bucket].len();
                if n > max_run - (out.len() - start) && out.len() > start {
                    // Cap reached; the bucket stays for the next run.
                    break;
                }
                if n > max_run && k > 0 {
                    // A single oversized bucket: re-place its events one
                    // level down rather than sorting it whole.
                    self.cascade(k, idx);
                    break;
                }
                self.occupied[k].clear(idx);
                let s0 = out.len();
                out.append(&mut self.slots[bucket]);
                if n > 1 {
                    if k == 0 {
                        // A level-0 slot holds one exact firing time;
                        // seq order is the contract within it.
                        out[s0..].sort_unstable_by_key(|s| s.seq);
                    } else {
                        out[s0..].sort_unstable_by_key(|s| (s.at, s.seq));
                    }
                }
                self.len -= n;
                taken += 1;
            }
            if out.len() > start {
                self.cur = self.cur.max(out.last().expect("drained a slot").at);
                return out.len() - start;
            }
            // Nothing drained: a cascade happened — rescan from level 0.
        }
    }

    /// Re-places every event of slot `(k, idx)` — the first slot of the
    /// lowest occupied level — into levels `< k`, advancing the cursor to
    /// the slot's start.
    fn cascade(&mut self, k: usize, idx: usize) {
        let span = SLOT_BITS * (k as u32 + 1);
        let base = (self.cur >> span) << span;
        let slot_start = base + ((idx as u64) << (SLOT_BITS * k as u32));
        self.cur = self.cur.max(slot_start);
        self.occupied[k].clear(idx);
        let mut buf = std::mem::take(&mut self.cascade_buf);
        std::mem::swap(&mut buf, &mut self.slots[k * SLOTS + idx]);
        for s in buf.drain(..) {
            // Relative to the new cursor every event in this slot is
            // within 4096^k, so it re-places strictly below level k.
            self.place(s);
        }
        self.cascade_buf = buf;
    }

    /// Drains the earliest pending bucket — every event sharing the
    /// earliest firing time — appending it to `out` in `(at, seq)` order.
    /// Returns the number of events moved (0 when empty).
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<E>>) -> usize {
        if self.len == 0 {
            return 0;
        }
        loop {
            self.migrate_overflow();
            if let Some(idx) = self.occupied[0].first() {
                let t = (self.cur & !(SLOTS as u64 - 1)) + idx as u64;
                debug_assert!(t >= self.cur);
                // `t` stays inside the cursor's current horizon block, so
                // no overflow event can share it: safe to advance and
                // drain without re-migrating.
                self.cur = t;
                self.occupied[0].clear(idx);
                let slot = &mut self.slots[idx];
                let n = slot.len();
                let start = out.len();
                out.append(slot);
                if n > 1 {
                    // Same-time events from different levels may have
                    // landed in arrival (cascade) order; seq order is the
                    // contract.
                    out[start..].sort_unstable_by_key(|s| s.seq);
                }
                self.len -= n;
                return n;
            }
            // Level 0 empty: enter the first slot of the lowest occupied
            // level and cascade it downward, or refill from overflow.
            let Some(k) = (1..LEVELS).find(|&k| !self.occupied[k].is_empty()) else {
                let next = self
                    .overflow
                    .peek()
                    .expect("len > 0 with an empty wheel implies overflow events")
                    .at;
                self.cur = next;
                continue;
            };
            let idx = self.occupied[k].first().expect("level is occupied");
            if self.slots[k * SLOTS + idx].len() == 1 {
                // A lone event in the first slot of the lowest occupied
                // level is the global minimum: same-time events always
                // share a slot, and overflow events live in later horizon
                // blocks. Hand it out without cascading level by level —
                // the common case when pending times are sparse.
                let s = self.slots[k * SLOTS + idx].pop().expect("len == 1");
                self.occupied[k].clear(idx);
                self.cur = s.at;
                self.len -= 1;
                out.push(s);
                return 1;
            }
            self.cascade(k, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Time, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at,
            seq,
            event: seq,
        }
    }

    #[test]
    fn level_selection_matches_highest_differing_digit() {
        assert_eq!(level_of(0), 0);
        assert_eq!(level_of(1), 0);
        assert_eq!(level_of(4095), 0);
        assert_eq!(level_of(4096), 1);
        assert_eq!(level_of(4096 * 4096 - 1), 1);
        assert_eq!(level_of(4096 * 4096), 2);
        assert_eq!(level_of((1u64 << HORIZON_BITS) - 1), LEVELS - 1);
    }

    #[test]
    fn occupancy_tracks_first_occupied_slot() {
        let mut o = Occupancy::default();
        assert_eq!(o.first(), None);
        o.set(4095);
        assert_eq!(o.first(), Some(4095));
        o.set(70);
        assert_eq!(o.first(), Some(70));
        o.set(71);
        o.clear(70);
        assert_eq!(o.first(), Some(71));
        o.clear(71);
        assert_eq!(o.first(), Some(4095));
        o.clear(4095);
        assert_eq!(o.first(), None);
        assert!(o.is_empty());
    }

    #[test]
    fn drains_buckets_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // Events at every level, plus one in the overflow heap.
        let times = [
            3u64,
            100,
            5_000,
            300_000,
            20_000_000,
            1_500_000_000,
            1 << 40,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.insert(ev(t, i as u64));
        }
        assert_eq!(w.len(), times.len());
        let mut got = Vec::new();
        let mut out = Vec::new();
        while w.pop_batch(&mut out) > 0 {
            got.extend(out.drain(..).map(|s| s.at));
        }
        assert_eq!(got, times.to_vec());
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_events_pop_in_seq_order_even_across_levels() {
        let mut w = TimerWheel::new();
        // seq 0 lands at level 1 (far away), seq 1 at level 0 for the
        // same instant after the cursor advances: the drained bucket must
        // still come out in seq order.
        w.insert(ev(10_000, 0));
        w.insert(ev(9_000, 1));
        let mut out = Vec::new();
        assert_eq!(w.pop_batch(&mut out), 1);
        assert_eq!(out[0].at, 9_000);
        w.insert(ev(10_000, 2));
        out.clear();
        assert_eq!(w.pop_batch(&mut out), 2);
        let seqs: Vec<u64> = out.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn min_time_sees_every_region() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        assert_eq!(w.min_time(), None);
        w.insert(ev(1 << 40, 0));
        assert_eq!(w.min_time(), Some(1 << 40)); // overflow only
        w.insert(ev(70_000_000, 1));
        assert_eq!(w.min_time(), Some(70_000_000)); // level-2 slot scan
        w.insert(ev(99_000_000, 2));
        assert_eq!(w.min_time(), Some(70_000_000));
        w.insert(ev(5, 3));
        assert_eq!(w.min_time(), Some(5)); // level 0 exact
    }

    #[test]
    fn overflow_migrates_back_in_order() {
        let mut w = TimerWheel::new();
        let horizon = 1u64 << HORIZON_BITS;
        w.insert(ev(3 * horizon + 7, 0));
        w.insert(ev(2 * horizon + 7, 1));
        w.insert(ev(2 * horizon + 7, 2));
        w.insert(ev(40, 3));
        let mut got = Vec::new();
        let mut out = Vec::new();
        while w.pop_batch(&mut out) > 0 {
            got.extend(out.drain(..).map(|s| (s.at, s.seq)));
        }
        assert_eq!(
            got,
            vec![
                (40, 3),
                (2 * horizon + 7, 1),
                (2 * horizon + 7, 2),
                (3 * horizon + 7, 0)
            ]
        );
    }

    #[test]
    fn cursor_reset_keeps_fresh_events_in_the_wheel() {
        let mut w = TimerWheel::new();
        w.insert(ev(10, 0));
        let mut out = Vec::new();
        w.pop_batch(&mut out);
        assert!(w.is_empty());
        // A long simulated-time jump later, near-future events should
        // still land in the wheel, not the overflow heap.
        w.reset_cursor(5 << HORIZON_BITS);
        w.insert(ev((5 << HORIZON_BITS) + 100, 1));
        assert!(w.overflow.is_empty());
        out.clear();
        assert_eq!(w.pop_batch(&mut out), 1);
        assert_eq!(out[0].at, (5 << HORIZON_BITS) + 100);
    }

    #[test]
    fn pop_run_hands_out_whole_buckets_in_order() {
        let mut w = TimerWheel::new();
        // Two level-1 buckets (several distinct times within one 4096-ps
        // slot far from the cursor, plus a later slot). Multi-bucket
        // drain serves both in a single run, each bucket sorted by
        // (at, seq) and buckets concatenated in slot order, so the run
        // as a whole is in canonical order.
        for (i, &t) in [8_000u64, 8_100, 8_050, 8_100, 20_000].iter().enumerate() {
            w.insert(ev(t, i as u64));
        }
        let mut out = Vec::new();
        assert_eq!(w.pop_run(&mut out, 128), 5);
        let got: Vec<(u64, u64)> = out.iter().map(|s| (s.at, s.seq)).collect();
        assert_eq!(
            got,
            vec![(8_000, 0), (8_050, 2), (8_100, 1), (8_100, 3), (20_000, 4)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn pop_run_cap_falls_back_to_cascading_large_buckets() {
        let mut w = TimerWheel::new();
        for i in 0..10u64 {
            w.insert(ev(8_000 + i, i));
        }
        let mut out = Vec::new();
        // Cap below the bucket size: the bucket cascades to level 0 and
        // the run is served from there, earliest slots first, never
        // exceeding whole-slot granularity mid-tick.
        let n = w.pop_run(&mut out, 4);
        assert!(n >= 4, "at least the cap once a bucket is entered");
        let times: Vec<u64> = out.iter().map(|s| s.at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        let mut rest = Vec::new();
        while w.pop_run(&mut rest, 4) > 0 {}
        assert_eq!(out.len() + rest.len(), 10);
        assert!(w.is_empty());
    }
}
