//! Hierarchical timer wheel: the O(1) storage engine behind
//! [`EventQueue`](crate::EventQueue).
//!
//! A discrete-event simulator at 100 G line rate dispatches hundreds of
//! millions of events per simulated second, and almost all of them are
//! *near-future*: link serialization, PCIe hops, and DMA completions are
//! short, config-bounded delays. A comparison-based heap pays O(log n)
//! per event and a comparator-driven pointer chase per level; the wheel
//! places each event in a bucket by simple bit arithmetic instead.
//!
//! # Geometry
//!
//! Six levels of 64 slots, 1 ps granularity at level 0. A slot at level
//! `k` spans `64^k` ps, so the wheel covers `64^6 = 2^36` ps (~68.7 ms)
//! ahead of its cursor — beyond the longest backed-off retransmission
//! deadline (`100 µs << 6` = 6.4 ms). Events scheduled further out than
//! the horizon wait in an overflow min-heap and migrate into the wheel
//! as the cursor advances.
//!
//! An event's level is the highest 6-bit digit in which its firing time
//! differs from the cursor (`level_of(at ^ cur)`, the Linux timer-wheel
//! rule). This keeps every occupied slot *ahead* of the cursor in plain
//! (non-wrapping) slot order, so the earliest pending bucket is a
//! `trailing_zeros` over one occupancy word per level. When the cursor
//! enters a level-`k` slot, that slot's events re-place into levels
//! `< k` (cascade); each event cascades at most 5 times, so scheduling
//! stays amortized O(1).
//!
//! # Determinism
//!
//! The public order is the exact `(time, seq)` total order of the
//! reference heap. Two events only share a level-0 slot if they share an
//! exact firing time, and a drained bucket is sorted by `seq` before it
//! is handed out — cascading from different levels may interleave
//! arrival order inside a bucket, and the sort restores it. Equivalence
//! with [`ReferenceEventQueue`](crate::event::ReferenceEventQueue) is
//! property-tested over randomized schedule/pop/advance interleavings.

use std::collections::BinaryHeap;

use crate::event::Scheduled;
use crate::time::Time;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; deltas of `64^LEVELS` ps or more overflow.
const LEVELS: usize = 6;
/// log2 of the wheel horizon in picoseconds.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// The level whose 6-bit digit is the highest one set in `x = at ^ cur`.
///
/// `x` must be below the horizon (`x >> HORIZON_BITS == 0`).
#[inline]
fn level_of(x: u64) -> usize {
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// Timed-event storage with O(1) near-future scheduling.
///
/// The wheel is pure storage: it neither assigns sequence numbers nor
/// tracks a public clock — [`EventQueue`](crate::EventQueue) layers both
/// on top. The only ordering contract is that [`Self::pop_batch`] drains
/// buckets in `(time, seq)` order.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets; bucket `(k, i)` lives at `k * SLOTS + i`.
    slots: Vec<Vec<Scheduled<E>>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// Events beyond the wheel horizon, earliest `(at, seq)` first
    /// (`Scheduled`'s reversed `Ord` makes the max-heap pop the minimum).
    overflow: BinaryHeap<Scheduled<E>>,
    /// Scratch buffer reused by cascades (capacity recycles via swap).
    cascade_buf: Vec<Scheduled<E>>,
    /// Wheel cursor: a lower bound on every pending firing time. Distinct
    /// from the simulation clock, which may run ahead via `advance_to`.
    cur: Time,
    /// Total pending events (wheel + overflow).
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        Self {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            cascade_buf: Vec::new(),
            cur: 0,
            len: 0,
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Moves the cursor forward to `t` — allowed only while empty, where
    /// the cursor bounds nothing. Keeps a long-idle wheel from filing
    /// fresh events into the overflow heap just because the cursor was
    /// left far in the past.
    pub fn reset_cursor(&mut self, t: Time) {
        debug_assert!(self.is_empty(), "cursor reset with events pending");
        self.cur = self.cur.max(t);
    }

    /// Inserts an event. `s.at` must not precede the cursor (the event
    /// queue's past-time clamp guarantees this).
    pub fn insert(&mut self, s: Scheduled<E>) {
        debug_assert!(
            s.at >= self.cur,
            "insert at {} before cursor {}",
            s.at,
            self.cur
        );
        self.place(s);
        self.len += 1;
    }

    /// Files an event into its wheel slot or the overflow heap. Does not
    /// touch `len` (shared by insert, cascade, and overflow migration).
    fn place(&mut self, s: Scheduled<E>) {
        let x = s.at ^ self.cur;
        if x >> HORIZON_BITS != 0 {
            self.overflow.push(s);
            return;
        }
        let k = level_of(x);
        let idx = ((s.at >> (SLOT_BITS * k as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[k * SLOTS + idx].push(s);
        self.occupied[k] |= 1 << idx;
    }

    /// Pulls every overflow event now inside the horizon into the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(peek) = self.overflow.peek() {
            if (peek.at ^ self.cur) >> HORIZON_BITS != 0 {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            self.place(s);
        }
    }

    /// The earliest pending firing time, without disturbing the wheel.
    pub fn min_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        // Level 0 buckets hold exact times; the lowest occupied slot is
        // the global minimum (higher levels sit past the next boundary).
        if self.occupied[0] != 0 {
            let idx = self.occupied[0].trailing_zeros() as u64;
            return Some((self.cur & !(SLOTS as u64 - 1)) + idx);
        }
        // Otherwise the lowest occupied level's first slot contains the
        // minimum; a level-k slot spans 64^k ps, so scan it.
        for k in 1..LEVELS {
            if self.occupied[k] != 0 {
                let idx = self.occupied[k].trailing_zeros() as usize;
                return self.slots[k * SLOTS + idx].iter().map(|s| s.at).min();
            }
        }
        self.overflow.peek().map(|s| s.at)
    }

    /// Drains the earliest pending bucket — every event sharing the
    /// earliest firing time — appending it to `out` in `(at, seq)` order.
    /// Returns the number of events moved (0 when empty).
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<E>>) -> usize {
        if self.len == 0 {
            return 0;
        }
        loop {
            self.migrate_overflow();
            if self.occupied[0] != 0 {
                let idx = self.occupied[0].trailing_zeros() as usize;
                let t = (self.cur & !(SLOTS as u64 - 1)) + idx as u64;
                debug_assert!(t >= self.cur);
                // `t` stays inside the cursor's current horizon block, so
                // no overflow event can share it: safe to advance and
                // drain without re-migrating.
                self.cur = t;
                self.occupied[0] &= !(1 << idx);
                let slot = &mut self.slots[idx];
                let n = slot.len();
                let start = out.len();
                out.append(slot);
                if n > 1 {
                    // Same-time events from different levels may have
                    // landed in arrival (cascade) order; seq order is the
                    // contract.
                    out[start..].sort_unstable_by_key(|s| s.seq);
                }
                self.len -= n;
                return n;
            }
            // Level 0 empty: enter the first slot of the lowest occupied
            // level and cascade it downward, or refill from overflow.
            let Some(k) = (1..LEVELS).find(|&k| self.occupied[k] != 0) else {
                let next = self
                    .overflow
                    .peek()
                    .expect("len > 0 with an empty wheel implies overflow events")
                    .at;
                self.cur = next;
                continue;
            };
            let idx = self.occupied[k].trailing_zeros() as usize;
            if self.slots[k * SLOTS + idx].len() == 1 {
                // A lone event in the first slot of the lowest occupied
                // level is the global minimum: same-time events always
                // share a slot, and overflow events live in later horizon
                // blocks. Hand it out without cascading level by level —
                // the common case when pending times are sparse.
                let s = self.slots[k * SLOTS + idx].pop().expect("len == 1");
                self.occupied[k] &= !(1 << idx);
                self.cur = s.at;
                self.len -= 1;
                out.push(s);
                return 1;
            }
            let span = SLOT_BITS * (k as u32 + 1);
            let base = (self.cur >> span) << span;
            let slot_start = base + ((idx as u64) << (SLOT_BITS * k as u32));
            self.cur = self.cur.max(slot_start);
            self.occupied[k] &= !(1 << idx);
            let mut buf = std::mem::take(&mut self.cascade_buf);
            std::mem::swap(&mut buf, &mut self.slots[k * SLOTS + idx]);
            for s in buf.drain(..) {
                // Relative to the new cursor every event in this slot is
                // within 64^k, so it re-places strictly below level k.
                self.place(s);
            }
            self.cascade_buf = buf;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Time, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at,
            seq,
            event: seq,
        }
    }

    #[test]
    fn level_selection_matches_highest_differing_digit() {
        assert_eq!(level_of(0), 0);
        assert_eq!(level_of(1), 0);
        assert_eq!(level_of(63), 0);
        assert_eq!(level_of(64), 1);
        assert_eq!(level_of(64 * 64 - 1), 1);
        assert_eq!(level_of(64 * 64), 2);
        assert_eq!(level_of((1u64 << HORIZON_BITS) - 1), LEVELS - 1);
    }

    #[test]
    fn drains_buckets_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // One event per level, plus one in the overflow heap.
        let times = [
            3u64,
            100,
            5_000,
            300_000,
            20_000_000,
            1_500_000_000,
            1 << 40,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.insert(ev(t, i as u64));
        }
        assert_eq!(w.len(), times.len());
        let mut got = Vec::new();
        let mut out = Vec::new();
        while w.pop_batch(&mut out) > 0 {
            got.extend(out.drain(..).map(|s| s.at));
        }
        assert_eq!(got, times.to_vec());
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_events_pop_in_seq_order_even_across_levels() {
        let mut w = TimerWheel::new();
        // seq 0 lands at level 2 (far away), seq 1 at level 0 for the
        // same instant after the cursor advances: the drained bucket must
        // still come out in seq order.
        w.insert(ev(10_000, 0));
        w.insert(ev(9_000, 1));
        let mut out = Vec::new();
        assert_eq!(w.pop_batch(&mut out), 1);
        assert_eq!(out[0].at, 9_000);
        w.insert(ev(10_000, 2));
        out.clear();
        assert_eq!(w.pop_batch(&mut out), 2);
        let seqs: Vec<u64> = out.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn min_time_sees_every_region() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        assert_eq!(w.min_time(), None);
        w.insert(ev(1 << 40, 0));
        assert_eq!(w.min_time(), Some(1 << 40)); // overflow only
        w.insert(ev(70_000, 1));
        assert_eq!(w.min_time(), Some(70_000)); // level-2 slot scan
        w.insert(ev(99_000, 2));
        assert_eq!(w.min_time(), Some(70_000));
        w.insert(ev(5, 3));
        assert_eq!(w.min_time(), Some(5)); // level 0 exact
    }

    #[test]
    fn overflow_migrates_back_in_order() {
        let mut w = TimerWheel::new();
        let horizon = 1u64 << HORIZON_BITS;
        w.insert(ev(3 * horizon + 7, 0));
        w.insert(ev(2 * horizon + 7, 1));
        w.insert(ev(2 * horizon + 7, 2));
        w.insert(ev(40, 3));
        let mut got = Vec::new();
        let mut out = Vec::new();
        while w.pop_batch(&mut out) > 0 {
            got.extend(out.drain(..).map(|s| (s.at, s.seq)));
        }
        assert_eq!(
            got,
            vec![
                (40, 3),
                (2 * horizon + 7, 1),
                (2 * horizon + 7, 2),
                (3 * horizon + 7, 0)
            ]
        );
    }

    #[test]
    fn cursor_reset_keeps_fresh_events_in_the_wheel() {
        let mut w = TimerWheel::new();
        w.insert(ev(10, 0));
        let mut out = Vec::new();
        w.pop_batch(&mut out);
        assert!(w.is_empty());
        // A long simulated-time jump later, near-future events should
        // still land in the wheel, not the overflow heap.
        w.reset_cursor(5 << HORIZON_BITS);
        w.insert(ev((5 << HORIZON_BITS) + 100, 1));
        assert!(w.overflow.is_empty());
        out.clear();
        assert_eq!(w.pop_batch(&mut out), 1);
        assert_eq!(out[0].at, (5 << HORIZON_BITS) + 100);
    }
}
