//! Plain-text rendering of figure series and tables.
//!
//! The benchmark harness regenerates every figure of the paper as a data
//! series; this module renders them as aligned text tables so the output of
//! `figures` can be diffed against `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A named data series: one line of a figure (e.g. "StRoM: Write").
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per x-axis point (`None` renders as a dash).
    pub values: Vec<Option<f64>>,
}

impl Series {
    /// Creates a series from a label and values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            values: values.into_iter().map(Some).collect(),
        }
    }

    /// Creates a series that may have missing points.
    pub fn with_gaps(label: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// A rendered figure: title, x-axis labels, unit, and one or more series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Title, e.g. "Fig 7: remote linked-list traversal".
    pub title: String,
    /// Label of the x axis, e.g. "list length".
    pub x_label: String,
    /// The x-axis tick labels, e.g. `["4", "8", "16", "32"]`.
    pub x_ticks: Vec<String>,
    /// Unit of the y values, e.g. "us" or "Gbit/s".
    pub y_unit: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Free-form footnotes rendered under the table (e.g. the fault and
    /// recovery counters observed while the series were measured).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        x_ticks: Vec<String>,
        y_unit: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            x_ticks,
            y_unit: y_unit.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series and returns `self` for chaining.
    pub fn push_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a footnote line rendered under the table.
    pub fn push_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the figure as an aligned text table.
    ///
    /// # Panics
    ///
    /// Panics if a series has a different length than `x_ticks` — that is a
    /// harness bug, not a data condition.
    pub fn render(&self) -> String {
        for s in &self.series {
            assert_eq!(
                s.values.len(),
                self.x_ticks.len(),
                "series '{}' does not match the x axis",
                s.label
            );
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let label_w = self
            .series
            .iter()
            .map(|s| s.label.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .x_ticks
            .iter()
            .map(|t| t.len())
            .max()
            .unwrap_or(8)
            .max(9);
        let _ = write!(out, "{:label_w$}", self.x_label);
        for t in &self.x_ticks {
            let _ = write!(out, "  {t:>col_w$}");
        }
        let _ = writeln!(out, "  [{}]", self.y_unit);
        for s in &self.series {
            let _ = write!(out, "{:label_w$}", s.label);
            for v in &s.values {
                match v {
                    Some(v) => {
                        let _ = write!(out, "  {v:>col_w$.3}");
                    }
                    None => {
                        let _ = write!(out, "  {:>col_w$}", "-");
                    }
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "  {note}");
        }
        out
    }
}

/// Renders a simple two-dimensional table with row and column headers.
pub fn render_table(title: &str, col_headers: &[&str], rows: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let row_w = rows.iter().map(|(h, _)| h.len()).max().unwrap_or(4).max(4);
    let mut col_ws: Vec<usize> = col_headers.iter().map(|h| h.len()).collect();
    for (_, cells) in rows {
        for (i, c) in cells.iter().enumerate() {
            if i < col_ws.len() {
                col_ws[i] = col_ws[i].max(c.len());
            }
        }
    }
    let _ = write!(out, "{:row_w$}", "");
    for (h, w) in col_headers.iter().zip(&col_ws) {
        let _ = write!(out, "  {h:>w$}");
    }
    out.push('\n');
    for (h, cells) in rows {
        let _ = write!(out, "{h:row_w$}");
        for (c, w) in cells.iter().zip(&col_ws) {
            let _ = write!(out, "  {c:>w$}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_all_series() {
        let fig = Figure::new("Fig X", "payload", vec!["64B".into(), "128B".into()], "us")
            .push_series(Series::new("write", vec![1.5, 2.5]))
            .push_series(Series::with_gaps("read", vec![Some(2.0), None]));
        let text = fig.render();
        assert!(text.contains("Fig X"));
        assert!(text.contains("write"));
        assert!(text.contains("1.500"));
        assert!(text.contains('-'), "gap must render as a dash");
    }

    #[test]
    fn figure_renders_notes_after_the_table() {
        let fig = Figure::new("Fig Y", "x", vec!["1".into()], "us")
            .push_series(Series::new("s", vec![1.0]))
            .push_note("retransmissions=3 timeouts=1");
        let text = fig.render();
        let table_pos = text.find("1.000").unwrap();
        let note_pos = text.find("retransmissions=3").unwrap();
        assert!(note_pos > table_pos, "notes must follow the series");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_series_length_panics() {
        let fig = Figure::new("t", "x", vec!["a".into()], "u")
            .push_series(Series::new("s", vec![1.0, 2.0]));
        let _ = fig.render();
    }

    #[test]
    fn table_renders_headers_and_cells() {
        let text = render_table(
            "Table 3",
            &["LUTs", "BRAMs"],
            &[
                ("10 G".to_string(), vec!["92K".into(), "181".into()]),
                ("100 G".to_string(), vec!["122K".into(), "402".into()]),
            ],
        );
        assert!(text.contains("Table 3"));
        assert!(text.contains("92K"));
        assert!(text.contains("402"));
    }
}
