//! A bounded FIFO mirroring the HLS `stream<>` objects of the paper.
//!
//! StRoM kernels are written in Vivado HLS where `stream<T>` maps to a
//! hardware FIFO with finite depth; producers stall when the FIFO is full
//! and consumers stall when it is empty (Listing 1 of the paper). The
//! simulation uses [`Fifo`] both inside kernels and between pipeline
//! stages, and the `full`/`empty` checks reproduce the back-pressure
//! behaviour that HLS `!stream.empty()` guards express.

use std::collections::VecDeque;

/// A bounded, single-clock-domain FIFO.
///
/// # Examples
///
/// ```
/// use strom_sim::Fifo;
/// let mut f: Fifo<u32> = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert!(f.push(3).is_err(), "full FIFO rejects a third element");
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    queue: VecDeque<T>,
    capacity: usize,
    high_watermark: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a depth-0 FIFO cannot exist in
    /// hardware.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Self {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            high_watermark: 0,
        }
    }

    /// The configured capacity (hardware FIFO depth).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of queued elements.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO holds no elements (HLS `stream::empty()`).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is at capacity (HLS `stream::full()`).
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// The deepest occupancy ever observed (for sizing reports).
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Enqueues `value`, or returns it back if the FIFO is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            return Err(value);
        }
        self.queue.push_back(value);
        self.high_watermark = self.high_watermark.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Peeks at the oldest element without consuming it.
    pub fn front(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Drains all queued elements in order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.queue.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_fifo() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_fifo_rejects_and_returns_value() {
        let mut f = Fifo::new(1);
        f.push("a").unwrap();
        assert!(f.is_full());
        assert_eq!(f.push("b"), Err("b"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.high_watermark(), 2);
    }

    #[test]
    fn front_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.front(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.drain().collect::<Vec<_>>(), vec![1, 2]);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
