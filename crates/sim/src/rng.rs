//! Deterministic random-number generation for workloads and fault injection.
//!
//! All randomness in the simulator flows through [`SimRng`], a
//! self-contained xoshiro256++ generator (seeded through splitmix64), so
//! that every experiment is exactly reproducible from its seed and the
//! simulator carries no external RNG dependency.

/// A seeded simulation RNG (xoshiro256++).
///
/// # Examples
///
/// ```
/// use strom_sim::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// The splitmix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Draws a uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless unbiased bounded draw.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Draws a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }

    /// Draws from an exponential distribution with the given mean
    /// (used for randomized think times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.unit().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Permutes `slice` uniformly at random (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed(9);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = SimRng::seed(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SimRng::seed(17);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // p = 0.5 should be roughly balanced.
        let hits = (0..10_000).filter(|_| rng.chance(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_handles_unaligned_tails() {
        let mut rng = SimRng::seed(8);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed(42);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
