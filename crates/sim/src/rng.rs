//! Deterministic random-number generation for workloads and fault injection.
//!
//! All randomness in the simulator flows through [`SimRng`], a thin wrapper
//! over a seeded PCG-family generator, so that every experiment is exactly
//! reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded simulation RNG.
///
/// # Examples
///
/// ```
/// use strom_sim::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws a uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Draws a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// Draws from an exponential distribution with the given mean
    /// (used for randomized think times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Permutes `slice` uniformly at random (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed(9);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // p = 0.5 should be roughly balanced.
        let hits = (0..10_000).filter(|_| rng.chance(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed(42);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
