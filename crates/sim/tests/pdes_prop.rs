//! Differential property test for the conservative time-windowed PDES
//! engine: a randomized gossip model is pushed through the sequential
//! global-heap reference and the windowed engine at one worker and at
//! many workers, and every observable — the full dispatch log, the
//! fingerprints, the event count, and the final partition states — must
//! be bit-identical across all three. This is the engine-level analogue
//! of `ReferenceEventQueue`: the reference pops a single global heap in
//! canonical `(time, dst, src, seq)` order, so agreement proves the
//! windowed merge realizes exactly that serialization.

use strom_sim::pdes::{Outbox, Partition, PdesEngine};
use strom_sim::SimRng;

/// A gossip hop: carries a value to mix into the receiver's state and a
/// remaining hop budget so every run terminates.
struct Hop {
    value: u64,
    hops: u32,
}

/// One gossip participant. All behaviour (fanout, delays, destinations)
/// derives from the partition's private RNG, so the model exercises
/// uneven load, bursts of equal-time events, and cross-partition fanout
/// without any global coordination.
struct Gossip {
    id: usize,
    n: usize,
    lookahead: u64,
    rng: SimRng,
    /// Rolling FNV-style digest of everything this partition handled —
    /// the per-partition "simulation state" the test compares at the end.
    acc: u64,
    handled: u64,
}

impl Gossip {
    fn mix(&mut self, value: u64, now: u64) {
        self.acc = (self.acc ^ value).wrapping_mul(0x100_0000_01b3);
        self.acc = (self.acc ^ now).wrapping_mul(0x100_0000_01b3);
        self.handled += 1;
    }
}

impl Partition for Gossip {
    type Event = Hop;

    fn init(&mut self, out: &mut Outbox<Self::Event>) {
        // Everyone seeds a couple of initial rumours, some of them
        // landing at identical times on purpose (same-window ties).
        for i in 0..2 {
            let dst = self.rng.below(self.n as u64) as usize;
            let delay = self.lookahead + (i as u64 % 2) * 3;
            if dst == self.id {
                out.send(
                    dst,
                    1 + delay,
                    Hop {
                        value: self.rng.next_u64(),
                        hops: 6,
                    },
                );
            } else {
                out.send(
                    dst,
                    delay,
                    Hop {
                        value: self.rng.next_u64(),
                        hops: 6,
                    },
                );
            }
        }
    }

    fn handle(&mut self, event: Self::Event, out: &mut Outbox<Self::Event>) {
        let now = out.now();
        self.mix(event.value, now);
        if event.hops == 0 {
            return;
        }
        // Fan out 0..=2 follow-ups; cross sends honour the lookahead,
        // self sends the ≥1 contract. Small delay spreads keep many
        // events inside one window so the tie-break path stays hot.
        let fanout = self.rng.below(3);
        for _ in 0..fanout {
            let dst = self.rng.below(self.n as u64) as usize;
            let value = self.rng.next_u64();
            let spread = self.rng.below(2 * self.lookahead + 4);
            if dst == self.id {
                out.send(
                    dst,
                    1 + spread,
                    Hop {
                        value,
                        hops: event.hops - 1,
                    },
                );
            } else {
                out.send(
                    dst,
                    self.lookahead + spread,
                    Hop {
                        value,
                        hops: event.hops - 1,
                    },
                );
            }
        }
    }
}

fn build(n: usize, lookahead: u64, seed: u64) -> PdesEngine<Gossip> {
    let parts = (0..n)
        .map(|id| Gossip {
            id,
            n,
            lookahead,
            rng: SimRng::seed(seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            acc: 0xcbf2_9ce4_8422_2325,
            handled: 0,
        })
        .collect();
    PdesEngine::new(parts, lookahead).recorded()
}

/// The full differential matrix: reference vs windowed(1) vs
/// windowed(many), across seeds, partition counts, and lookaheads.
#[test]
fn gossip_is_bit_identical_across_engines_and_worker_counts() {
    for &(n, lookahead) in &[(3usize, 7u64), (5, 1), (9, 1_000)] {
        for seed in 0..8u64 {
            let (r_ref, p_ref) = build(n, lookahead, seed).run_reference();
            let (r_one, p_one) = build(n, lookahead, seed).run(1);
            let (r_many, p_many) = build(n, lookahead, seed).run(8);

            assert!(
                r_ref.events > 0,
                "n={n} seed={seed}: model produced no events"
            );
            for (label, r, p) in [
                ("1 worker", &r_one, &p_one),
                ("8 workers", &r_many, &p_many),
            ] {
                assert_eq!(
                    r.log, r_ref.log,
                    "n={n} la={lookahead} seed={seed}: {label} dispatch log diverged"
                );
                assert_eq!(
                    r.fingerprint, r_ref.fingerprint,
                    "n={n} la={lookahead} seed={seed}: {label} fingerprint diverged"
                );
                assert_eq!(r.partition_fingerprints, r_ref.partition_fingerprints);
                assert_eq!(r.events, r_ref.events);
                for (a, b) in p.iter().zip(p_ref.iter()) {
                    assert_eq!(
                        (a.acc, a.handled),
                        (b.acc, b.handled),
                        "n={n} la={lookahead} seed={seed}: {label} partition {} state diverged",
                        a.id
                    );
                }
            }
        }
    }
}

/// The dispatch log the reference produces really is the canonical
/// serialization: sorted by `(at, dst, src, seq)` with no duplicates.
#[test]
fn reference_log_is_the_canonical_serialization() {
    let (report, _) = build(4, 11, 0xD15).run_reference();
    let log = report.log.expect("recorded engine keeps the log");
    assert!(!log.is_empty());
    let mut sorted = log.clone();
    sorted.sort(); // DispatchRecord's derived Ord *is* the canonical key.
    sorted.dedup();
    assert_eq!(
        log, sorted,
        "reference emitted events out of canonical order"
    );
}
