//! Property-based tests of the simulation engine.

use proptest::prelude::*;

use strom_sim::{Bandwidth, EventQueue, Fifo, LinkSerializer, Samples, SimRng};

proptest! {
    /// Events pop in non-decreasing time order regardless of insertion
    /// order, and ties preserve insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(s.at >= lt);
                if s.at == lt {
                    // Same-time events preserve insertion (seq) order,
                    // which for our insertion loop equals index order.
                    prop_assert!(s.event > li);
                }
            }
            last = Some((s.at, s.event));
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// The clock never runs backwards, even with past-time scheduling and
    /// `advance_to`.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..200)) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut last_now = 0;
        for (t, advance) in ops {
            if advance {
                q.advance_to(t);
            } else {
                q.schedule_at(t, 0);
                q.pop();
            }
            prop_assert!(q.now() >= last_now);
            last_now = q.now();
        }
    }

    /// A link serializer never overlaps transmissions and preserves
    /// submission order.
    #[test]
    fn serializer_never_overlaps(jobs in prop::collection::vec((0u64..10_000, 1u64..5000), 1..100)) {
        let mut link = LinkSerializer::new(Bandwidth::gbit_per_sec(10.0));
        let mut prev_end = 0;
        let mut clock = 0;
        for (gap, bytes) in jobs {
            clock += gap;
            let (start, end) = link.admit(clock, bytes);
            prop_assert!(start >= prev_end, "transmissions overlap");
            prop_assert!(start >= clock);
            prop_assert!(end > start);
            prev_end = end;
        }
    }

    /// FIFO order and capacity under arbitrary push/pop sequences,
    /// checked against a VecDeque model.
    #[test]
    fn fifo_matches_model(ops in prop::collection::vec(any::<Option<u16>>(), 1..300)) {
        let mut fifo = Fifo::new(8);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let ours = fifo.push(v);
                    if model.len() < 8 {
                        prop_assert!(ours.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(ours, Err(v));
                    }
                }
                None => {
                    prop_assert_eq!(fifo.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(fifo.len(), model.len());
        }
    }

    /// Quantiles are order statistics: the q-quantile is ≥ a fraction q
    /// of the samples (nearest-rank definition).
    #[test]
    fn quantiles_are_order_statistics(values in prop::collection::vec(any::<u32>(), 1..200), q in 0.0f64..=1.0) {
        let mut s = Samples::new();
        for &v in &values {
            s.record(u64::from(v));
        }
        let quantile = s.quantile(q).unwrap();
        let below = values.iter().filter(|&&v| u64::from(v) <= quantile).count();
        prop_assert!(below as f64 >= (q * values.len() as f64).floor());
        prop_assert!(values.iter().any(|&v| u64::from(v) == quantile));
    }

    /// Same seed → identical stream; used by every determinism guarantee
    /// in the testbed.
    #[test]
    fn rng_is_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::seed(seed);
        let mut b = SimRng::seed(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
