//! Randomized tests of the simulation engine, driven by the
//! deterministic [`SimRng`] with fixed seeds.

use strom_sim::{
    Bandwidth, EventQueue, Fifo, LinkSerializer, ReferenceEventQueue, Samples, Scheduled, SimRng,
};

/// Events pop in non-decreasing time order regardless of insertion
/// order, and ties preserve insertion order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SimRng::seed(0xe0);
    for _ in 0..100 {
        let times: Vec<u64> = (0..rng.range(1, 200)).map(|_| rng.below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(s.at >= lt);
                if s.at == lt {
                    // Same-time events preserve insertion (seq) order,
                    // which for our insertion loop equals index order.
                    assert!(s.event > li);
                }
            }
            last = Some((s.at, s.event));
        }
        assert_eq!(q.processed(), times.len() as u64);
    }
}

/// The clock never runs backwards, even with past-time scheduling and
/// `advance_to`.
#[test]
fn clock_is_monotone() {
    let mut rng = SimRng::seed(0xc10c);
    for _ in 0..100 {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut last_now = 0;
        for _ in 0..rng.range(1, 200) {
            let t = rng.below(1000);
            if rng.chance(0.5) {
                q.advance_to(t);
            } else {
                q.schedule_at(t, 0);
                q.pop();
            }
            assert!(q.now() >= last_now);
            last_now = q.now();
        }
    }
}

/// The timer-wheel queue and the reference heap queue produce identical
/// `(at, seq, event)` streams under arbitrary interleavings of
/// `schedule_at` (including past-time clamping and same-tick ties),
/// `schedule_in`, `pop`, and `advance_to`. This is the determinism proof
/// the engine swap rests on: the wheel's order is *defined* as whatever
/// the trivially correct heap produces.
#[test]
fn wheel_and_reference_heap_are_indistinguishable() {
    let mut rng = SimRng::seed(0x11ee1);
    for round in 0..60 {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r: ReferenceEventQueue<u32> = ReferenceEventQueue::new();
        let mut next_ev = 0u32;
        for _ in 0..rng.range(10, 400) {
            match rng.below(10) {
                // Schedule: a mix of near, far (multi-level / overflow),
                // tied, and past (clamped) times.
                0..=4 => {
                    let at = match rng.below(4) {
                        0 => q.now().saturating_add(rng.below(64)),
                        1 => q.now().saturating_add(rng.below(1 << 20)),
                        2 => q.now().saturating_add(rng.below(1 << 40)),
                        // Possibly in the past: both queues must clamp.
                        _ => rng.below(q.now().max(1) * 2 + 100),
                    };
                    q.schedule_at(at, next_ev);
                    r.schedule_at(at, next_ev);
                    next_ev += 1;
                }
                5 => {
                    let d = rng.below(1 << 30);
                    q.schedule_in(d, next_ev);
                    r.schedule_in(d, next_ev);
                    next_ev += 1;
                }
                6..=7 => {
                    let a = q.pop().map(|s| (s.at, s.seq, s.event));
                    let b = r.pop().map(|s| (s.at, s.seq, s.event));
                    assert_eq!(a, b, "pop diverged (round {round})");
                }
                8 => {
                    let t = q.now().saturating_add(rng.below(1 << 24));
                    q.advance_to(t);
                    r.advance_to(t);
                }
                _ => {
                    let mut qa: Vec<Scheduled<u32>> = Vec::new();
                    let mut rb: Vec<Scheduled<u32>> = Vec::new();
                    assert_eq!(q.pop_batch(&mut qa), r.pop_batch(&mut rb));
                    let a: Vec<_> = qa.iter().map(|s| (s.at, s.seq, s.event)).collect();
                    let b: Vec<_> = rb.iter().map(|s| (s.at, s.seq, s.event)).collect();
                    assert_eq!(a, b, "pop_batch diverged (round {round})");
                }
            }
            assert_eq!(q.now(), r.now());
            assert_eq!(q.pending(), r.pending());
            assert_eq!(q.peek_time(), r.peek_time());
        }
        // Drain fully: the tails must match event for event.
        loop {
            let a = q.pop().map(|s| (s.at, s.seq, s.event));
            let b = r.pop().map(|s| (s.at, s.seq, s.event));
            assert_eq!(a, b, "drain diverged (round {round})");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(q.processed(), r.processed());
    }
}

/// Dense same-tick bursts: many events on few distinct times exercise the
/// bucket sort and the batch/wheel handoff, where ordering bugs would
/// hide. Ties must pop in exact insertion order on both engines.
#[test]
fn wheel_preserves_insertion_order_on_heavy_ties() {
    let mut rng = SimRng::seed(0x7135);
    for _ in 0..40 {
        let mut q = EventQueue::new();
        let mut r = ReferenceEventQueue::new();
        let ticks: Vec<u64> = (0..rng.range(1, 8)).map(|_| rng.below(1 << 14)).collect();
        for i in 0..rng.range(50, 300) {
            let at = ticks[rng.below(ticks.len() as u64) as usize];
            q.schedule_at(at, i);
            r.schedule_at(at, i);
        }
        while let Some(a) = q.pop() {
            let b = r.pop().expect("same length");
            assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event));
        }
        assert!(r.pop().is_none());
    }
}

/// A link serializer never overlaps transmissions and preserves
/// submission order.
#[test]
fn serializer_never_overlaps() {
    let mut rng = SimRng::seed(0x5e7);
    for _ in 0..100 {
        let mut link = LinkSerializer::new(Bandwidth::gbit_per_sec(10.0));
        let mut prev_end = 0;
        let mut clock = 0;
        for _ in 0..rng.range(1, 100) {
            let gap = rng.below(10_000);
            let bytes = rng.range(1, 5000);
            clock += gap;
            let (start, end) = link.admit(clock, bytes);
            assert!(start >= prev_end, "transmissions overlap");
            assert!(start >= clock);
            assert!(end > start);
            prev_end = end;
        }
    }
}

/// FIFO order and capacity under arbitrary push/pop sequences, checked
/// against a VecDeque model.
#[test]
fn fifo_matches_model() {
    let mut rng = SimRng::seed(0xf1f0);
    for _ in 0..100 {
        let mut fifo = Fifo::new(8);
        let mut model = std::collections::VecDeque::new();
        for _ in 0..rng.range(1, 300) {
            if rng.chance(0.5) {
                let v = rng.next_u64() as u16;
                let ours = fifo.push(v);
                if model.len() < 8 {
                    assert!(ours.is_ok());
                    model.push_back(v);
                } else {
                    assert_eq!(ours, Err(v));
                }
            } else {
                assert_eq!(fifo.pop(), model.pop_front());
            }
            assert_eq!(fifo.len(), model.len());
        }
    }
}

/// Quantiles are order statistics: the q-quantile is ≥ a fraction q of
/// the samples (nearest-rank definition).
#[test]
fn quantiles_are_order_statistics() {
    let mut rng = SimRng::seed(0x9a7);
    for _ in 0..200 {
        let values: Vec<u32> = (0..rng.range(1, 200))
            .map(|_| rng.next_u64() as u32)
            .collect();
        let q = rng.unit();
        let mut s = Samples::new();
        for &v in &values {
            s.record(u64::from(v));
        }
        let quantile = s.quantile(q).unwrap();
        let below = values.iter().filter(|&&v| u64::from(v) <= quantile).count();
        assert!(below as f64 >= (q * values.len() as f64).floor());
        assert!(values.iter().any(|&v| u64::from(v) == quantile));
    }
}

/// Same seed → identical stream; used by every determinism guarantee in
/// the testbed.
#[test]
fn rng_is_deterministic() {
    let mut seeds = SimRng::seed(0xde7);
    for _ in 0..100 {
        let seed = seeds.next_u64();
        let mut a = SimRng::seed(seed);
        let mut b = SimRng::seed(seed);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
