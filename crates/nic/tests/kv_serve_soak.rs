//! Chaos soak for the KV serving tier: the open-loop GET/PUT/traversal
//! workload runs over links injecting seeded loss / corruption /
//! reordering / duplication ([`strom_nic::chaos_model`]), and the
//! exactly-once audit must still come out clean — every acked PUT
//! committed exactly once (version ladders are gapless and
//! duplicate-free), every response payload verifies against a version
//! the key legitimately held, and no QP goes terminal. Same seed ⇒
//! bit-identical outcome, so any failing soak seed replays exactly.

use strom_nic::kv_serve::{run_kv_serve, KvSpec};
use strom_nic::{active_fault_types, chaos_model};
use strom_sim::time::NANOS;

/// A small tier with a request stream long enough to meet faults.
fn soak_spec(seed: u64) -> KvSpec {
    let mut spec = KvSpec::new(2, 2, 4_000 * NANOS, seed);
    spec.requests = 180;
    spec.keys_per_server = 24;
    spec.primary_entries = 8;
    spec.fault = Some(chaos_model(seed));
    spec
}

#[test]
fn chaos_soak_preserves_exactly_once_put_semantics() {
    for round in 0..6u64 {
        let seed = 0x4B5A_0A4B ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let spec = soak_spec(seed);
        let model = spec.fault.expect("soak injects faults");
        assert!(active_fault_types(&model) >= 2);
        let o = run_kv_serve(&spec);
        assert_eq!(o.qp_errors, 0, "seed {seed:#x}: QP died under chaos");
        assert_eq!(
            o.lost_responses, 0,
            "seed {seed:#x}: RC must deliver every response"
        );
        assert_eq!(
            (o.lost_puts, o.dup_puts),
            (0, 0),
            "seed {seed:#x}: exactly-once violated: {o:?}"
        );
        assert_eq!(
            o.verify_failures, 0,
            "seed {seed:#x}: payload verification failed: {o:?}"
        );
        assert_eq!(o.put_errors, 0, "seed {seed:#x}");
        assert_eq!(o.completed, spec.requests as u64);
        assert!(
            o.retransmissions > 0,
            "seed {seed:#x}: chaos too mild to be a soak"
        );
    }
}

#[test]
fn chaos_runs_replay_bit_identically() {
    let spec = soak_spec(0xC4A0_55ED);
    let a = run_kv_serve(&spec);
    let b = run_kv_serve(&spec);
    assert_eq!(a, b, "chaos rerun diverged");
}

#[test]
fn chaos_tail_is_fatter_than_the_clean_tail() {
    let mut clean = soak_spec(0x7A11);
    clean.fault = None;
    let chaotic = soak_spec(0x7A11);
    let a = run_kv_serve(&clean);
    let b = run_kv_serve(&chaotic);
    assert_eq!(a.retransmissions, 0, "clean links must not retransmit");
    assert!(
        b.p999_ps.unwrap() > a.p999_ps.unwrap(),
        "retransmission delays must surface in the p999: {:?} vs {:?}",
        a.p999_ps,
        b.p999_ps
    );
}
