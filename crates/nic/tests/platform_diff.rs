//! Differential property test between the two hardware platforms
//! (§6.1/§7): the same seeded READ/WRITE mix on a clean two-node
//! cluster must produce *identical payload bytes* at 10 G and 100 G —
//! the platform changes time, never data — while every per-op latency
//! is strictly lower and the end-to-end throughput strictly higher on
//! the 100 G datapath.

use strom_nic::testbed::ClusterTestbed;
use strom_nic::{CompletionStatus, Platform, WorkRequest};
use strom_sim::SimRng;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

/// One platform's view of the seeded mix: per-op latencies, total
/// elapsed time, and an FNV-1a digest of both memory images.
struct MixOutcome {
    op_latency_ps: Vec<u64>,
    elapsed_ps: u64,
    bytes_moved: u64,
    digest: u64,
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `ops` seeded READ/WRITE ops (mixed sizes, 64 B .. 48 KiB) on a
/// clean transparent pair at `platform`, one op at a time so each op's
/// completion latency is isolated from queueing behind its neighbours.
fn run_mix(platform: Platform, seed: u64, ops: usize) -> MixOutcome {
    let mut cfg = platform.config();
    cfg.seed = seed;
    let mut tb = ClusterTestbed::transparent_pair(cfg);
    tb.connect_qp(QP);
    let a = tb.pin(CLIENT, 4 << 20);
    let b = tb.pin(SERVER, 4 << 20);
    let mut rng = SimRng::seed(seed ^ 0xD1FF);
    let mut image = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut image);
    tb.mem(CLIENT).write(a, &image);
    rng.fill_bytes(&mut image);
    tb.mem(SERVER).write(b, &image);

    let mut sched = SimRng::seed(seed ^ 0x0D1F_F5EED);
    let t0 = tb.now();
    let mut op_latency_ps = Vec::with_capacity(ops);
    let mut bytes_moved = 0u64;
    for _ in 0..ops {
        let off = sched.below(1 << 20);
        let len = sched.range(64, 48 << 10) as u32;
        let wr = if sched.chance(0.5) {
            WorkRequest::Write {
                remote_vaddr: b + (2 << 20) + off,
                local_vaddr: a + off,
                len,
            }
        } else {
            WorkRequest::Read {
                remote_vaddr: b + off,
                local_vaddr: a + (2 << 20) + off,
                len,
            }
        };
        bytes_moved += u64::from(len);
        let posted = tb.now();
        let h = tb.post(CLIENT, QP, wr);
        let done = tb.run_until_complete(CLIENT, h);
        assert_eq!(
            tb.completion_status(CLIENT, h),
            Some(CompletionStatus::Success),
            "{platform}: op failed on a clean link"
        );
        op_latency_ps.push(done - posted);
    }
    assert!(tb.run_until_idle_bounded(50_000_000));
    let mut digest = fnv(&tb.mem(SERVER).read(b + (2 << 20), 2 << 20));
    digest ^= fnv(&tb.mem(CLIENT).read(a + (2 << 20), 2 << 20)).rotate_left(1);
    MixOutcome {
        op_latency_ps,
        elapsed_ps: tb.now() - t0,
        bytes_moved,
        digest,
    }
}

/// The headline differential: at identical seeds, 100 G dominates 10 G
/// op for op, and the payloads that land are bit-identical.
#[test]
fn hundred_gig_dominates_ten_gig_at_identical_seeds() {
    for seed in [1u64, 0xD1FF_0002, 0xD1FF_0003] {
        let ten = run_mix(Platform::TenGig, seed, 24);
        let hundred = run_mix(Platform::HundredGig, seed, 24);

        // Same schedule (the op RNG is platform-independent)...
        assert_eq!(ten.bytes_moved, hundred.bytes_moved, "seed {seed}");
        assert_eq!(
            ten.op_latency_ps.len(),
            hundred.op_latency_ps.len(),
            "seed {seed}"
        );
        // ...identical data plane: what lands in memory does not depend
        // on the platform, only on the schedule.
        assert_eq!(
            ten.digest, hundred.digest,
            "seed {seed}: payload digests diverged across platforms"
        );
        // Strict per-op dominance: every single op completes sooner on
        // the 100 G datapath (faster clock, wider beats, Gen3 x16).
        for (i, (t, h)) in ten
            .op_latency_ps
            .iter()
            .zip(&hundred.op_latency_ps)
            .enumerate()
        {
            assert!(
                h < t,
                "seed {seed} op {i}: 100g latency {h} ps !< 10g latency {t} ps"
            );
        }
        // Strictly higher throughput end to end.
        let gbps = |o: &MixOutcome| o.bytes_moved as f64 / o.elapsed_ps as f64 * 1e3;
        assert!(
            gbps(&hundred) > gbps(&ten),
            "seed {seed}: 100g throughput {:.2} !> 10g {:.2} GB/s",
            gbps(&hundred),
            gbps(&ten)
        );
    }
}

/// Reruns at the same platform+seed are bit-identical — the property
/// the corpus fingerprints lean on.
#[test]
fn mix_is_deterministic_per_platform() {
    for &p in &Platform::ALL {
        let a = run_mix(p, 7, 10);
        let b = run_mix(p, 7, 10);
        assert_eq!(a.digest, b.digest, "{p}");
        assert_eq!(a.op_latency_ps, b.op_latency_ps, "{p}");
        assert_eq!(a.elapsed_ps, b.elapsed_ps, "{p}");
    }
}
