//! Chaos-soak for the PDES cluster model: across 24 seeds, the
//! sequential reference, the 1-worker windowed engine, and the
//! many-worker windowed engine must agree on every digest, counter
//! block, and RTT sum — and the default-geometry digest is pinned to a
//! checked-in golden so an engine change that silently reorders events
//! fails loudly. Regenerate the golden with `STROM_BLESS=1 cargo test
//! -p strom-nic --test pdes_cluster_soak` after an *intentional* model
//! change.

use strom_nic::{run_pdes_cluster, run_pdes_cluster_reference, PdesClusterParams};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/pdes_cluster.digest"
);

fn soak_params(seed: u64) -> PdesClusterParams {
    PdesClusterParams {
        nodes: 5,
        seed,
        requests_per_node: 60,
        ..Default::default()
    }
}

#[test]
fn twenty_four_seed_soak_agrees_across_engines() {
    for seed in 0..24u64 {
        let params = soak_params(0x50AC ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let reference = run_pdes_cluster_reference(&params);
        let one = run_pdes_cluster(&params, 1);
        let many = run_pdes_cluster(&params, 6);

        for (label, got) in [("1 worker", &one), ("6 workers", &many)] {
            assert_eq!(
                got.digest, reference.digest,
                "seed {seed}: {label} digest diverged from the reference"
            );
            assert_eq!(
                got.pdes.fingerprint, reference.pdes.fingerprint,
                "seed {seed}"
            );
            assert_eq!(
                got.pdes.partition_fingerprints, reference.pdes.partition_fingerprints,
                "seed {seed}: {label} per-partition streams diverged"
            );
            assert_eq!(got.pdes.events, reference.pdes.events, "seed {seed}");
            assert_eq!(
                got.partition_counters, reference.partition_counters,
                "seed {seed}: {label} counters diverged"
            );
            assert_eq!(got.total, reference.total, "seed {seed}");
            assert_eq!(got.rtt_sum, reference.rtt_sum, "seed {seed}");
        }
        // Sanity: the workload actually exercised the fabric.
        assert!(reference.total.frames_out > 0, "seed {seed}: no traffic");
        assert!(reference.total.responses > 0, "seed {seed}: no responses");
    }
}

/// The default-geometry digest, pinned. Catches cross-version drift the
/// differential soak cannot (all three engines drifting together).
#[test]
fn default_geometry_digest_matches_the_golden() {
    let report = run_pdes_cluster(&PdesClusterParams::default(), 2);
    let got = format!("{:016x}\n", report.digest);
    if std::env::var_os("STROM_BLESS").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden digest");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect(
        "golden digest present (regenerate with STROM_BLESS=1 after an intentional model change)",
    );
    assert_eq!(
        got, want,
        "PDES cluster digest drifted from the checked-in golden"
    );
}
