//! Seeded property tests for the N-node switched shuffle.
//!
//! Each case draws an *arbitrary* cluster — node count (N ≤ 8), table
//! sizes, radix width, switch geometry, and a composable fault mix —
//! from a fixed seed, runs the all-to-all shuffle, and checks the two
//! cluster-level contracts:
//!
//! 1. **Exactly-once delivery**: every 8 B value each node shuffles out
//!    arrives exactly once in the correct peer's correct radix
//!    partition, regardless of tail-drops, loss, corruption, reordering
//!    or duplication on the way. ([`run_shuffle`] panics on any
//!    violation: the receive regions have *exact* capacity, so a
//!    duplicated or misrouted value overflows its partition; a lost one
//!    leaves the kernel's value count short; a corrupted one breaks the
//!    sorted-multiset comparison.)
//! 2. **Determinism**: re-running the same spec reproduces the full
//!    outcome — including the telemetry trace fingerprint — bit for
//!    bit.
//!
//! Seeds are pinned, so CI explores the same corpus every run and any
//! failure names the seed that reproduces it locally.

use strom_nic::cluster_shuffle::{expected_partitions, run_shuffle, ShuffleSpec};
use strom_nic::{chaos_model, SwitchParams};
use strom_sim::time::NANOS;
use strom_sim::{default_workers, parallel_map, Bandwidth, EcnConfig, SimRng};

/// Draws one arbitrary cluster spec from a case seed. Every dimension —
/// geometry, load, switch shape, fault mix — derives from the seed, so
/// the corpus is stable across runs and machines.
fn arbitrary_spec(case_seed: u64) -> ShuffleSpec {
    // Domain-separate the generator from the simulation RNG (which runs
    // on `case_seed` itself inside the testbed).
    let mut rng = SimRng::seed(case_seed ^ 0xA1B_17EA5);
    let nodes = rng.range(2, 9) as usize;
    let values_per_node = rng.range(48, 400) as usize;
    let mut spec = ShuffleSpec::new(nodes, values_per_node, case_seed);
    spec.local_partitions = 1 << rng.range(2, 6); // 4..=32 partitions.
                                                  // Half the corpus runs DCQCN congestion control against an
                                                  // ECN-marking switch, so the cumulative-ack watermark and the
                                                  // stale-retransmit guard are exercised *while* CNPs are reshaping
                                                  // per-QP transmit pacing mid-flight (and, under the fault mixes
                                                  // below, interleaved with reordering and duplication).
    spec.cc = rng.chance(0.5);
    spec.switch = SwitchParams {
        // Half the corpus bottlenecks the egress ports below link rate.
        port_rate: if rng.chance(0.5) {
            None
        } else {
            Some(Bandwidth::gbit_per_sec(5.0))
        },
        latency: rng.range(0, 1_000) * NANOS,
        egress_capacity: [32, 64, 256][rng.below(3) as usize],
        ecn: spec.cc.then(|| {
            let min = rng.range(4, 24);
            let max = min + rng.range(0, 32);
            EcnConfig {
                min_threshold: min as usize,
                max_threshold: max as usize,
                max_mark_prob: 0.25 + 0.75 * rng.unit(),
                seed: case_seed ^ 0xECF,
            }
        }),
    };
    if rng.chance(0.6) {
        // The chaos generator guarantees at least two active fault types.
        spec.fault = chaos_model(case_seed);
    }
    spec.trace_capacity = Some(1 << 15);
    spec
}

/// Exactly-once delivery for the whole corpus: arbitrary N, payload
/// sizes, and fault mixes. The byte-level assertions live inside
/// [`run_shuffle`]; this test additionally checks that each case moved
/// real traffic, so a degenerate generator cannot pass vacuously.
#[test]
fn arbitrary_clusters_shuffle_exactly_once() {
    let outcomes = parallel_map(
        (0..12u64).map(|i| 0x9E37_0000 + i).collect(),
        default_workers(),
        |seed| {
            let spec = arbitrary_spec(seed);
            let expected_bytes: u64 = expected_partitions(&spec)
                .values()
                .map(|v| 8 * v.len() as u64)
                .sum();
            let outcome = run_shuffle(&spec);
            assert_eq!(
                outcome.bytes_shuffled, expected_bytes,
                "case {seed:#x}: outgoing bytes disagree with the expected-partition model"
            );
            assert!(
                outcome.bytes_shuffled > 0,
                "case {seed:#x}: vacuous case, nothing crossed the switch"
            );
            (spec, outcome)
        },
    );
    // The corpus must actually exercise the recovery machinery: at least
    // one faulty case has to have retransmitted or tail-dropped.
    let recovered: u64 = outcomes
        .iter()
        .map(|(_, o)| o.retransmissions + o.tail_drops)
        .sum();
    assert!(
        recovered > 0,
        "no case in the corpus stressed retransmission — generator too tame"
    );
}

/// Same-seed reruns are bit-identical: the whole outcome (throughput,
/// latency quantile, drop/retransmission counts, and the telemetry
/// trace fingerprint) reproduces exactly.
#[test]
fn same_seed_reruns_reproduce_the_telemetry_fingerprint() {
    parallel_map(
        (0..4u64).map(|i| 0xF1D0_0000 + i).collect(),
        default_workers(),
        |seed| {
            let spec = arbitrary_spec(seed);
            let a = run_shuffle(&spec);
            let b = run_shuffle(&spec);
            assert!(
                a.fingerprint.is_some(),
                "case {seed:#x}: tracing was enabled, fingerprint must exist"
            );
            assert_eq!(a, b, "case {seed:#x}: rerun diverged");
        },
    );
}
