//! Certifies the conservative-PDES premise on the *real* cluster
//! testbed: under the per-node/switch partition split, every
//! cross-partition event is scheduled at least one cable propagation
//! delay (the engine's lookahead) in the future — and measuring that is
//! pure observation, changing nothing about the run.

use strom_nic::{ClusterTestbed, NicConfig, SwitchParams, WorkRequest};

/// A 4-node ring workload over the switch: every node writes to its
/// neighbour, node 0 also reads back — WRITEs, READs, read responses,
/// ACKs, and (with `cc`) pacer ticks and CNPs all cross the fabric.
fn ring_exchange(cc: bool, audit: bool) -> (Vec<u8>, Option<strom_nic::LookaheadReport>) {
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = 0xA0D17;
    cfg.cc = cc;
    let mut tb = ClusterTestbed::switched(cfg, 4, SwitchParams::default());
    if audit {
        tb.enable_lookahead_audit();
    }
    tb.enable_capture();
    for i in 0..4usize {
        tb.connect_qp_between(i, (i + 1) % 4, (i + 1) as u32);
    }
    let data: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    let mut bufs = Vec::new();
    for i in 0..4usize {
        let local = tb.pin(i, 1 << 16);
        tb.mem(i).write(local, &data);
        bufs.push(local);
    }
    tb.bring_up();
    let mut handles = Vec::new();
    for i in 0..4usize {
        let dst = (i + 1) % 4;
        let h = tb.post(
            i,
            (i + 1) as u32,
            WorkRequest::Write {
                remote_vaddr: bufs[dst] + 4096,
                local_vaddr: bufs[i],
                len: 2048,
            },
        );
        handles.push((i, h));
    }
    for (node, h) in handles {
        tb.run_until_complete(node, h);
    }
    let r = tb.post(
        0,
        1,
        WorkRequest::Read {
            remote_vaddr: bufs[1] + 4096,
            local_vaddr: bufs[0] + 16384,
            len: 2048,
        },
    );
    tb.run_until_complete(0, r);
    tb.run_until_idle();
    let pcap = tb.pcap_bytes().expect("capture enabled").to_vec();
    (pcap, tb.lookahead_report())
}

#[test]
fn audit_is_observation_only() {
    for cc in [false, true] {
        let (plain, none) = ring_exchange(cc, false);
        let (audited, report) = ring_exchange(cc, true);
        assert!(none.is_none(), "report without enabling the audit");
        assert!(report.is_some(), "audit enabled but no report");
        assert_eq!(
            plain, audited,
            "cc={cc}: enabling the lookahead audit changed the packet stream"
        );
    }
}

#[test]
fn switched_cluster_satisfies_the_conservative_premise() {
    for cc in [false, true] {
        let (_, report) = ring_exchange(cc, true);
        let r = report.expect("audit enabled");
        assert!(
            r.cross_events > 0,
            "cc={cc}: a switched all-pairs exchange must cross partitions"
        );
        assert_eq!(
            r.violations, 0,
            "cc={cc}: {} cross events were scheduled closer than the {}ps lookahead floor \
             (min observed {}ps) — the conservative window premise does not hold",
            r.violations, r.floor, r.min_cross_delta
        );
        assert!(
            r.min_cross_delta >= r.floor,
            "cc={cc}: min cross delta {} below floor {}",
            r.min_cross_delta,
            r.floor
        );
    }
}
