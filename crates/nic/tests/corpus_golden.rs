//! The corpus gate machinery, exercised end to end on a cheap subset of
//! the default corpus: pinned fingerprints match across reruns, a
//! perturbed seed or tightened floor demonstrably *fails* the gate, and
//! the report JSON round-trips its specs.
//!
//! The full 18-case matrix runs in CI via `figures corpus`; this test
//! keeps `cargo test` fast by re-checking only the light families
//! (chaos soak, KV serve, kernel chains) against the same golden file.
//! Bless flow (after an intentional behaviour change):
//!
//! ```text
//! STROM_BLESS=1 cargo run --release -p strom-bench --bin figures -- corpus
//! ```

use strom_nic::corpus::{default_corpus, golden_fingerprints, run_corpus_cases, CorpusScale};
use strom_nic::{CorpusCase, PerfGate, ScenarioSpec};

/// The light slice of the default corpus (still both platforms).
fn light_cases() -> Vec<CorpusCase> {
    default_corpus()
        .into_iter()
        .filter(|c| {
            matches!(
                c.spec.name.as_str(),
                "chaos-soak" | "kv-serve" | "chain-filter-agg-hll" | "chain-crcverify-shuffle"
            )
        })
        .collect()
}

/// Every light case reproduces its blessed quick-scale fingerprint and
/// holds its gates. (If this fails after an intentional change,
/// re-bless — see the module docs.)
#[test]
fn light_corpus_cases_match_blessed_fingerprints() {
    let cases = light_cases();
    assert_eq!(cases.len(), 8, "4 light families x 2 platforms");
    if std::env::var_os("STROM_BLESS").is_some() {
        run_corpus_cases(&cases, CorpusScale::Quick)
            .bless()
            .expect("write corpus goldens");
        return;
    }
    let report = run_corpus_cases(&cases, CorpusScale::Quick);
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "corpus gate failed:\n  {}",
        failures.join("\n  ")
    );
}

/// The acceptance demonstration: a perturbed seed produces a different
/// fingerprint, so the same golden that passes above now *fails* the
/// gate — drift cannot slip through.
#[test]
fn perturbed_seed_fails_the_fingerprint_gate() {
    let mut cases: Vec<CorpusCase> = light_cases()
        .into_iter()
        .filter(|c| c.spec.name == "kv-serve")
        .collect();
    assert_eq!(cases.len(), 2);
    for c in &mut cases {
        c.spec.seed ^= 1;
    }
    let report = run_corpus_cases(&cases, CorpusScale::Quick);
    let failures = report.failures();
    assert_eq!(
        failures.len(),
        2,
        "both platforms must report drift: {failures:?}"
    );
    for f in &failures {
        assert!(f.contains("fingerprint drift"), "unexpected failure: {f}");
    }
    assert!(!report.pass());
}

/// A tightened floor fails the perf gate even when the fingerprint
/// still matches — the two contracts are independent.
#[test]
fn impossible_floor_fails_the_perf_gate() {
    let mut cases: Vec<CorpusCase> = light_cases()
        .into_iter()
        .filter(|c| c.spec.name == "chain-filter-agg-hll")
        .collect();
    for c in &mut cases {
        c.gates.push(PerfGate::at_least("gib_per_sec", 1e6));
    }
    let report = run_corpus_cases(&cases, CorpusScale::Quick);
    for case in &report.cases {
        assert!(
            case.fingerprint_ok(),
            "{}: fingerprint must still match its golden",
            case.id()
        );
        assert!(!case.pass(), "{}: the 1e6 GiB/s floor must fail", case.id());
    }
    assert!(report
        .failures()
        .iter()
        .all(|f| f.contains("gate gib_per_sec")));
}

/// An unpinned case (an id missing from the golden file) is a failure,
/// not a silent pass: new scenarios must be blessed before they gate.
#[test]
fn unpinned_case_fails_loudly() {
    let mut cases: Vec<CorpusCase> = light_cases()
        .into_iter()
        .filter(|c| c.spec.name == "chaos-soak")
        .take(1)
        .collect();
    cases[0].spec.name = "chaos-soak-unpinned".into();
    let report = run_corpus_cases(&cases, CorpusScale::Quick);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("no golden fingerprint pinned"));
}

/// The specs embedded in the report JSON parse back to the cases that
/// ran — a failing case is reproducible from `CORPUS.json` alone.
#[test]
fn report_json_specs_round_trip() {
    let cases: Vec<CorpusCase> = light_cases()
        .into_iter()
        .filter(|c| c.spec.name == "kv-serve")
        .collect();
    let report = run_corpus_cases(&cases, CorpusScale::Quick);
    let json = report.to_json();
    let doc = strom_nic::corpus::JsonValue::parse(&json).expect("report JSON parses");
    let parsed = match doc.get("cases") {
        Some(strom_nic::corpus::JsonValue::Arr(items)) => items,
        other => panic!("cases must be an array, got {other:?}"),
    };
    assert_eq!(parsed.len(), cases.len());
    for (case, item) in cases.iter().zip(parsed) {
        let spec_value = item.get("spec").expect("case has a spec");
        let spec = ScenarioSpec::from_value(spec_value).expect("embedded spec parses");
        spec.validate().expect("embedded spec validates");
        assert_eq!(spec, case.spec);
    }
    assert_eq!(
        doc.get("schema"),
        Some(&strom_nic::corpus::JsonValue::Str("strom-corpus-v1".into()))
    );
}

/// The golden file itself stays in sync with the default corpus: every
/// default case id is pinned at both scales (a case added without
/// blessing shows up here before CI even runs the matrix).
#[test]
fn every_default_case_is_pinned_at_both_scales() {
    let corpus = default_corpus();
    for scale in [CorpusScale::Quick, CorpusScale::Full] {
        let golden = golden_fingerprints(scale);
        for case in &corpus {
            assert!(
                golden.contains_key(&case.spec.id()),
                "{} has no {} golden — bless with STROM_BLESS=1 figures corpus {}",
                case.spec.id(),
                scale.name(),
                if scale == CorpusScale::Full {
                    "--full"
                } else {
                    "--quick"
                },
            );
        }
    }
}
