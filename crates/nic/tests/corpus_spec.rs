//! Seeded property tests for the declarative [`ScenarioSpec`]: every
//! valid spec round-trips through its JSON exactly; malformed and
//! inconsistent documents are rejected with *typed* errors; and the
//! specs the corpus runs are digest-identical across reruns.

use strom_nic::corpus::{ChainKind, ScenarioSpec, SpecError, Workload};
use strom_nic::Platform;
use strom_sim::SimRng;

/// Draws one structurally valid spec from the RNG, spanning every
/// workload family, both platforms, and the full flag lattice (cc only
/// ever paired with ecn, as validation demands).
fn arbitrary_spec(rng: &mut SimRng) -> ScenarioSpec {
    let platform = if rng.chance(0.5) {
        Platform::TenGig
    } else {
        Platform::HundredGig
    };
    let workload = match rng.below(5) {
        0 => Workload::ChaosSoak {
            ops: rng.range(3, 10_000),
        },
        1 => {
            let cc = rng.chance(0.5);
            Workload::Shuffle {
                nodes: rng.range(2, 16) as usize,
                values_per_node: rng.range(1, 1 << 20) as usize,
                lossy: rng.chance(0.5),
                cc,
                ecn: cc || rng.chance(0.5),
            }
        }
        2 => {
            let cc = rng.chance(0.5);
            Workload::Incast {
                senders: rng.range(1, 32) as usize,
                window: rng.range(1, 64) as usize,
                reads: rng.chance(0.5),
                cc,
                ecn: cc || rng.chance(0.5),
            }
        }
        3 => Workload::KvServe {
            servers: rng.range(1, 8) as usize,
            clients: rng.range(1, 8) as usize,
            mean_gap_ns: rng.range(1, 1_000_000),
            requests: rng.range(1, 100_000) as usize,
        },
        _ => Workload::KernelChain {
            chain: if rng.chance(0.5) {
                ChainKind::FilterAggHll
            } else {
                ChainKind::CrcVerifyShuffle
            },
            tuples: rng.range(1, 1 << 22) as usize,
        },
    };
    let name: String = (0..rng.range(1, 24))
        .map(|_| {
            let c = rng.below(37);
            match c {
                0..=25 => (b'a' + c as u8) as char,
                26..=35 => (b'0' + (c - 26) as u8) as char,
                _ => '-',
            }
        })
        .collect();
    ScenarioSpec {
        name,
        platform,
        seed: rng.next_u64(),
        workload,
    }
}

/// 300 random valid specs all validate and survive
/// `to_json → from_json` bit-exactly (u64 seeds included — they travel
/// as hex strings precisely because JSON numbers are f64).
#[test]
fn random_valid_specs_round_trip_through_json() {
    let mut rng = SimRng::seed(0x5EC5_FD21);
    for i in 0..300 {
        let spec = arbitrary_spec(&mut rng);
        spec.validate()
            .unwrap_or_else(|e| panic!("draw {i}: {spec:?} must validate: {e}"));
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("draw {i}: {json} must parse: {e}"));
        assert_eq!(spec, back, "draw {i}: round trip changed the spec");
    }
}

#[test]
fn unknown_names_are_rejected_with_typed_errors() {
    let base = r#"{"name":"x","platform":"10g","seed":"0x1",
                   "workload":{"family":"chaos-soak","ops":5}}"#;
    assert!(ScenarioSpec::from_json(base).is_ok());

    let bad_family = base.replace("chaos-soak", "warp-drive");
    assert_eq!(
        ScenarioSpec::from_json(&bad_family),
        Err(SpecError::UnknownScenario("warp-drive".into()))
    );

    let bad_platform = base.replace("10g", "400g");
    assert_eq!(
        ScenarioSpec::from_json(&bad_platform),
        Err(SpecError::UnknownPlatform("400g".into()))
    );

    let bad_chain = r#"{"name":"x","platform":"10g","seed":"0x1",
        "workload":{"family":"kernel-chain","chain":"sort-merge","tuples":10}}"#;
    assert_eq!(
        ScenarioSpec::from_json(bad_chain),
        Err(SpecError::UnknownChain("sort-merge".into()))
    );
}

#[test]
fn inconsistent_and_misshapen_specs_are_rejected() {
    // DCQCN without ECN marking: typed as Inconsistent, not a shape
    // error — every field is individually in range.
    let cc_no_ecn = r#"{"name":"x","platform":"100g","seed":"0x2","workload":
        {"family":"incast","senders":4,"window":2,"reads":false,"cc":true,"ecn":false}}"#;
    assert!(matches!(
        ScenarioSpec::from_json(cc_no_ecn),
        Err(SpecError::Inconsistent(_))
    ));

    let zero_nodes = r#"{"name":"x","platform":"10g","seed":"0x2","workload":
        {"family":"shuffle","nodes":1,"values_per_node":5,"lossy":false,"cc":false,"ecn":false}}"#;
    assert!(matches!(
        ScenarioSpec::from_json(zero_nodes),
        Err(SpecError::InvalidShape(_))
    ));

    let bad_name = r#"{"name":"Bad Name!","platform":"10g","seed":"0x1",
                       "workload":{"family":"chaos-soak","ops":5}}"#;
    assert!(matches!(
        ScenarioSpec::from_json(bad_name),
        Err(SpecError::BadName(_))
    ));

    // JSON-level damage is Malformed: truncation, a float seed, a
    // missing field.
    for doc in [
        r#"{"name":"x","platform":"10g""#,
        r#"{"name":"x","platform":"10g","seed":17,"workload":{"family":"chaos-soak","ops":5}}"#,
        r#"{"name":"x","platform":"10g","seed":"0x1","workload":{"family":"chaos-soak"}}"#,
        r#"{"name":"x","platform":"10g","seed":"0x1","workload":
            {"family":"chaos-soak","ops":5.5}}"#,
    ] {
        assert!(
            matches!(ScenarioSpec::from_json(doc), Err(SpecError::Malformed(_))),
            "{doc} must be Malformed"
        );
    }
}

/// Small random specs re-run digest-identically — the determinism
/// contract the golden fingerprints pin. Shapes are clamped small so
/// the property stays cheap.
#[test]
fn random_specs_rerun_digest_identically() {
    let mut rng = SimRng::seed(0x00D1_6E57);
    let mut checked = 0;
    while checked < 3 {
        let mut spec = arbitrary_spec(&mut rng);
        // Clamp to a quick shape, preserving the drawn flags/platform.
        spec.workload = match spec.workload {
            Workload::ChaosSoak { .. } => Workload::ChaosSoak { ops: 5 },
            Workload::Shuffle { lossy, cc, ecn, .. } => Workload::Shuffle {
                nodes: 3,
                values_per_node: 500,
                lossy,
                cc,
                ecn,
            },
            Workload::Incast { reads, cc, ecn, .. } => Workload::Incast {
                senders: 3,
                window: 2,
                reads,
                cc,
                ecn,
            },
            Workload::KvServe { .. } => Workload::KvServe {
                servers: 2,
                clients: 1,
                mean_gap_ns: 4_000,
                requests: 50,
            },
            Workload::KernelChain { chain, .. } => Workload::KernelChain {
                chain,
                tuples: 2_000,
            },
        };
        let first = spec.run().expect("clamped spec is valid");
        let second = spec.run().expect("clamped spec is valid");
        assert_eq!(
            first.fingerprint, second.fingerprint,
            "{spec:?} is not reproducible"
        );
        assert_eq!(first.perf, second.perf, "{spec:?} perf drifted");
        checked += 1;
    }
}
