//! API-level tests of the testbed's host-facing semantics: watches,
//! command pacing, time advancement, and configuration invariants.

use strom_nic::{NicConfig, Testbed, WorkRequest};

const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb
}

#[test]
fn watch_fires_only_when_fully_covered() {
    let mut tb = testbed();
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, &[7u8; 512]);
    // Watch 512 bytes; deliver two half-writes.
    let watch = tb.add_watch(1, dst, 512);
    let h = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: 256,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    assert!(
        tb.watch_fired(watch).is_none(),
        "half-covered watch must not fire"
    );
    tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst + 256,
            local_vaddr: src,
            len: 256,
        },
    );
    let t = tb.run_until_watch(watch);
    assert!(t > 0);
    tb.run_until_idle();
}

#[test]
fn watch_ignores_writes_outside_its_range() {
    let mut tb = testbed();
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, &[1u8; 4096]);
    let watch = tb.add_watch(1, dst, 64);
    // A large write that does NOT overlap the watched range.
    let h = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst + 1024,
            local_vaddr: src,
            len: 4096,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    assert!(tb.watch_fired(watch).is_none());
}

#[test]
fn advance_moves_the_clock_without_events() {
    let mut tb = testbed();
    let t0 = tb.now();
    tb.advance(5_000_000); // 5 µs of CPU work.
    assert_eq!(tb.now(), t0 + 5_000_000);
}

#[test]
fn command_pacing_enforces_issue_interval() {
    // Posting N commands back-to-back cannot complete faster than the
    // AVX2-store issue interval allows (§7.1).
    let mut tb = testbed();
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, &[1u8; 64]);
    let interval = tb.config().pcie.cmd_issue_interval;
    let n = 100u64;
    let mut last = 0;
    for _ in 0..n {
        last = tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 64,
            },
        );
    }
    let t = tb.run_until_complete(0, last);
    assert!(
        t >= (n - 1) * interval,
        "{n} commands in {t} ps beats the issue interval"
    );
    tb.run_until_idle();
}

#[test]
fn completions_report_simulated_times_in_order() {
    let mut tb = testbed();
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, &[2u8; 1024]);
    let h1 = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: 1024,
        },
    );
    let h2 = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: 1024,
        },
    );
    tb.run_until_complete(0, h2);
    tb.run_until_idle();
    let t1 = tb.completed_at(0, h1).unwrap();
    let t2 = tb.completed_at(0, h2).unwrap();
    assert!(t1 < t2, "same-QP writes complete in order");
}

#[test]
fn ten_and_hundred_gig_share_the_protocol() {
    for cfg in [NicConfig::ten_gig(), NicConfig::hundred_gig()] {
        let mut tb = Testbed::new(cfg);
        tb.connect_qp(QP);
        let src = tb.pin(0, 1 << 20);
        let dst = tb.pin(1, 1 << 20);
        tb.mem(0).write(src, b"config check");
        let watch = tb.add_watch(1, dst, 12);
        tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 12,
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(tb.mem(1).read(dst, 12), b"config check");
        tb.run_until_idle();
    }
}

#[test]
#[should_panic(expected = "idle before watch")]
fn waiting_for_an_impossible_watch_panics() {
    let mut tb = testbed();
    tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    let watch = tb.add_watch(1, dst, 64);
    // Nothing was posted: the queue drains immediately.
    tb.run_until_watch(watch);
}

#[test]
fn local_rpc_does_not_touch_the_wire() {
    use strom_kernels::hll_kernel::HllKernel;
    use strom_nic::RpcOpCode;

    let mut tb = testbed();
    tb.pin(0, 1 << 20);
    let peer_buf = tb.pin(1, 1 << 20);
    tb.deploy_kernel(0, Box::new(HllKernel::new()));
    // A snapshot RPC to the local kernel: its RoceSend goes out over the
    // network to the peer, but the invocation itself does not.
    let frames_before = tb.status(1).frames_rx;
    tb.post_local_rpc(
        0,
        QP,
        RpcOpCode::HLL,
        strom_kernels::hll_kernel::HllParams {
            target_address: peer_buf,
        }
        .encode(),
    );
    // The HLL kernel responds with a snapshot WRITE toward the peer...
    tb.run_until_idle();
    // ...so exactly that one message (plus its ACK back) crossed the wire;
    // the invocation itself added nothing else.
    let frames_after = tb.status(1).frames_rx;
    assert!(frames_after > frames_before);
    assert_eq!(tb.fabric(0).completed(), 1);
}
