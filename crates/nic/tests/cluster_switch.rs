//! The switched cluster datapath: bounded egress queues, per-port
//! counters, and the degenerate cases that tie the N-node geometry back
//! to the original two-host testbed.
//!
//! Two anchors keep the refactor honest:
//!
//! * [`ClusterTestbed::transparent_pair`] IS the old point-to-point
//!   path — same timing, same RNG draws — and reproduces the checked-in
//!   pcap golden fixture bit-for-bit.
//! * A degenerate switch (zero latency, zero propagation, a practically
//!   infinite egress rate, deep queues) forwards the *same frames in
//!   the same order* as point-to-point; only the egress serialization
//!   quantum (≥ 1 ps per frame, by the store-and-forward model) can
//!   shift timestamps, and the test bounds that skew.

use bytes::Bytes;

use strom_nic::{ClusterTestbed, NicConfig, SwitchParams, Testbed, WorkRequest};
use strom_sim::time::{MICROS, NANOS};
use strom_sim::{Bandwidth, EcnConfig, SimRng};
use strom_telemetry::{DropReason, TraceEvent};
use strom_wire::{packet::Packet, pcap};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/short_exchange.pcap"
);

/// The canonical short exchange from the root pcap golden test, run on
/// any cluster geometry.
fn short_exchange(mut tb: ClusterTestbed) -> (Vec<u8>, Vec<u8>) {
    tb.connect_qp(1);
    tb.enable_capture();
    let local = tb.pin(0, 1 << 21);
    let remote = tb.pin(1, 1 << 21);
    let data: Vec<u8> = (0..512u32).map(|i| (i % 253) as u8).collect();
    tb.mem(0).write(local, &data[..256]);
    tb.mem(1).write(remote + 1024, &data);
    let w = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: remote,
            local_vaddr: local,
            len: 256,
        },
    );
    tb.run_until_complete(0, w);
    let r = tb.post(
        0,
        1,
        WorkRequest::Read {
            remote_vaddr: remote + 1024,
            local_vaddr: local + 1024,
            len: 512,
        },
    );
    tb.run_until_complete(0, r);
    tb.run_until_idle();
    let pcap = tb.pcap_bytes().expect("capture enabled").to_vec();
    let memory = tb.mem(1).read(remote, 256);
    (pcap, memory)
}

/// The N=2 transparent pair is byte-for-byte the pre-cluster testbed:
/// it reproduces the checked-in golden fixture captured before the
/// switch existed.
#[test]
fn transparent_pair_reproduces_the_pcap_golden_fixture() {
    let (got, _) = short_exchange(ClusterTestbed::transparent_pair(NicConfig::ten_gig()));
    let want = std::fs::read(GOLDEN).expect("golden fixture present");
    assert_eq!(
        got, want,
        "ClusterTestbed::transparent_pair diverged from the two-host golden capture"
    );
    // And the wrapper really is a thin alias of it.
    let (via_wrapper, _) = short_exchange(Testbed::new(NicConfig::ten_gig()).into_cluster());
    assert_eq!(via_wrapper, want);
}

/// A degenerate switch forwards the same frames, in the same order,
/// with the same bytes as point-to-point; timestamps may differ only by
/// the per-frame egress quantum.
#[test]
fn degenerate_switch_matches_point_to_point_frame_for_frame() {
    let mut cfg = NicConfig::ten_gig();
    cfg.propagation = 0; // One cable hop vs two: remove both.
    let degenerate = SwitchParams {
        port_rate: Some(Bandwidth::gbit_per_sec(1e6)),
        latency: 0,
        egress_capacity: usize::MAX,
        ecn: None,
    };
    let (flat_pcap, flat_mem) = short_exchange(ClusterTestbed::transparent_pair(cfg));
    let (sw_pcap, sw_mem) = short_exchange(ClusterTestbed::switched(cfg, 2, degenerate));

    assert_eq!(flat_mem, sw_mem, "final memory must be identical");
    let flat = pcap::read_frames(&flat_pcap).expect("valid pcap");
    let sw = pcap::read_frames(&sw_pcap).expect("valid pcap");
    assert_eq!(flat.len(), sw.len(), "same number of frames on the wire");
    for (i, ((t_flat, f_flat), (t_sw, f_sw))) in flat.iter().zip(&sw).enumerate() {
        assert_eq!(f_flat, f_sw, "frame {i} bytes diverged through the switch");
        let skew = t_sw.abs_diff(*t_flat);
        // The whole exchange is a handful of protocol turnarounds; each
        // adds at most the egress quantum (~13 ps/frame at 10^6 Gbit/s),
        // so cumulative skew stays far below a nanosecond.
        assert!(skew < 1000, "frame {i} timestamp skew {skew} ps");
    }
}

/// Drives one 10G sender into a 2.5G egress port with a shallow queue:
/// the switch must tail-drop, count the drops per port, trace them, and
/// the retransmission machinery must still deliver every byte.
fn congested_write(egress_capacity: usize) -> (ClusterTestbed, u64) {
    let mut tb = ClusterTestbed::switched(
        NicConfig::ten_gig(),
        2,
        SwitchParams {
            port_rate: Some(Bandwidth::gbit_per_sec(2.5)),
            latency: 500 * NANOS,
            egress_capacity,
            ecn: None,
        },
    );
    tb.enable_tracing(1 << 14);
    tb.connect_qp(1);
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    let mut data = vec![0u8; 96 << 10];
    SimRng::seed(0xCAFE).fill_bytes(&mut data);
    tb.mem(0).write(src, &data);
    let h = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    assert_eq!(
        tb.completion_status(0, h),
        Some(strom_nic::CompletionStatus::Success),
        "retransmission must recover tail-drops (capacity {egress_capacity})"
    );
    assert!(
        !tb.qp_errored(0, 1),
        "drops must not exhaust the retry budget"
    );
    assert_eq!(
        tb.mem(1).read(dst, data.len()),
        data,
        "every byte must arrive despite tail-drops"
    );
    let drops = tb.switch_tail_drops();
    (tb, drops)
}

#[test]
fn tail_drops_are_counted_traced_and_recovered() {
    let (tb, drops) = congested_write(8);
    assert!(
        drops > 0,
        "a shallow queue behind a 4x rate mismatch must drop"
    );

    // Per-port counters: every drop happened on node 1's egress port.
    let p1 = tb.switch_counters(1).expect("switched mode");
    assert_eq!(p1.tail_drops, drops);
    assert!(p1.frames_out > 0, "granted frames are counted too");
    assert!(p1.bytes_out > 0);
    let p0 = tb.switch_counters(0).expect("switched mode");
    assert_eq!(p0.tail_drops, 0, "no reverse-direction congestion");
    assert!(p0.frames_out > 0, "ACKs flow back through port 0");

    // The same numbers surface in the metrics registry...
    let snap = tb.metrics().snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("switch.port1.tail_drops"), drops);
    assert_eq!(counter("switch.port1.frames_out"), p1.frames_out);
    assert_eq!(counter("switch.port0.tail_drops"), 0);

    // ...and every drop was emitted as a structured trace event naming
    // the congested destination.
    let traced_drops = tb
        .trace()
        .records()
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::PacketDrop {
                    node: 1,
                    reason: DropReason::TailDrop,
                }
            )
        })
        .count() as u64;
    assert_eq!(traced_drops, drops, "each tail-drop is traced exactly once");
    assert!(
        tb.retransmissions(0) > 0,
        "recovery happened via retransmission"
    );
}

/// A deep enough queue absorbs the same burst without dropping — the
/// bound, not the switch itself, is what tail-drops. (Retransmissions
/// may still fire spuriously: ~330 µs of queueing delay at 2.5 Gbit/s
/// exceeds the 100 µs retransmit timeout. They are harmless duplicates;
/// what matters is that nothing was lost.)
#[test]
fn deep_egress_queue_never_drops() {
    let (tb, drops) = congested_write(4096);
    let _ = &tb;
    assert_eq!(drops, 0, "an effectively unbounded queue must not drop");
}

/// The same congested write as [`congested_write`], but with an
/// ECN-marking switch and DCQCN enabled: marks flow, CNPs echo back,
/// the sender's pacing drains the queue, and a buffer that tail-dropped
/// without CC no longer drops at all.
#[test]
fn ecn_plus_dcqcn_replaces_tail_drops_with_marks() {
    let run = |cc: bool, ecn: Option<EcnConfig>| {
        let mut cfg = NicConfig::ten_gig();
        cfg.cc = cc;
        // Pacing stretches the transfer past the default 100 µs timeout;
        // keep retransmissions out of the picture so the comparison
        // isolates the congestion machinery.
        cfg.retransmit_timeout = 1_000 * MICROS;
        let mut tb = ClusterTestbed::switched(
            cfg,
            2,
            SwitchParams {
                port_rate: Some(Bandwidth::gbit_per_sec(2.5)),
                latency: 500 * NANOS,
                egress_capacity: 96,
                ecn,
            },
        );
        tb.connect_qp(1);
        let src = tb.pin(0, 1 << 20);
        let dst = tb.pin(1, 1 << 20);
        let mut data = vec![0u8; 256 << 10];
        SimRng::seed(0xCAFE).fill_bytes(&mut data);
        tb.mem(0).write(src, &data);
        let h = tb.post(
            0,
            1,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: data.len() as u32,
            },
        );
        tb.run_until_complete(0, h);
        tb.run_until_idle();
        assert_eq!(
            tb.completion_status(0, h),
            Some(strom_nic::CompletionStatus::Success)
        );
        assert_eq!(tb.mem(1).read(dst, data.len()), data);
        tb
    };

    // Marking early (an eighth of the buffer) buys headroom for the
    // feedback delay: a CE mark decided at enqueue still rides the
    // egress queue before the responder can echo it, so the queue keeps
    // growing at full rate for one queue-drain time after the first
    // mark. DCQCN deployments mark low for exactly this reason.
    let without = run(false, None);
    let with = run(true, Some(EcnConfig::step(8)));

    assert!(
        without.switch_tail_drops() > 0,
        "the 4x rate mismatch must overflow a 96-deep queue without CC"
    );
    let marked = with.switch_counters(1).expect("switched").ecn_marked;
    assert!(marked > 0, "the queue must cross the marking threshold");
    assert_eq!(
        with.status(1).wire.cnps_tx,
        with.status(0).wire.cnps_rx,
        "every CNP the responder sends arrives at the requester"
    );
    assert!(with.status(0).wire.cnps_rx > 0, "marks must echo as CNPs");
    assert_eq!(
        with.switch_tail_drops(),
        0,
        "DCQCN pacing must hold the queue below the 96-frame bound"
    );
    assert_eq!(with.retransmissions(0), 0, "nothing lost, nothing resent");
}

/// With CC off (the default), runs are bit-identical to the pre-CC
/// stack even though the ECN/CNP/DCQCN code is compiled in: packets go
/// out Not-ECT, a marking-enabled switch refuses to mark them, and the
/// capture matches the run with no marker configured byte for byte.
#[test]
fn cc_disabled_is_bit_identical_even_under_an_ecn_switch() {
    assert!(!NicConfig::ten_gig().cc, "CC must be opt-in");
    let params = |ecn| SwitchParams {
        port_rate: Some(Bandwidth::gbit_per_sec(2.5)),
        latency: 500 * NANOS,
        egress_capacity: 64,
        ecn,
    };
    let cfg = NicConfig::ten_gig();
    let (plain_pcap, plain_mem) = short_exchange(ClusterTestbed::switched(cfg, 2, params(None)));
    let (ecn_pcap, ecn_mem) = short_exchange(ClusterTestbed::switched(
        cfg,
        2,
        params(Some(EcnConfig::step(4))),
    ));
    assert_eq!(plain_pcap, ecn_pcap, "Not-ECT traffic must never be marked");
    assert_eq!(plain_mem, ecn_mem);
}

/// Every frame captured on a switched run still parses and re-encodes
/// to itself — the switch moves frames, it does not rewrite them.
#[test]
fn switched_capture_round_trips() {
    let mut tb = ClusterTestbed::switched(NicConfig::ten_gig(), 2, SwitchParams::default());
    tb.connect_qp(1);
    tb.enable_capture();
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    tb.mem(0).write(src, &data);
    let h = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    let frames = pcap::read_frames(tb.pcap_bytes().expect("capture on")).expect("valid pcap");
    assert!(frames.len() >= 4, "segments + ACKs expected");
    for (_, frame) in &frames {
        let pkt = Packet::parse(&Bytes::from(frame.clone())).expect("captured frame parses");
        assert_eq!(&pkt.encode(), frame);
    }
}
