//! The all-to-all distributed shuffle over a switched cluster.
//!
//! §6.4 evaluates the shuffle kernel between two directly connected
//! NICs; this module scales the experiment out: every node of an N-node
//! [`ClusterTestbed`](crate::ClusterTestbed) hash-partitions its local
//! table by *destination node* and streams each bucket to the owning
//! peer as an RDMA RPC WRITE through that peer's on-NIC
//! [`ShuffleKernel`], which radix-partitions the incoming values into
//! host memory on the fly. All N·(N−1) flows cross the same
//! store-and-forward switch concurrently, so the experiment exercises
//! egress contention, round-robin arbitration, and (under a fault
//! model) retransmission through the switch.
//!
//! The driver is deterministic: node tables, the destination hash, and
//! every timing decision derive from the configured seed, so a rerun
//! with the same [`ShuffleSpec`] reproduces byte-identical partitions
//! and an identical telemetry fingerprint.

use std::collections::BTreeMap;

use strom_kernels::radix::{radix_bits, radix_partition};
use strom_kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom_proto::{CompletionStatus, WorkRequest};
use strom_sim::time::TimeDelta;
use strom_sim::SimRng;
use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::config::Platform;
use crate::event::NodeId;
use crate::fault::LinkFaultModel;
use crate::testbed::{ClusterTestbed, SwitchParams};

/// Event budget for the post-completion quiesce.
const EVENT_BUDGET: u64 = 200_000_000;

/// Everything that determines one shuffle run.
#[derive(Debug, Clone)]
pub struct ShuffleSpec {
    /// Hardware platform (10 G or 100 G datapath).
    pub platform: Platform,
    /// Number of nodes (≥ 2).
    pub nodes: usize,
    /// 8 B values in each node's local table.
    pub values_per_node: usize,
    /// Radix partitions each receiver's kernel maintains (power of two).
    pub local_partitions: u32,
    /// Seed for table contents and all simulation randomness.
    pub seed: u64,
    /// Switch geometry.
    pub switch: SwitchParams,
    /// Global link fault model.
    pub fault: LinkFaultModel,
    /// Per-egress-port overrides: `(dst_node, model)`.
    pub port_faults: Vec<(NodeId, LinkFaultModel)>,
    /// Enables the structured trace ring with this capacity.
    pub trace_capacity: Option<usize>,
    /// Overrides the NIC retransmission timeout (`None` keeps the
    /// platform default). Deep-buffered switch geometries
    /// need this: queueing delay beyond the timeout turns every queued
    /// frame into a spurious retransmission.
    pub retransmit_timeout: Option<TimeDelta>,
    /// Enables DCQCN congestion control on every NIC. Pair with an
    /// ECN-marking switch ([`SwitchParams::ecn`]) — without marking the
    /// flag only stamps packets ECT(0) and no rate control happens.
    pub cc: bool,
}

impl ShuffleSpec {
    /// A fault-free 10 G spec with default switch geometry.
    pub fn new(nodes: usize, values_per_node: usize, seed: u64) -> Self {
        ShuffleSpec {
            platform: Platform::TenGig,
            nodes,
            values_per_node,
            local_partitions: 16,
            seed,
            switch: SwitchParams::default(),
            fault: LinkFaultModel::default(),
            port_faults: Vec::new(),
            trace_capacity: None,
            retransmit_timeout: None,
            cc: false,
        }
    }
}

/// What one shuffle run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleOutcome {
    /// Wall-clock (simulated) time from first posted WRITE to the last
    /// flow's completion. (Not to quiesce: the post-completion drain
    /// contains only disarmed retransmit-check timers, which would
    /// charge up to one idle timeout to the shuffle.)
    pub elapsed_ps: TimeDelta,
    /// Payload bytes that crossed the switch (sum over all flows).
    pub bytes_shuffled: u64,
    /// Aggregate shuffle throughput in GB/s.
    pub aggregate_gbps: f64,
    /// p99 RPC-WRITE completion latency in picoseconds.
    pub p99_rpc_ps: Option<u64>,
    /// Trace fingerprint (`Some` when tracing was enabled).
    pub fingerprint: Option<u64>,
    /// Switch tail-drops over the run.
    pub tail_drops: u64,
    /// Retransmissions summed over all nodes.
    pub retransmissions: u64,
}

/// The QP connecting the unordered node pair `{i, j}`; both directions
/// of a flow share it. Deterministic and collision-free for `i != j`.
pub fn pair_qpn(nodes: usize, i: NodeId, j: NodeId) -> Qpn {
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    (lo * nodes + hi) as Qpn + 1
}

/// The node that owns value `v` in an N-node shuffle. Uses the *upper*
/// half of the value so node routing is independent of the kernel's
/// low-bit radix partitioning.
pub fn dest_node(v: u64, nodes: usize) -> NodeId {
    ((v >> 32) % nodes as u64) as NodeId
}

/// Per-node deterministic source table.
fn node_table(spec: &ShuffleSpec, node: NodeId) -> Vec<u64> {
    let mut rng = SimRng::seed(spec.seed ^ (0x517u64 << 8) ^ node as u64);
    (0..spec.values_per_node).map(|_| rng.next_u64()).collect()
}

/// The expected post-shuffle contents: for each `(receiver, partition)`,
/// the sorted multiset of values every *other* node routes there.
/// (Self-owned values stay local and never cross the wire.)
pub fn expected_partitions(spec: &ShuffleSpec) -> BTreeMap<(NodeId, u32), Vec<u64>> {
    let bits = radix_bits(spec.local_partitions as usize);
    let mut out: BTreeMap<(NodeId, u32), Vec<u64>> = BTreeMap::new();
    for (dst, p) in (0..spec.nodes).flat_map(|d| (0..spec.local_partitions).map(move |p| (d, p))) {
        out.insert((dst, p), Vec::new());
    }
    for src in 0..spec.nodes {
        for v in node_table(spec, src) {
            let dst = dest_node(v, spec.nodes);
            if dst == src {
                continue;
            }
            let p = radix_partition(v, bits) as u32;
            out.get_mut(&(dst, p)).expect("prefilled").push(v);
        }
    }
    for values in out.values_mut() {
        values.sort_unstable();
    }
    out
}

/// Host-memory layout of one node for the shuffle run.
struct NodeLayout {
    /// Per-destination staging buffers: `(addr, encoded bytes)`,
    /// indexed by destination node (empty for self).
    staging: Vec<(u64, Vec<u8>)>,
    /// Histogram address.
    hist_addr: u64,
    /// Per-partition `(base, capacity_bytes)` of the receive regions.
    partitions: Vec<(u64, u32)>,
    /// Values this node's kernel will receive (for the exactly-once
    /// accounting check).
    incoming_values: u64,
}

/// Runs the all-to-all shuffle and verifies byte-exact, exactly-once
/// delivery of every value into the correct peer partition before
/// returning the observables. Panics on any violation.
pub fn run_shuffle(spec: &ShuffleSpec) -> ShuffleOutcome {
    assert!(spec.nodes >= 2, "shuffle needs at least two nodes");
    assert!(
        spec.local_partitions.is_power_of_two(),
        "partition count must be a power of two"
    );
    let n = spec.nodes;
    let expected = expected_partitions(spec);

    let mut cfg = spec.platform.config();
    cfg.seed = spec.seed;
    cfg.fault = spec.fault;
    cfg.cc = spec.cc;
    if let Some(timeout) = spec.retransmit_timeout {
        cfg.retransmit_timeout = timeout;
    }
    let mut tb = ClusterTestbed::switched(cfg, n, spec.switch);
    if let Some(capacity) = spec.trace_capacity {
        tb.enable_tracing(capacity);
    }
    for &(dst, model) in &spec.port_faults {
        tb.set_port_fault_model(dst, model);
    }
    for i in 0..n {
        for j in i + 1..n {
            tb.connect_qp_between(i, j, pair_qpn(n, i, j));
        }
    }

    // Lay out host memory: per-destination staging buffers, then the
    // histogram, then exact-capacity receive regions (so any duplicated
    // or misrouted value would overflow its partition and be counted).
    let mut layouts: Vec<NodeLayout> = Vec::with_capacity(n);
    for node in 0..n {
        let mut staging: Vec<(u64, Vec<u8>)> = vec![(0, Vec::new()); n];
        for v in node_table(spec, node) {
            let dst = dest_node(v, n);
            if dst != node {
                staging[dst].1.extend_from_slice(&v.to_le_bytes());
            }
        }
        let staging_total: usize = staging.iter().map(|(_, b)| b.len()).sum();
        let partitions: Vec<u32> = (0..spec.local_partitions)
            .map(|p| (expected[&(node, p)].len() * 8) as u32)
            .collect();
        let receive_total: usize = partitions.iter().map(|&c| c as usize).sum();
        let hist_len = spec.local_partitions as usize * 16;
        let base = tb.pin(
            node,
            (staging_total + hist_len + receive_total + 4096) as u64,
        );
        let mut cursor = base;
        for (addr, bytes) in &mut staging {
            *addr = cursor;
            cursor += bytes.len() as u64;
        }
        let hist_addr = cursor;
        cursor += hist_len as u64;
        let mut part_regions = Vec::with_capacity(partitions.len());
        for &cap in &partitions {
            part_regions.push((cursor, cap));
            cursor += u64::from(cap);
        }
        layouts.push(NodeLayout {
            staging,
            hist_addr,
            partitions: part_regions,
            incoming_values: (receive_total / 8) as u64,
        });
    }
    tb.bring_up();

    // Configure every receiver's kernel via a local RPC (§5.2), then
    // quiesce so all kernels are Active before any payload arrives.
    for (node, layout) in layouts.iter().enumerate() {
        tb.deploy_kernel(node, Box::new(ShuffleKernel::new()));
        let histogram = encode_histogram(&layout.partitions);
        tb.mem(node).write(layout.hist_addr, &histogram);
        for (addr, bytes) in &layout.staging {
            if !bytes.is_empty() {
                tb.mem(node).write(*addr, bytes);
            }
        }
        tb.post_local_rpc(
            node,
            pair_qpn(n, node, (node + 1) % n),
            RpcOpCode::SHUFFLE,
            ShuffleParams {
                histogram_addr: layout.hist_addr,
                num_partitions: spec.local_partitions,
            }
            .encode(),
        );
    }
    tb.run_until_idle();

    // Post every flow up front: all N·(N−1) RPC WRITEs contend for the
    // switch concurrently.
    let t0 = tb.now();
    let mut handles: Vec<(NodeId, u64, usize)> = Vec::new();
    let mut bytes_shuffled = 0u64;
    for (src, layout) in layouts.iter().enumerate() {
        for (dst, (addr, bytes)) in layout.staging.iter().enumerate() {
            if dst == src || bytes.is_empty() {
                continue;
            }
            let h = tb.post(
                src,
                pair_qpn(n, src, dst),
                WorkRequest::RpcWrite {
                    rpc_op: RpcOpCode::SHUFFLE,
                    local_vaddr: *addr,
                    len: bytes.len() as u32,
                },
            );
            handles.push((src, h, dst));
            bytes_shuffled += bytes.len() as u64;
        }
    }
    for &(src, h, dst) in &handles {
        tb.run_until_complete(src, h);
        assert_eq!(
            tb.completion_status(src, h),
            Some(CompletionStatus::Success),
            "seed {}: shuffle flow {src} -> {dst} failed",
            spec.seed
        );
    }
    let elapsed_ps = tb.now() - t0;
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {}: shuffle failed to quiesce",
        spec.seed
    );

    // Exactly-once verification: every value each node shuffled out is
    // present in the correct peer partition, no value is duplicated
    // (exact-capacity regions make a duplicate overflow), none invented.
    for node in 0..n {
        let layout = &layouts[node];
        let kernel = tb
            .fabric(node)
            .kernel(RpcOpCode::SHUFFLE)
            .expect("deployed above")
            .as_any()
            .downcast_ref::<ShuffleKernel>()
            .expect("shuffle kernel");
        assert_eq!(
            kernel.overflowed(),
            0,
            "seed {}: node {node} kernel overflowed a partition",
            spec.seed
        );
        assert_eq!(
            kernel.values(),
            layout.incoming_values,
            "seed {}: node {node} partitioned a wrong value count",
            spec.seed
        );
        for (p, &(addr, cap)) in layout.partitions.iter().enumerate() {
            let want = &expected[&(node, p as u32)];
            let mut got: Vec<u64> = tb
                .mem(node)
                .read(addr, cap as usize)
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
                .collect();
            got.sort_unstable();
            assert_eq!(
                &got, want,
                "seed {}: node {node} partition {p} content mismatch",
                spec.seed
            );
        }
    }

    let secs = elapsed_ps as f64 * 1e-12;
    let p99_rpc_ps = tb
        .metrics()
        .histogram("latency.rpc_ps")
        .snapshot()
        .quantile(0.99);
    ShuffleOutcome {
        elapsed_ps,
        bytes_shuffled,
        aggregate_gbps: if secs > 0.0 {
            bytes_shuffled as f64 / secs / 1e9
        } else {
            0.0
        },
        p99_rpc_ps,
        fingerprint: spec.trace_capacity.map(|_| tb.trace().fingerprint()),
        tail_drops: tb.switch_tail_drops(),
        retransmissions: (0..n).map(|i| tb.retransmissions(i)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_qpns_are_distinct_and_symmetric() {
        let n = 8;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(pair_qpn(n, i, j), pair_qpn(n, j, i));
                if i < j {
                    assert!(seen.insert(pair_qpn(n, i, j)), "collision at {i},{j}");
                }
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn destination_hash_covers_all_nodes() {
        let spec = ShuffleSpec::new(4, 512, 0xD15C);
        let mut hit = [false; 4];
        for v in node_table(&spec, 0) {
            hit[dest_node(v, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "512 draws must hit all 4 nodes");
    }

    #[test]
    fn expected_partitions_conserve_the_multiset() {
        let spec = ShuffleSpec::new(3, 100, 7);
        let expected = expected_partitions(&spec);
        let total: usize = expected.values().map(Vec::len).sum();
        let kept: usize = (0..3)
            .map(|i| {
                node_table(&spec, i)
                    .iter()
                    .filter(|&&v| dest_node(v, 3) == i)
                    .count()
            })
            .sum();
        assert_eq!(total + kept, 300, "every value is owned exactly once");
    }

    #[test]
    fn two_node_shuffle_is_byte_correct() {
        let outcome = run_shuffle(&ShuffleSpec::new(2, 400, 0xBEEF));
        assert!(outcome.bytes_shuffled > 0);
        assert!(outcome.aggregate_gbps > 0.0);
        assert_eq!(outcome.tail_drops, 0, "fault-free run never tail-drops");
    }

    #[test]
    fn same_seed_reruns_are_fingerprint_identical() {
        let mut spec = ShuffleSpec::new(3, 200, 0xF00D);
        spec.trace_capacity = Some(1 << 14);
        let a = run_shuffle(&spec);
        let b = run_shuffle(&spec);
        assert_eq!(a, b, "same spec must reproduce identical observables");
        assert!(a.fingerprint.is_some());
    }
}
