//! A minimal JSON reader/writer for the corpus: enough of RFC 8259 to
//! round-trip [`super::ScenarioSpec`] documents and pick fields out of
//! `CORPUS.json` without pulling a serialization dependency into the
//! workspace. Numbers are f64 (which is why u64 seeds travel as hex
//! strings), strings support the standard escapes including `\uXXXX`.

use super::SpecError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (f64, like JavaScript).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one JSON document (associated-function form of
    /// [`parse`]).
    pub fn parse(text: &str) -> Result<Value, String> {
        parse(text)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field ([`SpecError::Malformed`] when absent).
    pub fn field(&self, key: &str) -> Result<&Value, SpecError> {
        self.get(key)
            .ok_or_else(|| SpecError::Malformed(format!("missing field {key:?}")))
    }

    /// A required string field.
    pub fn str_field(&self, key: &str) -> Result<&str, SpecError> {
        match self.field(key)? {
            Value::Str(s) => Ok(s),
            other => Err(SpecError::Malformed(format!(
                "field {key:?} must be a string, got {other:?}"
            ))),
        }
    }

    /// A required bool field.
    pub fn bool_field(&self, key: &str) -> Result<bool, SpecError> {
        match self.field(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(SpecError::Malformed(format!(
                "field {key:?} must be a bool, got {other:?}"
            ))),
        }
    }

    /// A required non-negative integer field (rejects fractions and
    /// anything beyond exact f64 range).
    pub fn u64_field(&self, key: &str) -> Result<u64, SpecError> {
        match self.field(key)? {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9.0e15 => Ok(*n as u64),
            other => Err(SpecError::Malformed(format!(
                "field {key:?} must be a non-negative integer, got {other:?}"
            ))),
        }
    }

    /// [`Value::u64_field`] narrowed to usize.
    pub fn usize_field(&self, key: &str) -> Result<usize, SpecError> {
        Ok(self.u64_field(key)? as usize)
    }
}

/// Escapes `s` into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite f64 as a JSON number (integers without the trailing
/// `.0`, non-finite values as `null`).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        "null".into()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// Parses one JSON document (trailing non-whitespace is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == want {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of document".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                fields.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched; the input is a &str so it is valid).
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    b if b < 0x80 => 1,
                    b if b < 0xE0 => 2,
                    b if b < 0xF0 => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..ch_len]).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, true, null, "x\ny"], "b": {"c": -3}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(2.5),
                Value::Bool(true),
                Value::Null,
                Value::Str("x\ny".into()),
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Num(-3.0)));
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote\" slash\\ tab\t newline\n unicode\u{1F600}";
        let v = parse(&escape(s)).unwrap();
        assert_eq!(v, Value::Str(s.into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn number_formatting_round_trips() {
        for v in [0.0, 1.0, -17.0, 2.5, 1e-3, 123456789.125] {
            let Value::Num(back) = parse(&number(v)).unwrap() else {
                panic!("number must parse as number");
            };
            assert_eq!(back, v);
        }
        assert_eq!(number(f64::NAN), "null");
    }
}
