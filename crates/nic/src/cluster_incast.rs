//! N→1 incast over the switched cluster: the canonical congestion
//! benchmark DCQCN exists to survive.
//!
//! N senders each keep a fixed window of RDMA WRITEs outstanding toward
//! the same receiver, so all N flows collapse onto one egress port. The
//! driver is closed-loop: a sender posts its next message the moment the
//! previous one completes, which makes the per-sender window the offered
//! -load axis (window × message size ≈ bytes in flight per flow).
//!
//! Without congestion control the shared egress queue either tail-drops
//! (shallow buffers → retransmission storms, possibly terminal QP
//! errors) or bloats (deep buffers → p999 latency far beyond the
//! retransmit timeout). With DCQCN ([`NicConfig::cc`]) the switch
//! CE-marks at a threshold, receivers echo CNPs, and every sender
//! converges near its fair share of the bottleneck — the run completes
//! with near-zero drops and a bounded tail.
//!
//! Everything derives from the seed; same-spec reruns are bit-identical.

use strom_sim::time::TimeDelta;
use strom_sim::SimRng;
use strom_telemetry::{jain_index, Histogram, MetricsRegistry};
use strom_wire::bth::Qpn;

use crate::config::Platform;
use crate::testbed::{ClusterTestbed, SwitchParams};
use crate::{CompletionStatus, WorkRequest};

/// Everything that determines one incast run.
#[derive(Debug, Clone)]
pub struct IncastSpec {
    /// Hardware platform (10 G or 100 G datapath).
    pub platform: Platform,
    /// Concurrent senders (the receiver is one extra node).
    pub senders: usize,
    /// Bytes per RDMA WRITE message.
    pub message_len: u32,
    /// Messages each sender must complete.
    pub messages_per_sender: usize,
    /// Messages each sender keeps outstanding (the offered-load knob).
    pub window: usize,
    /// Seed for payload contents and all simulation randomness.
    pub seed: u64,
    /// Switch geometry (ECN marking lives here).
    pub switch: SwitchParams,
    /// Enables DCQCN on every NIC.
    pub cc: bool,
    /// Overrides the NIC retransmission timeout (`None` keeps the
    /// platform default).
    pub retransmit_timeout: Option<TimeDelta>,
    /// The first `elephants` senders keep `window × elephant_boost`
    /// messages outstanding instead of `window` — the elephant flows of
    /// an elephant/mice fairness mix (0 makes every sender a mouse).
    pub elephants: usize,
    /// Window multiplier for elephant senders (≥ 1).
    pub elephant_boost: usize,
    /// READ-heavy mode: node 0 issues RDMA READs *from* every peer
    /// instead of the peers writing to it. The congested traffic is then
    /// the read-*response* streams converging on node 0's egress port —
    /// the case where DCQCN only helps if responders pace their
    /// responses (CE-marked responses echo CNPs back to the responder).
    pub reads: bool,
}

impl IncastSpec {
    /// A congestion-control-off 10 G spec with default switch geometry.
    pub fn new(senders: usize, window: usize, seed: u64) -> Self {
        IncastSpec {
            platform: Platform::TenGig,
            senders,
            message_len: 8 << 10,
            messages_per_sender: 24,
            window,
            seed,
            switch: SwitchParams::default(),
            cc: false,
            retransmit_timeout: None,
            elephants: 0,
            elephant_boost: 1,
            reads: false,
        }
    }

    /// The outstanding-message window of sender `s` (0-based).
    pub fn window_for(&self, s: usize) -> usize {
        if s < self.elephants {
            self.window * self.elephant_boost.max(1)
        } else {
            self.window
        }
    }

    /// The message quota of sender `s`: elephants carry proportionally
    /// more data, so they stay backlogged for the whole run instead of
    /// finishing their share early.
    pub fn quota_for(&self, s: usize) -> usize {
        if s < self.elephants {
            self.messages_per_sender * self.elephant_boost.max(1)
        } else {
            self.messages_per_sender
        }
    }
}

/// What one incast run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct IncastOutcome {
    /// First post to last completion, in picoseconds.
    pub elapsed_ps: TimeDelta,
    /// Receiver goodput in Gbit/s (completed payload bytes over elapsed).
    pub goodput_gbps: f64,
    /// Message completion latency quantiles, picoseconds.
    pub p50_ps: Option<u64>,
    pub p99_ps: Option<u64>,
    pub p999_ps: Option<u64>,
    /// Switch tail-drops over the run.
    pub tail_drops: u64,
    /// Frames the switch CE-marked.
    pub ecn_marked: u64,
    /// CNPs received across all senders (== DCQCN rate-cut signals).
    pub cnps: u64,
    /// Retransmissions summed over all senders.
    pub retransmissions: u64,
    /// Senders whose QP went terminal (must be 0 at any sane operating
    /// point — incast is supposed to be survivable).
    pub qp_errors: usize,
    /// Payload bytes each sender completed (for fairness analysis).
    pub per_sender_bytes: Vec<u64>,
    /// Jain's fairness index over `per_sender_bytes` weighted by the
    /// inverse of each sender's active time — 1.0 when every flow got an
    /// equal share of the bottleneck.
    pub jain: f64,
}

/// The QP connecting sender `s` (0-based) to the receiver.
fn sender_qpn(s: usize) -> Qpn {
    s as Qpn + 1
}

/// Runs the N→1 incast and returns the observables. Panics only on
/// structural misuse (zero senders/window); congestion outcomes — drops,
/// retransmissions, even terminal QP errors — are *reported*, not
/// asserted, so callers can probe operating points beyond the cliff.
pub fn run_incast(spec: &IncastSpec) -> IncastOutcome {
    run_incast_instrumented(spec).0
}

/// [`run_incast`] plus the testbed's metrics registry, so callers can
/// export the per-port switch gauges and counters (queue-depth high
/// watermarks, ECN mark counts) alongside the outcome.
pub fn run_incast_instrumented(spec: &IncastSpec) -> (IncastOutcome, MetricsRegistry) {
    assert!(spec.senders >= 1, "incast needs at least one sender");
    assert!(spec.window >= 1, "window must admit at least one message");
    let n = spec.senders;
    let receiver: usize = 0;

    let mut cfg = spec.platform.config();
    cfg.seed = spec.seed;
    cfg.cc = spec.cc;
    if let Some(timeout) = spec.retransmit_timeout {
        cfg.retransmit_timeout = timeout;
    }
    let mut tb = ClusterTestbed::switched(cfg, n + 1, spec.switch);
    for s in 0..n {
        tb.connect_qp_between(receiver, s + 1, sender_qpn(s));
    }

    // Each sender stages one seeded message buffer and writes it
    // repeatedly into its own private slice of the receiver's region —
    // flows never alias, so memory checks stay meaningful.
    let msg = spec.message_len as u64;
    let dst_base = tb.pin(receiver, msg * n as u64);
    let mut src = Vec::with_capacity(n);
    for s in 0..n {
        let addr = tb.pin(s + 1, msg);
        let mut data = vec![0u8; spec.message_len as usize];
        SimRng::seed(spec.seed ^ (s as u64) << 17).fill_bytes(&mut data);
        tb.mem(s + 1).write(addr, &data);
        src.push((addr, data));
    }
    tb.bring_up();

    // Closed loop: keep `window` writes in flight per sender until each
    // has completed its quota. Per-QP RC ordering means completions
    // arrive in post order, so only the head of each sender's FIFO needs
    // polling.
    let t0 = tb.now();
    let mut outstanding: Vec<std::collections::VecDeque<(u64, u64)>> =
        vec![std::collections::VecDeque::new(); n];
    let mut posted = vec![0usize; n];
    let mut done = vec![0usize; n];
    let mut dead = vec![false; n];
    let mut per_sender_bytes = vec![0u64; n];
    let mut finished_at = vec![t0; n];
    let mut latency = Histogram::new();
    // READ mode inverts who posts: node 0 is the requester on every QP
    // and pulls each peer's staged buffer; the data still flows
    // peer → node 0, so completion polling and memory verification stay
    // on the same nodes in both modes.
    let post_node = |s: usize| if spec.reads { receiver } else { s + 1 };
    let post_next = |tb: &mut ClusterTestbed, s: usize, posted: &mut Vec<usize>| {
        let wr = if spec.reads {
            WorkRequest::Read {
                remote_vaddr: src[s].0,
                local_vaddr: dst_base + msg * s as u64,
                len: spec.message_len,
            }
        } else {
            WorkRequest::Write {
                remote_vaddr: dst_base + msg * s as u64,
                local_vaddr: src[s].0,
                len: spec.message_len,
            }
        };
        let h = tb.post(post_node(s), sender_qpn(s), wr);
        posted[s] += 1;
        (h, tb.now())
    };
    for (s, fifo) in outstanding.iter_mut().enumerate() {
        for _ in 0..spec.window_for(s).min(spec.quota_for(s)) {
            fifo.push_back(post_next(&mut tb, s, &mut posted));
        }
    }
    loop {
        let mut all_done = true;
        for s in 0..n {
            while let Some(&(h, posted_at)) = outstanding[s].front() {
                let Some(t) = tb.completed_at(post_node(s), h) else {
                    break;
                };
                outstanding[s].pop_front();
                match tb.completion_status(post_node(s), h) {
                    Some(CompletionStatus::Success) => {
                        latency.record(t.saturating_sub(posted_at));
                        per_sender_bytes[s] += msg;
                        done[s] += 1;
                        finished_at[s] = finished_at[s].max(t);
                        if posted[s] < spec.quota_for(s) {
                            let entry = post_next(&mut tb, s, &mut posted);
                            outstanding[s].push_back(entry);
                        }
                    }
                    _ => {
                        // Terminal QP error: the whole flow is dead, stop
                        // feeding it.
                        dead[s] = true;
                        outstanding[s].clear();
                    }
                }
            }
            if !dead[s] && done[s] < spec.quota_for(s) {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        assert!(
            tb.step_batch() > 0,
            "seed {}: incast went idle with messages outstanding",
            spec.seed
        );
    }
    let elapsed_ps = (finished_at.iter().copied().max().unwrap_or(t0) - t0).max(1);
    tb.run_until_idle();

    // Survivors' memory must hold their staged pattern (last write wins;
    // all writes per sender carry identical bytes).
    for s in 0..n {
        if !dead[s] && done[s] > 0 {
            assert_eq!(
                tb.mem(receiver)
                    .read(dst_base + msg * s as u64, src[s].1.len()),
                src[s].1,
                "seed {}: sender {s} payload corrupted",
                spec.seed
            );
        }
    }

    let bytes: u64 = per_sender_bytes.iter().sum();
    let secs = elapsed_ps as f64 * 1e-12;
    // Fairness over per-flow goodput: each sender's bytes over its own
    // active time, so a flow that finished early is not counted as
    // starved for the remainder of the run.
    let rates: Vec<f64> = (0..n)
        .map(|s| {
            let active = (finished_at[s] - t0).max(1) as f64;
            per_sender_bytes[s] as f64 / active
        })
        .collect();
    let outcome = IncastOutcome {
        elapsed_ps,
        goodput_gbps: bytes as f64 * 8.0 / secs / 1e9,
        p50_ps: latency.quantile(0.50),
        p99_ps: latency.quantile(0.99),
        p999_ps: latency.quantile(0.999),
        tail_drops: tb.switch_tail_drops(),
        ecn_marked: (0..n + 1)
            .map(|p| tb.switch_counters(p).map_or(0, |c| c.ecn_marked))
            .sum(),
        // Summed over *all* nodes: in write mode the rate-cut signals
        // land on the senders, in read mode on the responding peers and
        // the retransmissions on the requesting node 0.
        cnps: (0..=n).map(|p| tb.status(p).wire.cnps_rx).sum(),
        retransmissions: (0..=n).map(|p| tb.retransmissions(p)).sum(),
        qp_errors: dead.iter().filter(|&&d| d).count(),
        per_sender_bytes,
        jain: jain_index(&rates),
    };
    let metrics = tb.metrics().clone();
    (outcome, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_sim::time::{MICROS, NANOS};
    use strom_sim::{Bandwidth, EcnConfig};

    fn congested_switch(capacity: usize, ecn: Option<EcnConfig>) -> SwitchParams {
        SwitchParams {
            port_rate: Some(Bandwidth::gbit_per_sec(10.0)),
            latency: 500 * NANOS,
            egress_capacity: capacity,
            ecn,
        }
    }

    #[test]
    fn small_incast_completes_without_cc() {
        let mut spec = IncastSpec::new(2, 2, 0x1CA5);
        spec.messages_per_sender = 6;
        spec.switch = congested_switch(256, None);
        let o = run_incast(&spec);
        assert_eq!(o.qp_errors, 0);
        assert_eq!(o.per_sender_bytes, vec![6 * 8192, 6 * 8192]);
        assert!(o.goodput_gbps > 0.0);
        assert_eq!(o.cnps, 0, "no CC, no CNPs");
        assert_eq!(o.ecn_marked, 0, "no marker configured");
    }

    #[test]
    fn cc_incast_marks_cuts_and_stays_fair() {
        let mut spec = IncastSpec::new(4, 4, 0x1CA5);
        spec.messages_per_sender = 12;
        spec.retransmit_timeout = Some(1_000 * MICROS);
        spec.switch = congested_switch(256, Some(EcnConfig::step(16)));
        spec.cc = true;
        let o = run_incast(&spec);
        assert_eq!(o.qp_errors, 0, "CC incast must not error QPs");
        assert!(o.ecn_marked > 0, "4:1 overload must cross the threshold");
        assert!(o.cnps > 0, "marks must echo back as CNPs");
        assert_eq!(o.tail_drops, 0, "marking should hold the queue short");
        assert!(o.jain > 0.8, "fair share expected, Jain = {}", o.jain);
    }

    #[test]
    fn dcqcn_restores_elephant_mice_fairness() {
        // Two elephants keep 4× the window (and carry 4× the data) of
        // four mice. Without CC the FIFO egress queue serves flows in
        // proportion to their queue occupancy, so elephants take ~4× the
        // mice's bandwidth; DCQCN's per-QP rate control pushes every
        // backlogged flow toward the same share.
        let run = |cc: bool| {
            let mut spec = IncastSpec::new(6, 4, 0xFA1);
            spec.messages_per_sender = 8;
            spec.elephants = 2;
            spec.elephant_boost = 4;
            spec.retransmit_timeout = Some(1_000 * MICROS);
            spec.switch = congested_switch(384, cc.then(|| EcnConfig::step(16)));
            spec.cc = cc;
            run_incast(&spec)
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.qp_errors, 0);
        assert_eq!(on.qp_errors, 0);
        assert!(
            on.jain > off.jain,
            "DCQCN should improve fairness: {} (on) vs {} (off)",
            on.jain,
            off.jain
        );
    }

    #[test]
    fn read_incast_paces_responses_through_dcqcn() {
        // N:1 READ incast: node 0 pulls from 4 peers at once, so the
        // congested stream is read *responses* converging on node 0's
        // egress port. This only benefits from DCQCN because responders
        // pace their responses through the per-QP pacer and CE-marked
        // responses echo CNPs back — the regression this test pins.
        let run = |cc: bool| {
            let mut spec = IncastSpec::new(4, 4, 0x2EAD);
            spec.messages_per_sender = 12;
            spec.reads = true;
            spec.retransmit_timeout = Some(1_000 * MICROS);
            spec.switch = congested_switch(32, cc.then(|| EcnConfig::step(8)));
            spec.cc = cc;
            run_incast(&spec)
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(on.qp_errors, 0, "paced READ incast must not error QPs");
        assert!(
            on.ecn_marked > 0,
            "4:1 response overload must cross the mark threshold"
        );
        assert!(
            on.cnps > 0,
            "CE-marked responses must echo CNPs to the responders"
        );
        assert!(
            off.tail_drops > 0,
            "operating point too mild: CC-off READ incast did not drop"
        );
        assert!(
            on.tail_drops < off.tail_drops,
            "response pacing should shed drops: {} (on) vs {} (off)",
            on.tail_drops,
            off.tail_drops
        );
        assert!(
            on.retransmissions < off.retransmissions,
            "fewer drops should mean fewer retransmissions: {} (on) vs {} (off)",
            on.retransmissions,
            off.retransmissions
        );
    }

    #[test]
    fn read_incast_reruns_reproduce_the_outcome() {
        let mut spec = IncastSpec::new(3, 3, 0x2EAD5);
        spec.messages_per_sender = 8;
        spec.reads = true;
        spec.switch = congested_switch(128, Some(EcnConfig::step(12)));
        spec.cc = true;
        let a = run_incast(&spec);
        let b = run_incast(&spec);
        assert_eq!(a, b, "READ incast rerun diverged");
    }

    #[test]
    fn same_seed_reruns_reproduce_the_outcome() {
        let mut spec = IncastSpec::new(3, 3, 0xD0C5);
        spec.messages_per_sender = 8;
        spec.switch = congested_switch(128, Some(EcnConfig::step(12)));
        spec.cc = true;
        let a = run_incast(&spec);
        let b = run_incast(&spec);
        assert_eq!(a, b, "incast rerun diverged");
    }
}
