//! The StRoM NIC simulation: RoCE stack + DMA engine + kernel fabric,
//! assembled into a testbed of N nodes.
//!
//! This crate is the counterpart of the paper's hardware platform
//! (Figure 1): each simulated node has host memory behind a PCIe/DMA
//! model with an on-NIC TLB, a RoCE v2 protocol engine (the sans-IO state
//! machines of `strom-proto` driven with pipeline timing), and a kernel
//! fabric hosting StRoM kernels on the data path between the RoCE stack
//! and the DMA engine (Figure 4). The default [`Testbed`] connects two
//! such nodes back-to-back — "we directly connected two StRoM NICs to
//! each other to remove the potential noise introduced by a switch"
//! (§6.1) — while [`ClusterTestbed`] places N of them around a
//! deterministic store-and-forward switch and drives multi-node
//! workloads like the all-to-all shuffle ([`cluster_shuffle`]).
//!
//! Packets cross the simulated wire as real encoded bytes
//! (`strom_wire::Packet::encode`/`parse`), so the full header machinery,
//! ICRC validation, segmentation, PSN windows, and retransmission logic
//! are exercised functionally; only *time* is modeled, using the clock,
//! PCIe, and line-rate constants documented in `NicConfig`.

pub mod chaos;
pub mod cluster_chain;
pub mod cluster_incast;
pub mod cluster_shuffle;
pub mod config;
pub mod controller;
pub mod corpus;
pub mod event;
pub mod fabric;
pub mod fault;
pub mod kv_serve;
pub mod pdes_cluster;
pub mod testbed;

pub use cluster_chain::{run_crcverify_shuffle, run_filter_agg_hll, ChainRun, ChainSpec};
pub use config::{NicConfig, Platform};
pub use controller::{CommandWord, StatusRegisters};
pub use corpus::{
    run_corpus, run_corpus_cases, CorpusCase, CorpusReport, CorpusScale, PerfGate, ScenarioSpec,
    SpecError, Workload,
};
pub use event::{Event, NodeId};
pub use fabric::KernelFabric;
pub use fault::{LinkFaultModel, LossModel};
pub use kv_serve::{run_kv_serve, run_kv_serve_instrumented, KvOutcome, KvSpec};
pub use pdes_cluster::{
    run_pdes_cluster, run_pdes_cluster_reference, ClusterPdesReport, KvPdesWorkload,
    PdesClusterParams,
};
pub use testbed::{ClusterTestbed, CpuFallback, LookaheadReport, SwitchParams, Testbed, WatchId};

pub use chaos::{active_fault_types, chaos_model, run_chaos, ChaosOutcome, ChaosSpec};

// Re-export the work-request vocabulary users need at the testbed API.
pub use strom_proto::{Completion, CompletionStatus, WorkRequest};
pub use strom_wire::opcode::RpcOpCode;
