//! The Controller: the NIC's host-facing register interface.
//!
//! §4.3: the driver "exposes the PCIe bar that maps to control and status
//! registers on the FPGA as a device /dev/roce. By mapping this device
//! into the user space of the application through mmap, the software
//! application can directly interact with the FPGA at low latency without
//! involving the operating system. On the hardware a Controller module
//! converts the register accesses into commands that are issued to the
//! RoCE stack, the StRoM kernels, or to populate the TLB. Apart from
//! issuing commands, the host can also retrieve status and performance
//! metrics."
//!
//! §7.1 adds the command format: "Messages are issued to the NIC through
//! a single memory mapped AVX2 store operation containing all relevant
//! parameters" — one 32-byte doorbell word per operation.
//!
//! This module implements that ABI: [`CommandWord`] encodes a work
//! request into the 32 B layout and the Controller decodes it back. The
//! testbed drives every host command through encode → decode, so the
//! register interface is exercised on every simulated operation. RPC
//! parameters larger than the inline budget travel through a host
//! parameter buffer the command word points at, mirroring how real
//! doorbells reference WQE memory.

use bytes::Bytes;

use strom_proto::WorkRequest;
use strom_telemetry::WireCounters;
use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

/// Size of one doorbell command: a single AVX2 store (§7.1).
pub const COMMAND_BYTES: usize = 32;

/// Operation selector in the command word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum CmdOp {
    Write = 1,
    Read = 2,
    Rpc = 3,
    RpcWrite = 4,
}

impl CmdOp {
    fn from_u8(v: u8) -> Option<CmdOp> {
        match v {
            1 => Some(CmdOp::Write),
            2 => Some(CmdOp::Read),
            3 => Some(CmdOp::Rpc),
            4 => Some(CmdOp::RpcWrite),
            _ => None,
        }
    }
}

/// Errors decoding a doorbell word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandError {
    /// The opcode selector is not a known operation.
    UnknownOp(u8),
    /// The buffer is not exactly [`COMMAND_BYTES`] long.
    WrongLength(usize),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::UnknownOp(v) => write!(f, "unknown command opcode {v}"),
            CommandError::WrongLength(n) => {
                write!(f, "command must be {COMMAND_BYTES} bytes, got {n}")
            }
        }
    }
}

impl std::error::Error for CommandError {}

/// A 32-byte doorbell command word.
///
/// Layout (little-endian):
///
/// ```text
/// byte  0      : op (1=WRITE, 2=READ, 3=RPC, 4=RPC WRITE)
/// bytes 1..4   : QPN (24 bits)
/// bytes 4..8   : length (WRITE/READ/RPC WRITE payload; RPC param length)
/// bytes 8..16  : remote vaddr (WRITE/READ) or RPC op-code (RPC/RPC WRITE)
/// bytes 16..24 : local vaddr (payload source / read destination / RPC
///                parameter buffer)
/// bytes 24..32 : reserved (zero)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandWord(pub [u8; COMMAND_BYTES]);

impl CommandWord {
    /// Encodes a work request as a doorbell.
    ///
    /// RPC parameters are not inline: the caller must stage them in host
    /// memory at `param_vaddr` and pass that address (this mirrors the
    /// driver writing the parameter buffer before ringing the doorbell).
    /// For `WorkRequest::Rpc` this function therefore takes the staging
    /// address via the closure `stage_params`.
    ///
    /// `WorkRequest::WriteInline` has no doorbell form — it only exists on
    /// the NIC itself (kernel responses) — and is rejected.
    pub fn encode(
        qpn: Qpn,
        wr: &WorkRequest,
        stage_params: impl FnOnce(&Bytes) -> u64,
    ) -> Option<CommandWord> {
        let mut b = [0u8; COMMAND_BYTES];
        b[1..4].copy_from_slice(&qpn.to_le_bytes()[..3]);
        match wr {
            WorkRequest::Write {
                remote_vaddr,
                local_vaddr,
                len,
            } => {
                b[0] = CmdOp::Write as u8;
                b[4..8].copy_from_slice(&len.to_le_bytes());
                b[8..16].copy_from_slice(&remote_vaddr.to_le_bytes());
                b[16..24].copy_from_slice(&local_vaddr.to_le_bytes());
            }
            WorkRequest::Read {
                remote_vaddr,
                local_vaddr,
                len,
            } => {
                b[0] = CmdOp::Read as u8;
                b[4..8].copy_from_slice(&len.to_le_bytes());
                b[8..16].copy_from_slice(&remote_vaddr.to_le_bytes());
                b[16..24].copy_from_slice(&local_vaddr.to_le_bytes());
            }
            WorkRequest::Rpc { rpc_op, params } => {
                b[0] = CmdOp::Rpc as u8;
                b[4..8].copy_from_slice(&(params.len() as u32).to_le_bytes());
                b[8..16].copy_from_slice(&rpc_op.0.to_le_bytes());
                let staged = stage_params(params);
                b[16..24].copy_from_slice(&staged.to_le_bytes());
            }
            WorkRequest::RpcWrite {
                rpc_op,
                local_vaddr,
                len,
            } => {
                b[0] = CmdOp::RpcWrite as u8;
                b[4..8].copy_from_slice(&len.to_le_bytes());
                b[8..16].copy_from_slice(&rpc_op.0.to_le_bytes());
                b[16..24].copy_from_slice(&local_vaddr.to_le_bytes());
            }
            WorkRequest::WriteInline { .. } => return None,
        }
        Some(CommandWord(b))
    }

    /// Decodes the doorbell back into `(qpn, request)` — the Controller's
    /// job on the FPGA. RPC parameters are fetched from the staged buffer
    /// via `fetch_params` (in the real NIC: a DMA read of the WQE).
    pub fn decode(
        &self,
        fetch_params: impl FnOnce(u64, u32) -> Bytes,
    ) -> Result<(Qpn, WorkRequest), CommandError> {
        let b = &self.0;
        let op = CmdOp::from_u8(b[0]).ok_or(CommandError::UnknownOp(b[0]))?;
        let qpn = u32::from_le_bytes([b[1], b[2], b[3], 0]);
        let len = u32::from_le_bytes(b[4..8].try_into().expect("sized"));
        let addr_a = u64::from_le_bytes(b[8..16].try_into().expect("sized"));
        let addr_b = u64::from_le_bytes(b[16..24].try_into().expect("sized"));
        let wr = match op {
            CmdOp::Write => WorkRequest::Write {
                remote_vaddr: addr_a,
                local_vaddr: addr_b,
                len,
            },
            CmdOp::Read => WorkRequest::Read {
                remote_vaddr: addr_a,
                local_vaddr: addr_b,
                len,
            },
            CmdOp::Rpc => WorkRequest::Rpc {
                rpc_op: RpcOpCode(addr_a),
                params: fetch_params(addr_b, len),
            },
            CmdOp::RpcWrite => WorkRequest::RpcWrite {
                rpc_op: RpcOpCode(addr_a),
                local_vaddr: addr_b,
                len,
            },
        };
        Ok((qpn, wr))
    }
}

/// The Controller's status registers — "the host can also retrieve status
/// and performance metrics" (§4.3).
///
/// The wire-datapath counters live in the shared
/// [`strom_telemetry::WireCounters`] struct (the same one the testbed
/// nodes count into, so nothing is hand-mirrored); `Deref`/`DerefMut`
/// expose its fields directly (`status.frames_rx`, etc.). The remaining
/// fields are derived from protocol state at read time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusRegisters {
    /// Wire datapath counters (commands, frames, drops, payload bytes).
    pub wire: WireCounters,
    /// Packets retransmitted by the requester.
    pub retransmissions: u64,
    /// Retransmission-timer expirations.
    pub timeouts: u64,
    /// Timer expirations that re-armed with a backed-off timeout.
    pub backoff_events: u64,
    /// Queue pairs in the terminal error state (retry budget exhausted).
    pub qps_in_error: u64,
    /// Kernel invocations completed.
    pub kernel_invocations: u64,
    /// RPCs that matched no kernel.
    pub rpc_unmatched: u64,
}

impl std::ops::Deref for StatusRegisters {
    type Target = WireCounters;

    fn deref(&self) -> &WireCounters {
        &self.wire
    }
}

impl std::ops::DerefMut for StatusRegisters {
    fn deref_mut(&mut self) -> &mut WireCounters {
        &mut self.wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_stage(_: &Bytes) -> u64 {
        panic!("not an RPC")
    }

    fn no_fetch(_: u64, _: u32) -> Bytes {
        panic!("not an RPC")
    }

    #[test]
    fn write_round_trips() {
        let wr = WorkRequest::Write {
            remote_vaddr: 0xdead_beef,
            local_vaddr: 0x1000,
            len: 4096,
        };
        let word = CommandWord::encode(7, &wr, no_stage).unwrap();
        let (qpn, decoded) = word.decode(no_fetch).unwrap();
        assert_eq!(qpn, 7);
        assert_eq!(decoded, wr);
    }

    #[test]
    fn read_round_trips() {
        let wr = WorkRequest::Read {
            remote_vaddr: u64::MAX >> 16,
            local_vaddr: 0,
            len: u32::MAX,
        };
        let word = CommandWord::encode(0xff_ffff, &wr, no_stage).unwrap();
        let (qpn, decoded) = word.decode(no_fetch).unwrap();
        assert_eq!(qpn, 0xff_ffff);
        assert_eq!(decoded, wr);
    }

    #[test]
    fn rpc_params_travel_via_staging_buffer() {
        let params = Bytes::from_static(b"traversal parameters here");
        let wr = WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: params.clone(),
        };
        // "Host": stage the params at a known address.
        let mut staged: Option<(u64, Bytes)> = None;
        let word = CommandWord::encode(3, &wr, |p| {
            staged = Some((0x7700, p.clone()));
            0x7700
        })
        .unwrap();
        let (addr, stored) = staged.unwrap();
        // "Controller": fetch them back by address + length.
        let (qpn, decoded) = word
            .decode(|a, len| {
                assert_eq!(a, addr);
                assert_eq!(len as usize, stored.len());
                stored.clone()
            })
            .unwrap();
        assert_eq!(qpn, 3);
        assert_eq!(decoded, wr);
    }

    #[test]
    fn rpc_write_round_trips() {
        let wr = WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::SHUFFLE,
            local_vaddr: 0x4_0000,
            len: 1 << 20,
        };
        let word = CommandWord::encode(1, &wr, no_stage).unwrap();
        let (_, decoded) = word.decode(no_fetch).unwrap();
        assert_eq!(decoded, wr);
    }

    #[test]
    fn write_inline_has_no_doorbell_form() {
        let wr = WorkRequest::WriteInline {
            remote_vaddr: 0,
            data: Bytes::from_static(b"nic-internal"),
        };
        assert!(CommandWord::encode(1, &wr, no_stage).is_none());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut b = [0u8; COMMAND_BYTES];
        b[0] = 99;
        let err = CommandWord(b).decode(no_fetch).unwrap_err();
        assert_eq!(err, CommandError::UnknownOp(99));
    }

    #[test]
    fn command_is_one_avx2_store() {
        assert_eq!(std::mem::size_of::<CommandWord>(), 32);
    }
}
