//! The N-node cluster expressed as PDES partitions: the parallel
//! counterpart of [`ClusterTestbed`](crate::ClusterTestbed).
//!
//! The full testbed cannot run under the parallel engine bit-identically
//! — it threads one global RNG, one trace ring, one pcap stream, and one
//! frame pool through every node, so any partitioning would reorder
//! those shared draws. This module instead models the cluster's
//! *dataplane shape* as true partitions: one per node (its generator,
//! its RNG, its TX serializer, its ICRC work) and one for the switch
//! (per-egress serializers, tail-drop bound, store-and-forward latency).
//! Per-event CPU cost is real — every frame's payload is materialized
//! and ICRC'd with the same `strom_wire::icrc` used on the wire path —
//! so parallel speedups measured here transfer to the full testbed once
//! its shared-state seams (audited by
//! [`ClusterTestbed::enable_lookahead_audit`](crate::ClusterTestbed::enable_lookahead_audit))
//! are split the same way.
//!
//! The physical lookahead is the cable propagation delay: every
//! node↔switch hop adds `propagation` on top of its serialization time,
//! so no cross-partition event can land sooner than `propagation` after
//! its send — the conservative-window premise, enforced at every send
//! by the engine's [`Outbox`].

use strom_sim::arrivals::ZipfSampler;
use strom_sim::pdes::{Outbox, Partition, PartitionId, PdesEngine, PdesReport};
use strom_sim::time::{Time, TimeDelta, NANOS};
use strom_sim::{Bandwidth, LinkSerializer, SimRng};
use strom_telemetry::PdesCounters;
use strom_wire::icrc::icrc;

use crate::event::NodeId;

/// Workload and fabric geometry for one PDES cluster run.
#[derive(Debug, Clone)]
pub struct PdesClusterParams {
    /// Number of nodes (the switch is one extra partition).
    pub nodes: usize,
    /// Master seed; each partition derives an independent stream.
    pub seed: u64,
    /// Requests every node issues before going quiet.
    pub requests_per_node: u32,
    /// Payload size range (bytes), inclusive.
    pub payload: (u32, u32),
    /// Link bandwidth (node↔switch, both directions).
    pub bandwidth_gbps: f64,
    /// Cable propagation delay — the engine's lookahead.
    pub propagation: TimeDelta,
    /// Switch store-and-forward latency per frame.
    pub switch_latency: TimeDelta,
    /// Tail-drop bound: a frame is dropped when its egress serializer
    /// is backlogged further than this into the future.
    pub egress_backlog_cap: TimeDelta,
    /// Mean gap between a node's request generations.
    pub gen_gap: TimeDelta,
    /// KV flavor: requests become Zipf-keyed GET/PUTs against per-node
    /// version maps instead of echo round trips (`None` keeps the
    /// original workload — and the original digests — unchanged).
    pub kv: Option<KvPdesWorkload>,
}

/// The KV-flavored PDES workload: every key has a *home* partition
/// (`key % nodes`) holding its version counter; a PUT bumps it, a GET
/// reads it, and each observed `(key, version)` pair folds into the
/// run digest — so the parallel engine must reproduce the *KV effect
/// order* bit-exactly, not just the frame counts.
#[derive(Debug, Clone)]
pub struct KvPdesWorkload {
    /// Key-space size.
    pub keys: u64,
    /// Zipf skew of key popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Percent of requests that are PUTs.
    pub put_pct: u8,
}

impl Default for PdesClusterParams {
    fn default() -> Self {
        Self {
            nodes: 8,
            seed: 0x57_0A11_C1C5,
            requests_per_node: 200,
            payload: (64, 1024),
            bandwidth_gbps: 10.0,
            propagation: 50 * NANOS,
            switch_latency: 120 * NANOS,
            egress_backlog_cap: 40_000 * NANOS,
            gen_gap: 800 * NANOS,
            kv: None,
        }
    }
}

/// Per-frame Ethernet-ish framing overhead (headers + preamble + IFG).
const FRAME_OVERHEAD: u64 = 64;

/// A frame crossing the PDES fabric.
#[derive(Debug, Clone)]
pub struct FrameMsg {
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// `true` for a response, `false` for a request.
    pub is_response: bool,
    /// When the originating request was generated (for RTT accounting).
    pub sent_at: Time,
    /// The payload bytes (materialized: ICRC is computed over them at
    /// both ends, so per-event CPU work matches the real wire path).
    pub payload: Vec<u8>,
    /// ICRC over the payload, checked at the receiver.
    pub crc: u32,
}

/// Writes the 17-byte KV op header over the front of a payload
/// (resizing up if the random length came out shorter).
fn encode_kv(payload: &mut Vec<u8>, put: bool, key: u64, version: u64) {
    if payload.len() < 17 {
        payload.resize(17, 0);
    }
    payload[0] = u8::from(put);
    payload[1..9].copy_from_slice(&key.to_le_bytes());
    payload[9..17].copy_from_slice(&version.to_le_bytes());
}

/// Reads the KV op header back: `(put, key, version)`.
fn decode_kv(payload: &[u8]) -> (bool, u64, u64) {
    (
        payload[0] != 0,
        u64::from_le_bytes(payload[1..9].try_into().expect("sized")),
        u64::from_le_bytes(payload[9..17].try_into().expect("sized")),
    )
}

/// Events exchanged between cluster partitions.
#[derive(Debug)]
pub enum ClusterEvent {
    /// Node-local generator tick: produce the next request.
    Gen,
    /// A frame arriving at the switch (from a node) or at a node (from
    /// the switch).
    Frame(FrameMsg),
}

/// One PDES partition: node `id < nodes`, or the switch (`id == nodes`).
pub struct ClusterPart {
    id: PartitionId,
    params: PdesClusterParams,
    rng: SimRng,
    /// Node: its TX serializer. Switch: unused (see `egress`).
    tx: LinkSerializer,
    /// Switch only: per-destination egress serializers.
    egress: Vec<LinkSerializer>,
    /// Requests generated so far (node only).
    generated: u32,
    /// Sum of request→response round-trip times (node only).
    pub rtt_sum: u64,
    /// This partition's counter block.
    pub counters: PdesCounters,
    /// KV mode: the Zipf popularity sampler (node only).
    zipf: Option<ZipfSampler>,
    /// KV mode: version counter of every key homed here.
    kv_versions: std::collections::BTreeMap<u64, u64>,
    /// KV mode: FNV fold of every `(key, version)` this node observed —
    /// locally applied or received in a response.
    pub kv_digest: u64,
}

impl ClusterPart {
    fn switch_id(&self) -> PartitionId {
        self.params.nodes
    }

    fn is_switch(&self) -> bool {
        self.id == self.switch_id()
    }

    /// Builds a payload of pseudo-random bytes and its ICRC — the real
    /// CPU work of the TX path.
    fn make_payload(&mut self) -> (Vec<u8>, u32) {
        let (lo, hi) = self.params.payload;
        let len = self.rng.range(lo as u64, hi as u64 + 1) as usize;
        let mut payload = vec![0u8; len];
        self.rng.fill_bytes(&mut payload);
        let crc = icrc(&payload);
        (payload, crc)
    }

    /// Serializes a frame onto this node's TX link and forwards it to
    /// the switch partition. The send delay is serialization + cable
    /// propagation, so it always clears the engine's lookahead.
    fn send_frame(&mut self, out: &mut Outbox<'_, ClusterEvent>, msg: FrameMsg) {
        let bytes = msg.payload.len() as u64 + FRAME_OVERHEAD;
        let (_, end) = self.tx.admit(out.now(), bytes);
        let delay = (end - out.now()) + self.params.propagation;
        self.counters.frames_out += 1;
        self.counters.bytes_tx += msg.payload.len() as u64;
        let switch = self.switch_id();
        out.send(switch, delay, ClusterEvent::Frame(msg));
    }

    /// Applies one KV op to a key homed on this partition; returns the
    /// version the op observed (PUT: the bumped one).
    fn apply_kv(&mut self, put: bool, key: u64) -> u64 {
        let v = self.kv_versions.entry(key).or_insert(0);
        if put {
            *v += 1;
        }
        *v
    }

    /// Folds an observed `(key, version)` pair into this node's digest.
    fn fold_kv(&mut self, key: u64, version: u64) {
        let mut h = self.kv_digest ^ 0xCBF2_9CE4_8422_2325;
        for b in key.to_le_bytes().into_iter().chain(version.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.kv_digest = h;
    }

    fn on_gen(&mut self, out: &mut Outbox<'_, ClusterEvent>) {
        if self.generated >= self.params.requests_per_node {
            return;
        }
        self.generated += 1;
        if let Some(wl) = self.params.kv.clone() {
            // KV mode: Zipf-pick a key, route the op to its home node
            // (applied locally when the key lives here).
            let key = self
                .zipf
                .as_ref()
                .expect("kv sampler")
                .sample(&mut self.rng)
                + 1;
            let put = (self.rng.below(100) as u8) < wl.put_pct;
            let home = (key % self.params.nodes as u64) as usize;
            if home == self.id {
                let v = self.apply_kv(put, key);
                self.fold_kv(key, v);
            } else {
                let (mut payload, _) = self.make_payload();
                encode_kv(&mut payload, put, key, 0);
                let crc = icrc(&payload);
                let msg = FrameMsg {
                    src: self.id,
                    dst: home,
                    is_response: false,
                    sent_at: out.now(),
                    payload,
                    crc,
                };
                self.send_frame(out, msg);
            }
        } else {
            let (payload, crc) = self.make_payload();
            // Pick any peer but ourselves.
            let mut dst = self.rng.below(self.params.nodes as u64 - 1) as usize;
            if dst >= self.id {
                dst += 1;
            }
            let msg = FrameMsg {
                src: self.id,
                dst,
                is_response: false,
                sent_at: out.now(),
                payload,
                crc,
            };
            self.send_frame(out, msg);
        }
        if self.generated < self.params.requests_per_node {
            let gap = 1 + self.rng.below(2 * self.params.gen_gap);
            out.send(self.id, gap, ClusterEvent::Gen);
        }
    }

    /// Switch: store-and-forward a frame toward its destination node,
    /// or tail-drop it when the egress queue is over the cap.
    fn on_switch_frame(&mut self, out: &mut Outbox<'_, ClusterEvent>, msg: FrameMsg) {
        self.counters.frames_in += 1;
        let now = out.now();
        let port = msg.dst;
        let backlog = self.egress[port].busy_until().saturating_sub(now);
        if backlog > self.params.egress_backlog_cap {
            self.counters.drops += 1;
            return;
        }
        let bytes = msg.payload.len() as u64 + FRAME_OVERHEAD;
        let admit_at = now + self.params.switch_latency;
        let (_, end) = self.egress[port].admit(admit_at, bytes);
        let delay = (end - now) + self.params.propagation;
        self.counters.frames_out += 1;
        self.counters.bytes_tx += msg.payload.len() as u64;
        out.send(port, delay, ClusterEvent::Frame(msg));
    }

    /// Node: receive a frame from the switch — verify its ICRC (real RX
    /// work), answer requests, account responses.
    fn on_node_frame(&mut self, out: &mut Outbox<'_, ClusterEvent>, msg: FrameMsg) {
        self.counters.frames_in += 1;
        assert_eq!(
            icrc(&msg.payload),
            msg.crc,
            "ICRC mismatch on an uncorrupted fabric"
        );
        if msg.is_response {
            self.counters.responses += 1;
            self.rtt_sum += out.now() - msg.sent_at;
            if self.params.kv.is_some() {
                let (_, key, version) = decode_kv(&msg.payload);
                self.fold_kv(key, version);
            }
            return;
        }
        if self.params.kv.is_some() {
            // KV request for a key homed here: apply, answer with the
            // observed version.
            let (put, key, _) = decode_kv(&msg.payload);
            let version = self.apply_kv(put, key);
            let (mut payload, _) = self.make_payload();
            encode_kv(&mut payload, put, key, version);
            let crc = icrc(&payload);
            let reply = FrameMsg {
                src: self.id,
                dst: msg.src,
                is_response: true,
                sent_at: msg.sent_at,
                payload,
                crc,
            };
            self.send_frame(out, reply);
            return;
        }
        let (payload, crc) = self.make_payload();
        let reply = FrameMsg {
            src: self.id,
            dst: msg.src,
            is_response: true,
            sent_at: msg.sent_at,
            payload,
            crc,
        };
        self.send_frame(out, reply);
    }
}

impl Partition for ClusterPart {
    type Event = ClusterEvent;

    fn init(&mut self, out: &mut Outbox<'_, ClusterEvent>) {
        if !self.is_switch() && self.params.requests_per_node > 0 {
            out.send(
                self.id,
                1 + self.rng.below(self.params.gen_gap),
                ClusterEvent::Gen,
            );
        }
    }

    fn handle(&mut self, event: ClusterEvent, out: &mut Outbox<'_, ClusterEvent>) {
        self.counters.dispatched += 1;
        match event {
            ClusterEvent::Gen => self.on_gen(out),
            ClusterEvent::Frame(msg) => {
                if self.is_switch() {
                    self.on_switch_frame(out, msg);
                } else {
                    self.on_node_frame(out, msg);
                }
            }
        }
    }
}

/// What a PDES cluster run produced: the engine report plus the merged
/// model counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPdesReport {
    /// The engine-level report (events, windows, fingerprints, log).
    pub pdes: PdesReport,
    /// Per-partition counter blocks (nodes 0..n, switch last).
    pub partition_counters: Vec<PdesCounters>,
    /// The merged cluster total.
    pub total: PdesCounters,
    /// Sum of request→response RTTs across all nodes (picoseconds).
    pub rtt_sum: u64,
    /// Fold of every `(key, version)` observation across all nodes
    /// (0 when the KV workload is off).
    pub kv_digest: u64,
    /// One combined digest over fingerprints and counters — the value
    /// the cross-engine equivalence tests and the golden file pin.
    pub digest: u64,
}

fn finish(pdes: PdesReport, parts: Vec<ClusterPart>) -> ClusterPdesReport {
    let partition_counters: Vec<PdesCounters> = parts.iter().map(|p| p.counters).collect();
    let mut total = PdesCounters::default();
    for c in &partition_counters {
        total.merge(c);
    }
    let rtt_sum = parts.iter().map(|p| p.rtt_sum).sum();
    let mut kv_digest = 0u64;
    for p in &parts {
        kv_digest = (kv_digest ^ p.kv_digest).wrapping_mul(0x100_0000_01b3);
    }
    let mut digest = pdes.fingerprint;
    for c in &partition_counters {
        digest = (digest ^ c.fingerprint()).wrapping_mul(0x100_0000_01b3);
    }
    digest ^= rtt_sum;
    digest ^= kv_digest;
    ClusterPdesReport {
        pdes,
        partition_counters,
        total,
        rtt_sum,
        kv_digest,
        digest,
    }
}

/// Builds the engine for one run: `nodes` node partitions plus the
/// switch, lookahead = propagation.
pub fn build_pdes_cluster(params: &PdesClusterParams) -> PdesEngine<ClusterPart> {
    assert!(params.nodes >= 2, "a cluster needs at least two nodes");
    let n = params.nodes;
    let bw = Bandwidth::gbit_per_sec(params.bandwidth_gbps);
    let parts = (0..=n)
        .map(|id| ClusterPart {
            id,
            params: params.clone(),
            rng: SimRng::seed(params.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            tx: LinkSerializer::new(bw),
            egress: if id == n {
                (0..n).map(|_| LinkSerializer::new(bw)).collect()
            } else {
                Vec::new()
            },
            generated: 0,
            rtt_sum: 0,
            counters: PdesCounters::default(),
            zipf: params
                .kv
                .as_ref()
                .map(|w| ZipfSampler::new(w.keys, w.zipf_theta)),
            kv_versions: Default::default(),
            kv_digest: 0,
        })
        .collect();
    PdesEngine::new(parts, params.propagation)
}

/// Runs the cluster model on the windowed engine with `workers` threads.
pub fn run_pdes_cluster(params: &PdesClusterParams, workers: usize) -> ClusterPdesReport {
    let (report, parts) = build_pdes_cluster(params).run(workers);
    finish(report, parts)
}

/// Runs the cluster model on the sequential global-heap reference.
pub fn run_pdes_cluster_reference(params: &PdesClusterParams) -> ClusterPdesReport {
    let (report, parts) = build_pdes_cluster(params).run_reference();
    finish(report, parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_gets_a_response_when_nothing_drops() {
        let params = PdesClusterParams {
            nodes: 4,
            requests_per_node: 50,
            // Effectively unbounded egress queue: nothing drops.
            egress_backlog_cap: u64::MAX / 2,
            ..Default::default()
        };
        let report = run_pdes_cluster(&params, 1);
        assert_eq!(report.total.drops, 0);
        assert_eq!(report.total.responses, 4 * 50);
        assert!(report.rtt_sum > 0);
    }

    #[test]
    fn reference_and_windowed_agree_on_a_small_run() {
        let params = PdesClusterParams {
            nodes: 3,
            requests_per_node: 30,
            ..Default::default()
        };
        let a = run_pdes_cluster_reference(&params);
        let b = run_pdes_cluster(&params, 1);
        let c = run_pdes_cluster(&params, 3);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.digest, c.digest);
        assert_eq!(a.partition_counters, c.partition_counters);
        assert_eq!(a.pdes.events, c.pdes.events);
    }

    #[test]
    fn kv_workload_digest_agrees_across_engines() {
        // The KV serving smoke: Zipf-keyed GET/PUTs against per-node
        // version maps. The digest folds every observed (key, version)
        // pair, so engine equality means the *order of KV effects* —
        // not just message counts — is bit-identical in parallel.
        let params = PdesClusterParams {
            nodes: 5,
            requests_per_node: 80,
            kv: Some(KvPdesWorkload {
                keys: 64,
                zipf_theta: 0.99,
                put_pct: 30,
            }),
            ..Default::default()
        };
        let reference = run_pdes_cluster_reference(&params);
        let seq = run_pdes_cluster(&params, 1);
        let par = run_pdes_cluster(&params, 4);
        assert_ne!(reference.kv_digest, 0, "KV ops must have been applied");
        assert_eq!(reference.digest, seq.digest);
        assert_eq!(reference.digest, par.digest);
        assert_eq!(reference.kv_digest, par.kv_digest);
        assert_eq!(reference.partition_counters, par.partition_counters);
    }

    #[test]
    fn kv_workload_changes_the_digest_but_not_the_default_path() {
        // Golden-file safety: `kv: None` must keep producing the exact
        // pre-KV schedule (same RNG draw order), while enabling KV
        // explores a different one.
        let base = PdesClusterParams {
            nodes: 3,
            requests_per_node: 40,
            ..Default::default()
        };
        let kv = PdesClusterParams {
            kv: Some(KvPdesWorkload {
                keys: 32,
                zipf_theta: 0.8,
                put_pct: 50,
            }),
            ..base.clone()
        };
        let plain = run_pdes_cluster(&base, 2);
        assert_eq!(plain.kv_digest, 0, "no KV ops on the default path");
        let kvr = run_pdes_cluster(&kv, 2);
        assert_ne!(plain.digest, kvr.digest);
    }

    #[test]
    fn congested_egress_tail_drops_deterministically() {
        let params = PdesClusterParams {
            nodes: 6,
            requests_per_node: 150,
            // All nodes hammer a tiny egress budget.
            egress_backlog_cap: 2_000,
            gen_gap: 100,
            ..Default::default()
        };
        let a = run_pdes_cluster(&params, 1);
        let b = run_pdes_cluster(&params, 4);
        assert!(a.total.drops > 0, "cap too loose to exercise tail-drop");
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.total.drops, b.total.drops);
    }
}
