//! Seeded chaos schedules for the soak harness.
//!
//! A chaos run is parameterized by a single `u64` seed: the seed picks
//! which fault types are active (always at least two) and their rates,
//! and the same seed also drives the testbed RNG — so a failing soak run
//! is reproduced exactly by re-running its seed.
//!
//! Rates are bounded to a regime the protocol should *survive*: bursty
//! enough to exercise go-back-N, NAKs, backoff, and ICRC drops, but
//! below the point where a 7-retry budget legitimately exhausts. Retry
//! exhaustion has its own dedicated test with loss = 1.0.

use strom_proto::{CompletionStatus, WorkRequest};
use strom_sim::time::MICROS;
use strom_sim::SimRng;

use crate::config::Platform;
use crate::fault::{LinkFaultModel, LossModel};
use crate::testbed::ClusterTestbed;

/// The fault dimensions a chaos schedule composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Loss,
    Corrupt,
    Reorder,
    Duplicate,
}

/// Builds the fault model for one chaos seed: at least two fault types,
/// with rates drawn from survivable ranges. Deterministic in `seed`.
pub fn chaos_model(seed: u64) -> LinkFaultModel {
    // Domain-separate from the testbed RNG, which runs on `seed` itself.
    let mut rng = SimRng::seed(seed ^ 0xC4A0_5EED);
    let mut kinds = [
        FaultKind::Loss,
        FaultKind::Corrupt,
        FaultKind::Reorder,
        FaultKind::Duplicate,
    ];
    rng.shuffle(&mut kinds);
    let active = rng.range(2, kinds.len() as u64 + 1) as usize;

    let mut model = LinkFaultModel::none();
    for kind in &kinds[..active] {
        match kind {
            FaultKind::Loss => {
                model.loss = if rng.chance(0.5) {
                    // Bursty: mostly-clean good state, short lossy bursts.
                    LossModel::GilbertElliott {
                        p_good_to_bad: 0.005 + rng.unit() * 0.045,
                        p_bad_to_good: 0.2 + rng.unit() * 0.3,
                        loss_good: rng.unit() * 0.01,
                        loss_bad: 0.1 + rng.unit() * 0.3,
                    }
                } else {
                    LossModel::Bernoulli(0.01 + rng.unit() * 0.09)
                };
            }
            FaultKind::Corrupt => {
                model.corrupt_rate = 0.005 + rng.unit() * 0.025;
            }
            FaultKind::Reorder => {
                model.reorder_rate = 0.01 + rng.unit() * 0.09;
                model.reorder_jitter = rng.range(MICROS, 20 * MICROS);
            }
            FaultKind::Duplicate => {
                model.duplicate_rate = 0.005 + rng.unit() * 0.045;
            }
        }
    }
    model
}

/// How many fault dimensions a model has switched on.
pub fn active_fault_types(model: &LinkFaultModel) -> usize {
    usize::from(model.loss != LossModel::None)
        + usize::from(model.corrupt_rate > 0.0)
        + usize::from(model.reorder_rate > 0.0 && model.reorder_jitter > 0)
        + usize::from(model.duplicate_rate > 0.0)
}

/// Everything that determines one library-level chaos soak run: a
/// seeded schedule of mixed READ/WRITE operations between two hosts
/// under a composed [`chaos_model`] fault schedule, on either platform.
///
/// The heavyweight multi-seed soak lives in `tests/chaos_soak.rs`; this
/// runner is the corpus-facing single-run flavor — it performs the same
/// byte-for-byte verification against an in-memory reference and
/// distills the run into a fingerprint plus perf observables.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Hardware platform (10 G or 100 G datapath).
    pub platform: Platform,
    /// Upper bound on the operation count (the seed draws 2..ops).
    pub ops: u64,
    /// Seed: picks the fault schedule, the op schedule, and the testbed
    /// RNG, so a run reproduces exactly from this one value.
    pub seed: u64,
}

/// What one chaos run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// FNV-1a fold of both verified memory images and the recovery
    /// counters — bit-identical across reruns of the same spec.
    pub fingerprint: u64,
    /// Operations driven.
    pub ops: u64,
    /// Payload bytes moved (sum of op lengths).
    pub bytes_moved: u64,
    /// First post to quiesce, picoseconds.
    pub elapsed_ps: u64,
    /// Retransmissions the faults forced.
    pub retransmissions: u64,
    /// Frames provably dropped by the ICRC after in-flight corruption.
    pub crc_dropped: u64,
    /// Frames lost by the fault model.
    pub frames_lost: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Runs the chaos soak scenario and verifies every byte against the
/// reference before returning the observables. Panics on any integrity
/// violation — a corpus run must never report a fingerprint for a run
/// that corrupted data.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosOutcome {
    const CLIENT: usize = 0;
    const SERVER: usize = 1;
    const QP: u32 = 1;
    const EVENT_BUDGET: u64 = 50_000_000;

    let model = chaos_model(spec.seed);
    let mut cfg = spec.platform.config();
    cfg.seed = spec.seed;
    let mut tb = ClusterTestbed::transparent_pair(cfg);
    tb.connect_qp(QP);
    tb.set_fault_model(model);
    let a = tb.pin(CLIENT, 4 << 20);
    let b = tb.pin(SERVER, 4 << 20);

    // Seeded init images and op schedule (domain-separated streams).
    let mut rng = SimRng::seed(spec.seed ^ 0x1234);
    let mut client_init = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut client_init);
    let mut server_init = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut server_init);
    tb.mem(CLIENT).write(a, &client_init);
    tb.mem(SERVER).write(b, &server_init);

    let mut op_rng = SimRng::seed(spec.seed ^ 0x0b5);
    let ops: Vec<(bool, u64, u32)> = (0..op_rng.range(2, spec.ops.max(3)))
        .map(|_| {
            let off = op_rng.below(1 << 20);
            let len = op_rng.range(1, 20_000) as u32;
            (op_rng.chance(0.5), off, len.min(((1 << 20) - 1) as u32))
        })
        .collect();

    // Reference images: the same ops applied to plain byte arrays.
    let mut want_remote = vec![0u8; 2 << 20];
    let mut want_local = vec![0u8; 2 << 20];
    for &(is_write, off, len) in &ops {
        let (off, len) = (off as usize, len as usize);
        if is_write {
            want_remote[off..off + len].copy_from_slice(&client_init[off..off + len]);
        } else {
            want_local[off..off + len].copy_from_slice(&server_init[off..off + len]);
        }
    }

    let t0 = tb.now();
    let mut bytes_moved = 0u64;
    for &(is_write, off, len) in &ops {
        let h = if is_write {
            tb.post(
                CLIENT,
                QP,
                WorkRequest::Write {
                    remote_vaddr: b + (2 << 20) + off,
                    local_vaddr: a + off,
                    len,
                },
            )
        } else {
            tb.post(
                CLIENT,
                QP,
                WorkRequest::Read {
                    remote_vaddr: b + off,
                    local_vaddr: a + (2 << 20) + off,
                    len,
                },
            )
        };
        bytes_moved += u64::from(len);
        tb.run_until_complete(CLIENT, h);
        assert_eq!(
            tb.completion_status(CLIENT, h),
            Some(CompletionStatus::Success),
            "seed {}: chaos op failed under {model:?}",
            spec.seed
        );
    }
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {}: chaos run failed to quiesce under {model:?}",
        spec.seed
    );
    let elapsed_ps = tb.now() - t0;

    let remote_image = tb.mem(SERVER).read(b + (2 << 20), 2 << 20);
    let local_image = tb.mem(CLIENT).read(a + (2 << 20), 2 << 20);
    assert_eq!(
        remote_image, want_remote,
        "seed {}: remote memory diverged under {model:?}",
        spec.seed
    );
    assert_eq!(
        local_image, want_local,
        "seed {}: read-back memory diverged under {model:?}",
        spec.seed
    );
    assert!(!tb.qp_errored(CLIENT, QP), "seed {}", spec.seed);

    let status = [tb.status(CLIENT), tb.status(SERVER)];
    let retransmissions = tb.retransmissions(CLIENT);
    let mut fp = FNV_OFFSET;
    fp = fnv_fold(fp, &remote_image);
    fp = fnv_fold(fp, &local_image);
    fp = fnv_fold(fp, &retransmissions.to_le_bytes());
    fp = fnv_fold(fp, &elapsed_ps.to_le_bytes());
    for s in &status {
        for v in [
            s.frames_lost,
            s.frames_crc_dropped,
            s.frames_reordered,
            s.frames_duplicated,
            s.timeouts,
        ] {
            fp = fnv_fold(fp, &v.to_le_bytes());
        }
    }
    ChaosOutcome {
        fingerprint: fp,
        ops: ops.len() as u64,
        bytes_moved,
        elapsed_ps,
        retransmissions,
        crc_dropped: status.iter().map(|s| s.frames_crc_dropped).sum(),
        frames_lost: status.iter().map(|s| s.frames_lost).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_activates_at_least_two_fault_types() {
        for seed in 0..200u64 {
            let m = chaos_model(seed);
            assert!(
                active_fault_types(&m) >= 2,
                "seed {seed} produced {m:?} with < 2 fault types"
            );
        }
    }

    #[test]
    fn models_are_deterministic_in_the_seed() {
        for seed in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            assert_eq!(chaos_model(seed), chaos_model(seed));
        }
    }

    #[test]
    fn seeds_produce_distinct_models() {
        let a = chaos_model(1);
        let b = chaos_model(2);
        assert_ne!(a, b, "different seeds should explore different faults");
    }

    #[test]
    fn chaos_runs_reproduce_and_differ_across_platforms() {
        let spec = ChaosSpec {
            platform: Platform::TenGig,
            ops: 6,
            seed: 11,
        };
        let a = run_chaos(&spec);
        let b = run_chaos(&spec);
        assert_eq!(a, b, "same spec must reproduce bit-identically");
        let hundred = run_chaos(&ChaosSpec {
            platform: Platform::HundredGig,
            ..spec.clone()
        });
        // Same payload schedule, different timing plane: the images fold
        // identically but elapsed time shrinks on the wider datapath.
        assert_eq!(hundred.ops, a.ops);
        assert_eq!(hundred.bytes_moved, a.bytes_moved);
        assert!(
            hundred.elapsed_ps < a.elapsed_ps,
            "100 G chaos must finish faster: {} vs {}",
            hundred.elapsed_ps,
            a.elapsed_ps
        );
    }

    #[test]
    fn rates_stay_in_the_survivable_regime() {
        for seed in 0..200u64 {
            let m = chaos_model(seed);
            match m.loss {
                LossModel::None => {}
                LossModel::Bernoulli(p) => assert!(p <= 0.10, "seed {seed}: loss {p}"),
                LossModel::GilbertElliott {
                    p_good_to_bad,
                    p_bad_to_good,
                    loss_good,
                    loss_bad,
                } => {
                    assert!(p_good_to_bad <= 0.05);
                    assert!(p_bad_to_good >= 0.2, "bursts must end");
                    assert!(loss_good <= 0.01);
                    assert!(loss_bad <= 0.4);
                }
            }
            assert!(m.corrupt_rate <= 0.03, "seed {seed}");
            assert!(m.reorder_rate <= 0.10, "seed {seed}");
            assert!(m.reorder_jitter <= 20 * MICROS, "seed {seed}");
            assert!(m.duplicate_rate <= 0.05, "seed {seed}");
        }
    }
}
