//! Seeded chaos schedules for the soak harness.
//!
//! A chaos run is parameterized by a single `u64` seed: the seed picks
//! which fault types are active (always at least two) and their rates,
//! and the same seed also drives the testbed RNG — so a failing soak run
//! is reproduced exactly by re-running its seed.
//!
//! Rates are bounded to a regime the protocol should *survive*: bursty
//! enough to exercise go-back-N, NAKs, backoff, and ICRC drops, but
//! below the point where a 7-retry budget legitimately exhausts. Retry
//! exhaustion has its own dedicated test with loss = 1.0.

use strom_sim::time::MICROS;
use strom_sim::SimRng;

use crate::fault::{LinkFaultModel, LossModel};

/// The fault dimensions a chaos schedule composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Loss,
    Corrupt,
    Reorder,
    Duplicate,
}

/// Builds the fault model for one chaos seed: at least two fault types,
/// with rates drawn from survivable ranges. Deterministic in `seed`.
pub fn chaos_model(seed: u64) -> LinkFaultModel {
    // Domain-separate from the testbed RNG, which runs on `seed` itself.
    let mut rng = SimRng::seed(seed ^ 0xC4A0_5EED);
    let mut kinds = [
        FaultKind::Loss,
        FaultKind::Corrupt,
        FaultKind::Reorder,
        FaultKind::Duplicate,
    ];
    rng.shuffle(&mut kinds);
    let active = rng.range(2, kinds.len() as u64 + 1) as usize;

    let mut model = LinkFaultModel::none();
    for kind in &kinds[..active] {
        match kind {
            FaultKind::Loss => {
                model.loss = if rng.chance(0.5) {
                    // Bursty: mostly-clean good state, short lossy bursts.
                    LossModel::GilbertElliott {
                        p_good_to_bad: 0.005 + rng.unit() * 0.045,
                        p_bad_to_good: 0.2 + rng.unit() * 0.3,
                        loss_good: rng.unit() * 0.01,
                        loss_bad: 0.1 + rng.unit() * 0.3,
                    }
                } else {
                    LossModel::Bernoulli(0.01 + rng.unit() * 0.09)
                };
            }
            FaultKind::Corrupt => {
                model.corrupt_rate = 0.005 + rng.unit() * 0.025;
            }
            FaultKind::Reorder => {
                model.reorder_rate = 0.01 + rng.unit() * 0.09;
                model.reorder_jitter = rng.range(MICROS, 20 * MICROS);
            }
            FaultKind::Duplicate => {
                model.duplicate_rate = 0.005 + rng.unit() * 0.045;
            }
        }
    }
    model
}

/// How many fault dimensions a model has switched on.
pub fn active_fault_types(model: &LinkFaultModel) -> usize {
    usize::from(model.loss != LossModel::None)
        + usize::from(model.corrupt_rate > 0.0)
        + usize::from(model.reorder_rate > 0.0 && model.reorder_jitter > 0)
        + usize::from(model.duplicate_rate > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_activates_at_least_two_fault_types() {
        for seed in 0..200u64 {
            let m = chaos_model(seed);
            assert!(
                active_fault_types(&m) >= 2,
                "seed {seed} produced {m:?} with < 2 fault types"
            );
        }
    }

    #[test]
    fn models_are_deterministic_in_the_seed() {
        for seed in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            assert_eq!(chaos_model(seed), chaos_model(seed));
        }
    }

    #[test]
    fn seeds_produce_distinct_models() {
        let a = chaos_model(1);
        let b = chaos_model(2);
        assert_ne!(a, b, "different seeds should explore different faults");
    }

    #[test]
    fn rates_stay_in_the_survivable_regime() {
        for seed in 0..200u64 {
            let m = chaos_model(seed);
            match m.loss {
                LossModel::None => {}
                LossModel::Bernoulli(p) => assert!(p <= 0.10, "seed {seed}: loss {p}"),
                LossModel::GilbertElliott {
                    p_good_to_bad,
                    p_bad_to_good,
                    loss_good,
                    loss_bad,
                } => {
                    assert!(p_good_to_bad <= 0.05);
                    assert!(p_bad_to_good >= 0.2, "bursts must end");
                    assert!(loss_good <= 0.01);
                    assert!(loss_bad <= 0.4);
                }
            }
            assert!(m.corrupt_rate <= 0.03, "seed {seed}");
            assert!(m.reorder_rate <= 0.10, "seed {seed}");
            assert!(m.reorder_jitter <= 20 * MICROS, "seed {seed}");
            assert!(m.duplicate_rate <= 0.05, "seed {seed}");
        }
    }
}
