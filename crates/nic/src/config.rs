//! Testbed configuration: the 10 G and 100 G platforms of the paper.

use crate::fault::LinkFaultModel;
use strom_mem::PcieModel;
use strom_sim::time::{TimeDelta, MICROS, NANOS};
use strom_sim::{Bandwidth, Clock};

/// The two hardware platforms of the paper, as a first-class value so
/// scenario specs, the workload corpus, and reports can name the
/// datapath they ran on.
///
/// §6.1 describes the 10 G prototype (Virtex-7, 156.25 MHz × 8 B) and
/// §7 the 100 G version (UltraScale+, 322 MHz × 64 B); every knob each
/// name implies lives in the [`NicConfig`] the platform expands to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// 10 G: 156.25 MHz clock, 8 B datapath, PCIe Gen3 x8 (§6.1).
    TenGig,
    /// 100 G: 322 MHz clock, 64 B datapath, PCIe Gen3 x16 (§7).
    HundredGig,
}

impl Platform {
    /// Both platforms, in corpus-matrix order.
    pub const ALL: [Platform; 2] = [Platform::TenGig, Platform::HundredGig];

    /// Expands the platform to its full [`NicConfig`] preset.
    pub fn config(self) -> NicConfig {
        match self {
            Platform::TenGig => NicConfig::ten_gig(),
            Platform::HundredGig => NicConfig::hundred_gig(),
        }
    }

    /// The stable wire name used in reports and golden files.
    pub fn name(self) -> &'static str {
        match self {
            Platform::TenGig => "10g",
            Platform::HundredGig => "100g",
        }
    }

    /// Parses a wire name back to a platform.
    pub fn from_name(name: &str) -> Option<Platform> {
        match name {
            "10g" => Some(Platform::TenGig),
            "100g" => Some(Platform::HundredGig),
            _ => None,
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// All timing and sizing parameters of one testbed.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// RoCE stack clock (156.25 MHz at 10 G, 322 MHz at 100 G, §3.5/§7).
    pub clock: Clock,
    /// Datapath width in bytes (8 B at 10 G, 64 B at 100 G, §4.1/§7).
    pub datapath_bytes: u64,
    /// Ethernet MTU (1500 B throughout the paper).
    pub mtu: usize,
    /// Queue pairs supported (a compile-time parameter on the FPGA, §4.1).
    pub num_qps: usize,
    /// Shared Multi-Queue slots for outstanding reads (§4.1).
    pub max_outstanding_reads: usize,
    /// PCIe attachment model.
    pub pcie: PcieModel,
    /// Network line rate.
    pub link_bandwidth: Bandwidth,
    /// Cable propagation delay (direct-connected NICs, §6.1).
    pub propagation: TimeDelta,
    /// TX pipeline depth in cycles (Request Handler → Generate IP).
    pub tx_pipeline_cycles: u64,
    /// RX pipeline depth in cycles (Process IP → Request Handler), not
    /// counting the ICRC store-and-forward, which scales with packet size.
    pub rx_pipeline_cycles: u64,
    /// Retransmission timeout (§4.1's per-QP timers).
    pub retransmit_timeout: TimeDelta,
    /// Host software cost to assemble and issue one command, before the
    /// MMIO store.
    pub host_post_overhead: TimeDelta,
    /// Host polling-loop detection overhead once data is in memory.
    pub poll_overhead: TimeDelta,
    /// Kernel fabric dispatch latency in cycles (op-code match + FIFO
    /// hop, "negligible latency", §5.2).
    pub kernel_dispatch_cycles: u64,
    /// Link fault injection: loss (Bernoulli or bursty), corruption,
    /// reordering, duplication. Defaults to a clean wire.
    pub fault: LinkFaultModel,
    /// Retry budget per QP: after this many consecutive timeout-driven
    /// retransmissions without progress the QP enters the error state
    /// (IB `retry_cnt` semantics).
    pub max_retries: u32,
    /// Cap on the exponential-backoff shift: the n-th consecutive timeout
    /// waits `retransmit_timeout << min(n, cap)`.
    pub backoff_shift_cap: u32,
    /// End-to-end congestion control (DCQCN). When on, data packets are
    /// sent ECN-capable (ECT(0)), the responder echoes CE marks back as
    /// CNP packets, and each requester QP paces its transmissions to a
    /// DCQCN-controlled rate. Off by default: the wire byte streams and
    /// timing are then bit-identical to the pre-CC stack (pinned by the
    /// pcap golden and chaos fingerprints).
    pub cc: bool,
    /// RNG seed for the testbed.
    pub seed: u64,
}

impl NicConfig {
    /// The 10 G prototype: Alpha Data ADM-PCIE-7V3, Virtex-7, PCIe Gen3
    /// x8, RoCE stack at 156.25 MHz on an 8 B datapath (§6.1).
    pub fn ten_gig() -> Self {
        NicConfig {
            clock: Clock::from_mhz(156.25),
            datapath_bytes: 8,
            mtu: 1500,
            num_qps: 500,
            max_outstanding_reads: 256,
            pcie: PcieModel::gen3_x8(),
            link_bandwidth: Bandwidth::gbit_per_sec(10.0),
            propagation: 50 * NANOS,
            tx_pipeline_cycles: 40,
            rx_pipeline_cycles: 60,
            retransmit_timeout: 100 * MICROS,
            host_post_overhead: 250 * NANOS,
            poll_overhead: 100 * NANOS,
            kernel_dispatch_cycles: 8,
            fault: LinkFaultModel::none(),
            max_retries: 7,
            backoff_shift_cap: 6,
            cc: false,
            seed: 0x5150,
        }
    }

    /// The 100 G version: VCU118, UltraScale+ XCVU9P, PCIe Gen3 x16,
    /// RoCE stack at 322 MHz on a 64 B datapath (§7).
    pub fn hundred_gig() -> Self {
        NicConfig {
            clock: Clock::from_mhz(322.0),
            datapath_bytes: 64,
            mtu: 1500,
            num_qps: 500,
            max_outstanding_reads: 256,
            pcie: PcieModel::gen3_x16(),
            link_bandwidth: Bandwidth::gbit_per_sec(100.0),
            propagation: 50 * NANOS,
            tx_pipeline_cycles: 40,
            rx_pipeline_cycles: 60,
            retransmit_timeout: 100 * MICROS,
            host_post_overhead: 250 * NANOS,
            poll_overhead: 100 * NANOS,
            kernel_dispatch_cycles: 8,
            fault: LinkFaultModel::none(),
            max_retries: 7,
            backoff_shift_cap: 6,
            cc: false,
            seed: 0x5150,
        }
    }

    /// RoCE payload budget per packet.
    pub fn max_payload(&self) -> usize {
        strom_wire::max_payload(self.mtu)
    }

    /// Time for the TX pipeline to emit a packet.
    pub fn tx_pipeline_time(&self) -> TimeDelta {
        self.clock.cycles(self.tx_pipeline_cycles)
    }

    /// Time for the RX pipeline (fixed stages, excluding store-and-forward).
    pub fn rx_pipeline_time(&self) -> TimeDelta {
        self.clock.cycles(self.rx_pipeline_cycles)
    }

    /// ICRC store-and-forward time for an IP packet of `ip_len` bytes:
    /// the receiver buffers the whole packet (at one datapath word per
    /// cycle) before validating the trailer (§7.1).
    pub fn store_and_forward_time(&self, ip_len: usize) -> TimeDelta {
        self.clock.stream_time(ip_len as u64, self.datapath_bytes)
    }

    /// Kernel fabric dispatch latency.
    pub fn kernel_dispatch_time(&self) -> TimeDelta {
        self.clock.cycles(self.kernel_dispatch_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_and_width() {
        let c10 = NicConfig::ten_gig();
        assert_eq!(c10.clock.period_ps(), 6400);
        assert_eq!(c10.datapath_bytes, 8);
        let c100 = NicConfig::hundred_gig();
        assert_eq!(c100.clock.period_ps(), 3106);
        assert_eq!(c100.datapath_bytes, 64);
    }

    #[test]
    fn store_and_forward_words_match_section_7_1() {
        // §7.1: a full MTU is 176 words at 8 B vs 22 words at 64 B. A
        // 1408-byte payload + headers lands close; check the word ratio
        // for an exact full MTU of 1408 B (176 * 8).
        let c10 = NicConfig::ten_gig();
        let c100 = NicConfig::hundred_gig();
        assert_eq!(c10.clock.cycles_for_bytes(1408, 8), 176);
        assert_eq!(c100.clock.cycles_for_bytes(1408, 64), 22);
        // And the 100 G store-and-forward is much shorter in time, too.
        assert!(c100.store_and_forward_time(1408) < c10.store_and_forward_time(1408) / 4);
    }

    #[test]
    fn datapath_sustains_line_rate() {
        // 8 B at 156.25 MHz = 10 Gbit/s; 64 B at 322 MHz = 164.9 Gbit/s.
        let c10 = NicConfig::ten_gig();
        let gbps10 = c10.datapath_bytes as f64 * 8.0 * c10.clock.mhz() * 1e6 / 1e9;
        assert!(gbps10 >= 10.0, "10G datapath = {gbps10} Gbit/s");
        let c100 = NicConfig::hundred_gig();
        let gbps100 = c100.datapath_bytes as f64 * 8.0 * c100.clock.mhz() * 1e6 / 1e9;
        assert!(gbps100 >= 100.0, "100G datapath = {gbps100} Gbit/s");
    }

    #[test]
    fn payload_budget() {
        assert_eq!(NicConfig::ten_gig().max_payload(), 1440);
    }

    #[test]
    fn platform_round_trips_and_expands() {
        for p in Platform::ALL {
            assert_eq!(Platform::from_name(p.name()), Some(p));
        }
        assert_eq!(Platform::from_name("25g"), None);
        assert_eq!(Platform::TenGig.config().datapath_bytes, 8);
        assert_eq!(Platform::HundredGig.config().datapath_bytes, 64);
        assert_eq!(Platform::TenGig.to_string(), "10g");
    }

    /// Partial-beat rounding of the ICRC store-and-forward, pinned at
    /// both datapath widths: a packet whose length is not a multiple of
    /// the word width occupies one extra cycle for its ragged final
    /// beat, and the time is exactly `ceil(len / width)` periods — the
    /// corpus fingerprints build on these constants, so any drift here
    /// must fail a unit test before it fails a golden.
    #[test]
    fn store_and_forward_partial_beats_are_pinned() {
        let c10 = NicConfig::ten_gig();
        let c100 = NicConfig::hundred_gig();
        // Full-MTU IP packet (1500 B): 188 words at 8 B (187.5 rounds
        // up), 24 words at 64 B (23.44 rounds up).
        assert_eq!(c10.store_and_forward_time(1500), 188 * 6400);
        assert_eq!(c100.store_and_forward_time(1500), 24 * 3106);
        // One byte past a word boundary costs a whole extra beat.
        assert_eq!(c10.store_and_forward_time(65), 9 * 6400);
        assert_eq!(c100.store_and_forward_time(65), 2 * 3106);
        // Exact multiples never round.
        assert_eq!(c100.store_and_forward_time(128), 2 * 3106);
        // And the time never under-charges the byte stream: at least
        // len * period / width for every length at both widths.
        for len in 1..=256usize {
            for c in [&c10, &c100] {
                let t = c.store_and_forward_time(len);
                let floor = (len as u64 * c.clock.period_ps()).div_ceil(c.datapath_bytes);
                assert!(
                    t >= floor,
                    "{len} B under-charged at {} B width",
                    c.datapath_bytes
                );
            }
        }
    }
}
