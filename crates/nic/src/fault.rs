//! Composable link fault injection.
//!
//! The paper's RoCE stack exists to survive an imperfect wire: per-QP
//! retransmission timers, the one-NAK-per-gap responder rule, and ICRC
//! validation (§4.1). This module models the wire's misbehaviour so those
//! mechanisms can be exercised deterministically:
//!
//! - **Loss** — independent Bernoulli drops or bursty Gilbert–Elliott
//!   loss (a two-state Markov chain: a mostly-clean *good* state and a
//!   lossy *bad* state, capturing real-link error bursts).
//! - **Corruption** — a random bit flip in the encoded frame. The
//!   receiver's ICRC (or IPv4 header checksum) detects it and the frame
//!   degrades into a loss, exactly as on real hardware.
//! - **Reordering** — a frame is held back by a random jitter delay,
//!   letting later frames overtake it.
//! - **Duplication** — the frame is delivered twice.
//!
//! Every decision draws from the testbed's seeded [`strom_sim::SimRng`],
//! so a chaos run is exactly reproducible from its seed plus the
//! [`LinkFaultModel`] in force.

use strom_sim::time::TimeDelta;
use strom_sim::SimRng;

/// The frame-loss component of a [`LinkFaultModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No injected loss.
    None,
    /// Each frame is dropped independently with this probability.
    Bernoulli(f64),
    /// Two-state Markov (bursty) loss: the link flips between a good and
    /// a bad state at every frame, with a per-state drop probability.
    GilbertElliott {
        /// P(good → bad) evaluated per frame.
        p_good_to_bad: f64,
        /// P(bad → good) evaluated per frame.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

/// Per-direction link state carried across frames (the Gilbert–Elliott
/// Markov chain position). Lives in the testbed, not the config, so the
/// config stays a plain value.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkFaultState {
    /// Whether the Gilbert–Elliott chain is currently in the bad state.
    pub bad: bool,
}

/// A composable description of how the wire misbehaves.
///
/// All knobs are plain values; the model is `Copy` and lives inside
/// [`crate::NicConfig`]. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultModel {
    /// Frame-loss process.
    pub loss: LossModel,
    /// Probability that a (non-dropped) frame has one bit flipped.
    pub corrupt_rate: f64,
    /// Probability that a frame is held back by a jitter delay, letting
    /// frames behind it arrive first.
    pub reorder_rate: f64,
    /// Maximum extra delay for a reordered frame; the actual delay is
    /// drawn uniformly from `[1, reorder_jitter]` picoseconds.
    pub reorder_jitter: TimeDelta,
    /// Probability that a frame is delivered twice.
    pub duplicate_rate: f64,
}

impl Default for LinkFaultModel {
    fn default() -> Self {
        Self::none()
    }
}

impl LinkFaultModel {
    /// A perfectly clean wire.
    pub fn none() -> Self {
        LinkFaultModel {
            loss: LossModel::None,
            corrupt_rate: 0.0,
            reorder_rate: 0.0,
            reorder_jitter: 0,
            duplicate_rate: 0.0,
        }
    }

    /// Independent Bernoulli loss only — the semantics of the old
    /// `loss_rate` knob.
    pub fn bernoulli(rate: f64) -> Self {
        LinkFaultModel {
            loss: if rate > 0.0 {
                LossModel::Bernoulli(rate)
            } else {
                LossModel::None
            },
            ..Self::none()
        }
    }

    /// Whether this model can never inject anything (fast path).
    pub fn is_quiet(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && self.corrupt_rate <= 0.0
            && self.reorder_rate <= 0.0
            && self.duplicate_rate <= 0.0
    }

    /// Decides whether the next frame on this link direction is dropped,
    /// advancing the Gilbert–Elliott chain in `state`.
    pub fn should_drop(&self, state: &mut LinkFaultState, rng: &mut SimRng) -> bool {
        match self.loss {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Advance the chain first, then sample the per-state loss:
                // the frame experiences the state the link is in *now*.
                if state.bad {
                    if rng.chance(p_bad_to_good) {
                        state.bad = false;
                    }
                } else if rng.chance(p_good_to_bad) {
                    state.bad = true;
                }
                rng.chance(if state.bad { loss_bad } else { loss_good })
            }
        }
    }

    /// Decides whether the frame is corrupted in flight.
    pub fn should_corrupt(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.corrupt_rate)
    }

    /// Decides the extra jitter delay for a reordered frame; `None` means
    /// the frame is delivered in order.
    pub fn reorder_delay(&self, rng: &mut SimRng) -> Option<TimeDelta> {
        if self.reorder_jitter > 0 && rng.chance(self.reorder_rate) {
            Some(rng.range(1, self.reorder_jitter + 1))
        } else {
            None
        }
    }

    /// Decides whether the frame is duplicated.
    pub fn should_duplicate(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.duplicate_rate)
    }
}

/// Flips one uniformly chosen bit of `frame` (in-flight corruption).
pub fn flip_random_bit(frame: &mut [u8], rng: &mut SimRng) {
    if frame.is_empty() {
        return;
    }
    let bit = rng.below(frame.len() as u64 * 8);
    frame[(bit / 8) as usize] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_quiet() {
        let m = LinkFaultModel::default();
        assert!(m.is_quiet());
        let mut rng = SimRng::seed(1);
        let mut st = LinkFaultState::default();
        for _ in 0..100 {
            assert!(!m.should_drop(&mut st, &mut rng));
            assert!(!m.should_corrupt(&mut rng));
            assert!(m.reorder_delay(&mut rng).is_none());
            assert!(!m.should_duplicate(&mut rng));
        }
    }

    #[test]
    fn bernoulli_matches_requested_rate() {
        let m = LinkFaultModel::bernoulli(0.25);
        let mut rng = SimRng::seed(7);
        let mut st = LinkFaultState::default();
        let drops = (0..10_000)
            .filter(|_| m.should_drop(&mut st, &mut rng))
            .count();
        assert!((2200..2800).contains(&drops), "drops = {drops}");
        assert!(!st.bad, "bernoulli never enters the bad state");
    }

    #[test]
    fn zero_rate_bernoulli_is_quiet() {
        assert!(LinkFaultModel::bernoulli(0.0).is_quiet());
        assert!(!LinkFaultModel::bernoulli(0.1).is_quiet());
    }

    #[test]
    fn gilbert_elliott_bursts() {
        // A sticky bad state produces clustered drops: the overall loss
        // rate sits between loss_good and loss_bad, and consecutive-drop
        // runs appear far more often than under Bernoulli at the same
        // average rate.
        let m = LinkFaultModel {
            loss: LossModel::GilbertElliott {
                p_good_to_bad: 0.02,
                p_bad_to_good: 0.2,
                loss_good: 0.0,
                loss_bad: 0.8,
            },
            ..LinkFaultModel::none()
        };
        let mut rng = SimRng::seed(42);
        let mut st = LinkFaultState::default();
        let outcomes: Vec<bool> = (0..20_000)
            .map(|_| m.should_drop(&mut st, &mut rng))
            .collect();
        let drops = outcomes.iter().filter(|&&d| d).count();
        // Stationary bad-state share = 0.02 / (0.02 + 0.2) ≈ 9 %, so the
        // long-run loss rate is ≈ 7.3 %.
        assert!((800..2000).contains(&drops), "drops = {drops}");
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        // Under independent loss at the same rate, P(pair) = p² would
        // give ≈ drops²/N pairs; bursts give several times more.
        let independent_pairs = drops * drops / outcomes.len();
        assert!(
            pairs > independent_pairs * 3,
            "pairs = {pairs} vs independent {independent_pairs}"
        );
    }

    #[test]
    fn reorder_delay_respects_jitter_bound() {
        let m = LinkFaultModel {
            reorder_rate: 1.0,
            reorder_jitter: 500,
            ..LinkFaultModel::none()
        };
        let mut rng = SimRng::seed(3);
        for _ in 0..1000 {
            let d = m.reorder_delay(&mut rng).expect("rate 1.0 always fires");
            assert!((1..=500).contains(&d), "delay = {d}");
        }
    }

    #[test]
    fn reorder_without_jitter_never_fires() {
        let m = LinkFaultModel {
            reorder_rate: 1.0,
            reorder_jitter: 0,
            ..LinkFaultModel::none()
        };
        let mut rng = SimRng::seed(4);
        assert!(m.reorder_delay(&mut rng).is_none());
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut rng = SimRng::seed(5);
        for len in [1usize, 7, 64, 1500] {
            let original = vec![0xA5u8; len];
            let mut frame = original.clone();
            flip_random_bit(&mut frame, &mut rng);
            let flipped: u32 = original
                .iter()
                .zip(&frame)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "len = {len}");
        }
    }

    #[test]
    fn bit_flip_on_empty_frame_is_a_noop() {
        let mut rng = SimRng::seed(6);
        flip_random_bit(&mut [], &mut rng);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let m = LinkFaultModel {
            loss: LossModel::GilbertElliott {
                p_good_to_bad: 0.1,
                p_bad_to_good: 0.3,
                loss_good: 0.01,
                loss_bad: 0.5,
            },
            corrupt_rate: 0.1,
            reorder_rate: 0.2,
            reorder_jitter: 1000,
            duplicate_rate: 0.05,
        };
        let run = || {
            let mut rng = SimRng::seed(99);
            let mut st = LinkFaultState::default();
            (0..500)
                .map(|_| {
                    (
                        m.should_drop(&mut st, &mut rng),
                        m.should_corrupt(&mut rng),
                        m.reorder_delay(&mut rng),
                        m.should_duplicate(&mut rng),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
