//! The testbed's discrete-event vocabulary.

use bytes::Bytes;

use strom_proto::WorkRequest;
use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

/// A node index in the testbed (0 or 1 for the back-to-back pair; 0..N
/// for a switched cluster).
pub type NodeId = usize;

/// Everything that can happen in the simulated world.
///
/// Every timer-wheel bucket and heap slot pays for the largest variant,
/// so payloads that would bloat the enum ride behind a `Box` (the
/// `WorkRequest` below); a test pins the whole enum to one cache line.
#[derive(Debug)]
pub enum Event {
    /// A host command reached the NIC Controller (after the MMIO store).
    CmdArrive {
        /// The issuing node.
        node: NodeId,
        /// Queue pair of the command.
        qpn: Qpn,
        /// The work request (boxed: it is the fattest payload in the
        /// simulation, and commands are rare next to frames and DMAs).
        wr: Box<WorkRequest>,
        /// Work-request handle assigned at post time.
        handle: u64,
    },
    /// An encoded frame finished the receiver's RX pipeline and ICRC
    /// check and is ready for protocol processing.
    FrameArrive {
        /// The receiving node.
        node: NodeId,
        /// The raw frame bytes (parsed on arrival — bit-accurate RX).
        /// Carried as `Bytes` so fault-model duplication and the frame
        /// pool share one buffer instead of copying it.
        frame: Bytes,
    },
    /// A DMA write to host memory completed (data becomes visible to CPU
    /// pollers and watches).
    DmaWriteDone {
        /// The node whose memory was written.
        node: NodeId,
        /// Destination virtual address.
        vaddr: u64,
        /// The bytes written.
        data: Bytes,
    },
    /// A DMA read issued by a kernel completed; the fabric routes the data
    /// back to the kernel by tag.
    KernelDmaReadDone {
        /// The node whose kernel issued the read.
        node: NodeId,
        /// The kernel's RPC op-code.
        op: RpcOpCode,
        /// Kernel-chosen completion tag.
        tag: u32,
        /// Source virtual address.
        vaddr: u64,
        /// Read length.
        len: u32,
    },
    /// Periodic retransmission-timer scan for one node.
    RetransmitCheck {
        /// The node to scan.
        node: NodeId,
    },
    /// The paced transmit slot for one QP's queued request packets came
    /// up (DCQCN rate limiting): release the head of the queue. The
    /// per-QP deadline guard in the handler makes stale ticks no-ops.
    PacerTick {
        /// The transmitting node.
        node: NodeId,
        /// The rate-limited QP.
        qpn: Qpn,
    },
    /// The cluster switch has at least one ingress frame eligible for
    /// arbitration at this time; the testbed runs a grant pass. Extra
    /// ticks at the same instant are harmless no-ops (the first drains
    /// every eligible frame).
    SwitchTick,
    /// An ARP frame arrived (network bring-up, §4.1's ARP module).
    ArpArrive {
        /// The receiving node.
        node: NodeId,
        /// The raw 28-byte ARP payload.
        frame: Vec<u8>,
    },
}

impl Event {
    /// The partition that would own this event under the PDES split of
    /// the cluster: per-node events belong to their node, switch
    /// arbitration to the switch partition (`switch` is the partition id
    /// the caller assigns it — conventionally the node count).
    ///
    /// This is the ownership tag the lookahead audit uses to classify a
    /// scheduled event as partition-local or cross-partition.
    pub fn owner(&self, switch: usize) -> usize {
        match self {
            Event::CmdArrive { node, .. }
            | Event::FrameArrive { node, .. }
            | Event::DmaWriteDone { node, .. }
            | Event::KernelDmaReadDone { node, .. }
            | Event::RetransmitCheck { node }
            | Event::PacerTick { node, .. }
            | Event::ArpArrive { node, .. } => *node,
            Event::SwitchTick => switch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The event engine moves `Scheduled<Event>` values on every insert
    /// and cascade; keep the payload within one cache line so those
    /// moves stay cheap. Growing a variant past this is a perf
    /// regression, not a compile error — hence the pin.
    #[test]
    fn event_fits_in_a_cache_line() {
        let size = std::mem::size_of::<Event>();
        assert!(size <= 64, "Event grew to {size} B (> 64)");
    }
}
