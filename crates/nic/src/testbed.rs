//! The StRoM testbed: N simulated NIC + host pairs around a network.
//!
//! Two network geometries share one datapath. [`Testbed`] is the
//! simulated equivalent of §6.1's setup ("we directly connected two
//! StRoM NICs to each other"): exactly two nodes, point-to-point, no
//! switch — a thin wrapper over [`ClusterTestbed::transparent_pair`].
//! [`ClusterTestbed::switched`] instead places N nodes around a
//! deterministic store-and-forward switch ([`strom_sim::Switch`]), which
//! adds per-egress-port serialization, switching latency, bounded egress
//! queues with tail-drop, and round-robin arbitration — the substrate
//! for multi-node experiments like the all-to-all shuffle.
//!
//! Every packet still crosses the wire as real bytes — encoded on
//! transmit and parsed (with ICRC validation) on receive — but the byte
//! handling is pooled and zero-copy: transmit draws a reusable buffer
//! from a small frame pool and [`Packet::encode_into`] fills it in one
//! pass; the frame travels as [`Bytes`]; fault injection flips bits in
//! the buffer in place before it is frozen; and [`Packet::parse`] returns
//! the payload as an O(1) slice of the frame. After RX dispatch the
//! buffer returns to the pool if nothing still references its payload.
//! Host memory is byte-accurate behind the TLB, and every latency
//! component is charged explicitly:
//!
//! ```text
//! host post → MMIO → TX pipeline → payload DMA fetch → wire
//!     → RX store-and-forward (ICRC) → RX pipeline → protocol FSM
//!     → { DMA write to memory | kernel fabric | ACK generation }
//! ```
//!
//! Experiments drive the testbed co-routine style: `post` work requests,
//! then `run_until_watch`/`run_until_complete` to advance simulated time
//! until the interesting state change.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

use strom_kernels::framework::{Kernel, KernelAction};
use strom_mem::{HostMemory, Tlb};
use strom_proto::{
    CompletionStatus, Dcqcn, DcqcnConfig, PacketDescriptor, PayloadSource, Requester, Responder,
    ResponderAction, RetransmissionTimer, StateTable, WorkRequest,
};
use strom_sim::switch::{Delivery, EcnConfig, Switch, SwitchConfig, SwitchPortCounters, TailDrop};
use strom_sim::time::{Time, TimeDelta};
use strom_sim::{Bandwidth, EventQueue, LinkSerializer, Pacer, SimRng};
use strom_telemetry::{
    Counter, DropReason, Gauge, HistogramHandle, MetricsRegistry, TraceEvent, TraceSink,
    WireCounters,
};
use strom_wire::bth::{Aeth, AethSyndrome, Psn, Qpn};
use strom_wire::opcode::{Opcode, RpcOpCode};
use strom_wire::packet::{Packet, PacketError};
use strom_wire::pcap::PcapWriter;
use strom_wire::segment::segment_message;

use crate::config::NicConfig;
use crate::event::{Event, NodeId};
use crate::fabric::KernelFabric;
use crate::fault::{self, LinkFaultModel, LinkFaultState};

/// A small free-list of reusable frame buffers for the transmit path.
///
/// `take` hands out a cleared `Vec` for [`Packet::encode_into`]; the Vec
/// is frozen into [`Bytes`] for transit (a pure move in the vendored
/// shim) and `put` reclaims it after RX dispatch via
/// [`Bytes::try_reclaim`]. Reclaim is best-effort: it succeeds only when
/// nothing still references the frame — true for ACKs and control
/// packets, false while a zero-copy payload slice is held by a pending
/// DMA event or reassembly state, in which case the buffer is simply
/// dropped and the pool refills from later frames.
#[derive(Debug, Default)]
struct FramePool {
    free: Vec<Vec<u8>>,
}

impl FramePool {
    /// Enough for the frames in flight on a two-node wire; beyond this,
    /// extra buffers are dropped rather than hoarded.
    const MAX_POOLED: usize = 32;

    fn take(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, frame: Bytes) {
        if self.free.len() < Self::MAX_POOLED {
            if let Ok(mut v) = frame.try_reclaim() {
                v.clear();
                self.free.push(v);
            }
        }
    }
}

/// Handle to a registered memory watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchId(usize);

/// A CPU fallback handler for RPC op-codes with no matching kernel
/// (§5.1: "either a fallback implementation on the remote CPU is
/// triggered (if configured a priori by the remote CPU) or an error code
/// is written back to the requesting node").
///
/// The handler runs on the remote host CPU: it receives the host memory
/// and the RPC parameters and returns the requester-side target address
/// plus the response bytes (sent back as an RDMA WRITE), or `None` to
/// stay silent. The testbed charges the interrupt/wakeup latency plus any
/// CPU time the handler reports.
pub trait CpuFallback {
    /// Handles one RPC on the host CPU.
    ///
    /// Returns `(target_address, response, cpu_time)`.
    fn handle(
        &mut self,
        mem: &mut HostMemory,
        qpn: Qpn,
        params: &Bytes,
    ) -> Option<(u64, Bytes, TimeDelta)>;
}

#[derive(Debug)]
struct Watch {
    node: NodeId,
    addr: u64,
    len: u64,
    /// Bytes of the watched range not yet written.
    remaining: u64,
    fired_at: Option<Time>,
}

/// Per-node NIC + host state.
struct Node {
    mem: HostMemory,
    tlb: Tlb,
    state: StateTable,
    responder: Responder,
    requester: Requester,
    timer: RetransmissionTimer,
    fabric: KernelFabric,
    /// PCIe occupancy (shared by TX fetches, RX stores, kernel DMA).
    dma: LinkSerializer,
    /// Next time the host may issue a command (AVX2-store pacing, §7.1).
    next_cmd_issue: Time,
    /// Receive kernel tapped into incoming WRITE payload (§3.5).
    receive_tap: Option<RpcOpCode>,
    /// Firing time of the earliest pending RetransmitCheck event, if any
    /// (dedup: one outstanding check per node keeps the event count
    /// linear).
    check_at: Option<Time>,
    /// Kernel tapped into *outgoing* WRITE payload (send kernel, §3.5).
    send_tap: Option<RpcOpCode>,
    /// Address-resolution cache (the open-source ARP module of §4.1).
    arp: strom_wire::arp::ArpCache,
    /// Per-kernel stream occupancy: a kernel consumes `datapath / II`
    /// bytes per cycle (§3.4), so back-to-back payload queues behind its
    /// pipeline when II > 1.
    kernel_occ: Vec<(RpcOpCode, LinkSerializer)>,
    /// CPU fallback handlers by RPC op-code (§5.1).
    fallbacks: Vec<(RpcOpCode, Box<dyn CpuFallback>)>,
    /// DCQCN reaction point: per-QP transmit rates, driven by received
    /// CNPs. Idle (all QPs at line rate) unless `cfg.cc` is on and
    /// congestion is signalled.
    dcqcn: Dcqcn,
    /// Per-QP transmit pacers enforcing the DCQCN rate (only used when
    /// `cfg.cc` is on; a CC-disabled testbed takes the exact pre-CC
    /// timing path).
    pacers: Vec<Pacer>,
    /// Per-QP queues of request packets awaiting their paced transmit
    /// slot. Pacing must bind at *release* time, not post time — a rate
    /// cut mid-message has to slow the packets still queued, which
    /// pre-computed admission times could never do.
    txq: Vec<VecDeque<PacedTx>>,
    /// The live [`Event::PacerTick`] deadline per QP (dedup guard, same
    /// discipline as `check_at`).
    tick_at: Vec<Option<Time>>,
    /// Wire datapath statistics — the same struct
    /// [`ClusterTestbed::status`] hands back, so nothing is
    /// hand-mirrored into the register view.
    counters: WireCounters,
}

/// Geometry and timing of the cluster switch, the knobs
/// [`ClusterTestbed::switched`] takes on top of the per-NIC
/// [`NicConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SwitchParams {
    /// Egress serialization rate per switch port; `None` uses the NIC
    /// link rate from the [`NicConfig`] (a non-blocking switch).
    pub port_rate: Option<Bandwidth>,
    /// Store-and-forward switching latency per frame.
    pub latency: TimeDelta,
    /// Egress queue bound per port, in frames; the switch tail-drops
    /// beyond it.
    pub egress_capacity: usize,
    /// ECN marking policy for the egress queues; `None` disables marking
    /// (the pre-CC switch, bit-identical behaviour).
    pub ecn: Option<EcnConfig>,
}

impl Default for SwitchParams {
    /// A shallow-buffered top-of-rack switch: 500 ns switching latency,
    /// line-rate ports, 64-frame egress queues, no ECN marking.
    fn default() -> Self {
        SwitchParams {
            port_rate: None,
            latency: 500 * strom_sim::time::NANOS,
            egress_capacity: 64,
            ecn: None,
        }
    }
}

/// What rides through the switch alongside each frame: the encoded
/// bytes plus the fault-model decisions already drawn at transmit time
/// (the RNG draw order must not depend on switch queueing).
struct SwitchFrame {
    frame: Bytes,
    ip_len: usize,
    /// Reorder jitter drawn at transmit, applied at delivery.
    jitter: Option<TimeDelta>,
    /// Duplicate decision drawn at transmit.
    dup: bool,
}

/// One packet parked in a QP's paced transmit queue: either a request
/// (arms the retransmission timer on release) or a READ response
/// (responder data that must survive requester-side timeout flushes).
struct PacedTx {
    peer: NodeId,
    pkt: Packet,
    payload_ready: Time,
    arm_timer: bool,
}

/// Per-egress-port metrics mirrors into the shared registry.
struct PortMetrics {
    frames_out: Counter,
    tail_drops: Counter,
    ecn_marked: Counter,
    queue_peak: Gauge,
}

/// The cluster switch plus its testbed-side plumbing.
struct SwitchState {
    model: Switch<SwitchFrame>,
    /// Reusable arbitration output buffers (zero steady-state allocation).
    deliveries: Vec<Delivery<SwitchFrame>>,
    drops: Vec<TailDrop<SwitchFrame>>,
    /// Per-egress-port metrics mirrors.
    port_metrics: Vec<PortMetrics>,
}

/// What the observation-only lookahead audit saw over a run: how often
/// the testbed scheduled an event across a partition boundary (per
/// [`Event::owner`]), and how far into the future the nearest such event
/// landed.
///
/// `min_cross_delta >= floor` with `violations == 0` is the empirical
/// footing for the PDES engine's conservative window (DESIGN.md §15):
/// it certifies that this workload never schedules a cross-partition
/// event closer than the physical lookahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookaheadReport {
    /// Cross-partition events scheduled while dispatching.
    pub cross_events: u64,
    /// Smallest observed cross-partition scheduling distance
    /// (`u64::MAX` when no cross events were seen).
    pub min_cross_delta: TimeDelta,
    /// Cross-partition events scheduled closer than `floor`.
    pub violations: u64,
    /// The lookahead being audited against (the cable propagation
    /// delay).
    pub floor: TimeDelta,
}

/// Running state of the lookahead audit.
#[derive(Debug)]
struct LookaheadAudit {
    /// Owner of the event currently being dispatched (valid only while
    /// `in_dispatch`).
    current_owner: usize,
    /// Firing time of the event currently being dispatched.
    now: Time,
    /// Audit samples are taken only for events scheduled from inside
    /// `dispatch_event` — host-driver posts from outside the loop have
    /// no owning partition to be "cross" from.
    in_dispatch: bool,
    report: LookaheadReport,
}

/// The testbed's event queue behind the single scheduling chokepoint:
/// every `schedule_at` in the testbed goes through here, so the
/// lookahead audit observes each event exactly once, tagged with
/// [`Event::owner`] — without touching any call site. The audit is
/// observation-only: enabled or not, the scheduled event stream is
/// bit-identical (the chaos fingerprints pin this).
#[derive(Debug)]
struct AuditedQueue {
    inner: EventQueue<Event>,
    /// Partition id assigned to the switch (= the node count).
    switch_owner: usize,
    audit: Option<LookaheadAudit>,
}

impl AuditedQueue {
    fn new(switch_owner: usize) -> Self {
        Self {
            inner: EventQueue::new(),
            switch_owner,
            audit: None,
        }
    }

    /// Marks the start of dispatching `event` (records its owner as the
    /// source partition for any events it schedules).
    fn begin_dispatch(&mut self, owner: usize, now: Time) {
        if let Some(a) = &mut self.audit {
            a.current_owner = owner;
            a.now = now;
            a.in_dispatch = true;
        }
    }

    fn end_dispatch(&mut self) {
        if let Some(a) = &mut self.audit {
            a.in_dispatch = false;
        }
    }

    fn schedule_at(&mut self, at: Time, event: Event) {
        if let Some(a) = &mut self.audit {
            if a.in_dispatch && event.owner(self.switch_owner) != a.current_owner {
                let delta = at.saturating_sub(a.now);
                a.report.cross_events += 1;
                a.report.min_cross_delta = a.report.min_cross_delta.min(delta);
                if delta < a.report.floor {
                    a.report.violations += 1;
                }
            }
        }
        self.inner.schedule_at(at, event);
    }

    fn now(&self) -> Time {
        self.inner.now()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn pop(&mut self) -> Option<strom_sim::Scheduled<Event>> {
        self.inner.pop()
    }

    fn pop_batch(&mut self, out: &mut Vec<strom_sim::Scheduled<Event>>) -> usize {
        self.inner.pop_batch(out)
    }

    fn advance_to(&mut self, t: Time) {
        self.inner.advance_to(t)
    }

    fn set_telemetry(&mut self, trace: TraceSink, dispatched: Option<Counter>) {
        self.inner.set_telemetry(trace, dispatched)
    }
}

/// The simulated world: N nodes and the network between them —
/// point-to-point wires for [`ClusterTestbed::transparent_pair`], a
/// store-and-forward switch for [`ClusterTestbed::switched`].
pub struct ClusterTestbed {
    cfg: NicConfig,
    nodes: Vec<Node>,
    /// Egress serializers: `links[n]` is node n's transmit direction.
    links: Vec<LinkSerializer>,
    queue: AuditedQueue,
    rng: SimRng,
    /// Per-directed-pair fault-model state: `fault_state[src * n + dst]`
    /// is the Gilbert–Elliott chain for frames sent by `src` to `dst`.
    fault_state: Vec<LinkFaultState>,
    /// Per-destination-port fault-model overrides (`None` = the global
    /// model in `cfg.fault`); lets a chaos run degrade one switch port
    /// while the others stay healthy.
    port_fault: Vec<Option<LinkFaultModel>>,
    /// The cluster switch, absent in transparent (point-to-point) mode.
    switch: Option<SwitchState>,
    /// Destination node per (source node, queue pair), recorded by
    /// [`ClusterTestbed::connect_qp_between`].
    qp_peer: HashMap<(NodeId, Qpn), NodeId>,
    /// Completion time and outcome per (node, handle).
    completions: HashMap<(NodeId, u64), (Time, CompletionStatus)>,
    /// Protocol wr_id → testbed handle.
    wr_map: HashMap<(NodeId, u64), u64>,
    next_handle: u64,
    watches: Vec<Watch>,
    /// Latest scheduled frame arrival per receiving node. The RX path is
    /// a FIFO: a short packet's smaller store-and-forward delay must not
    /// let it overtake an earlier, larger packet on the same wire.
    last_arrival: Vec<Time>,
    /// Reusable transmit frame buffers (zero-allocation steady state).
    pool: FramePool,
    /// Testbed-level trace sink (disabled until [`Testbed::enable_tracing`]).
    trace: TraceSink,
    /// Shared metrics registry: completion-latency histograms and the
    /// sim dispatch counter live here; experiments may add their own.
    metrics: MetricsRegistry,
    /// Completion-latency histogram handles, indexed by [`LatKind`].
    lat: [HistogramHandle; 3],
    /// Wire capture (disabled until [`Testbed::enable_capture`]).
    capture: Option<PcapWriter>,
    /// Post time and operation kind per (node, handle), consumed when the
    /// work request completes to feed the latency histograms.
    post_info: HashMap<(NodeId, u64), (Time, LatKind)>,
    /// Reusable buffer for [`Self::step_batch`] (zero steady-state
    /// allocation).
    batch_buf: Vec<strom_sim::Scheduled<Event>>,
}

/// Work-request classes with separate completion-latency histograms.
#[derive(Debug, Clone, Copy)]
enum LatKind {
    Write = 0,
    Read = 1,
    Rpc = 2,
}

impl LatKind {
    fn of(wr: &WorkRequest) -> LatKind {
        match wr {
            WorkRequest::Read { .. } => LatKind::Read,
            WorkRequest::Rpc { .. } | WorkRequest::RpcWrite { .. } => LatKind::Rpc,
            WorkRequest::Write { .. } | WorkRequest::WriteInline { .. } => LatKind::Write,
        }
    }
}

impl ClusterTestbed {
    /// Builds the two-node point-to-point geometry of the original
    /// testbed: no switch in the path, frames serialize on the sender's
    /// link and arrive after propagation + RX store-and-forward. All
    /// timing, RNG draws, and telemetry are bit-identical to the
    /// pre-cluster `Testbed` (the chaos-soak fingerprints and the pcap
    /// golden fixture pin this).
    pub fn transparent_pair(cfg: NicConfig) -> Self {
        Self::build(cfg, 2, None)
    }

    /// Builds `n` nodes around a deterministic store-and-forward switch:
    /// every frame serializes on the sender's link, propagates to the
    /// switch, waits out the switching latency, wins a round-robin
    /// grant, serializes on the egress port (or tail-drops at the queue
    /// bound), and then propagates on to the receiver.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn switched(cfg: NicConfig, n: usize, params: SwitchParams) -> Self {
        assert!(n >= 2, "a cluster needs at least two nodes");
        Self::build(cfg, n, Some(params))
    }

    fn build(cfg: NicConfig, n: usize, switch: Option<SwitchParams>) -> Self {
        let node = |seed: u64| Node {
            mem: HostMemory::new(),
            tlb: Tlb::new(),
            state: StateTable::new(cfg.num_qps),
            responder: Responder::new(cfg.num_qps, cfg.max_payload()),
            requester: Requester::new(cfg.num_qps, cfg.max_outstanding_reads, cfg.max_payload()),
            timer: RetransmissionTimer::new(cfg.num_qps, cfg.retransmit_timeout)
                .with_backoff_cap(cfg.backoff_shift_cap),
            fabric: KernelFabric::new(seed),
            dma: LinkSerializer::new(cfg.pcie.bandwidth),
            next_cmd_issue: 0,
            receive_tap: None,
            check_at: None,
            send_tap: None,
            arp: strom_wire::arp::ArpCache::new(),
            kernel_occ: Vec::new(),
            fallbacks: Vec::new(),
            dcqcn: Dcqcn::new(
                DcqcnConfig::for_line_rate(cfg.link_bandwidth.as_gbit_per_sec() * 1e9),
                cfg.num_qps,
            ),
            pacers: vec![Pacer::new(); cfg.num_qps],
            txq: (0..cfg.num_qps).map(|_| VecDeque::new()).collect(),
            tick_at: vec![None; cfg.num_qps],
            counters: WireCounters::default(),
        };
        let metrics = MetricsRegistry::default();
        let lat = [
            metrics.histogram("latency.write_ps"),
            metrics.histogram("latency.read_ps"),
            metrics.histogram("latency.rpc_ps"),
        ];
        let switch = switch.map(|params| SwitchState {
            model: Switch::new(SwitchConfig {
                ports: n,
                port_rate: params.port_rate.unwrap_or(cfg.link_bandwidth),
                latency: params.latency,
                egress_capacity: params.egress_capacity,
                ecn: params.ecn,
            }),
            deliveries: Vec::new(),
            drops: Vec::new(),
            port_metrics: (0..n)
                .map(|p| PortMetrics {
                    frames_out: metrics.counter(&format!("switch.port{p}.frames_out")),
                    tail_drops: metrics.counter(&format!("switch.port{p}.tail_drops")),
                    ecn_marked: metrics.counter(&format!("switch.port{p}.ecn_marked")),
                    queue_peak: metrics.gauge(&format!("switch.port{p}.queue_peak")),
                })
                .collect(),
        });
        Self {
            nodes: (0..n).map(|i| node(cfg.seed ^ (0xA + i as u64))).collect(),
            links: (0..n)
                .map(|_| LinkSerializer::new(cfg.link_bandwidth))
                .collect(),
            queue: AuditedQueue::new(n),
            rng: SimRng::seed(cfg.seed),
            fault_state: vec![LinkFaultState::default(); n * n],
            port_fault: vec![None; n],
            switch,
            qp_peer: HashMap::new(),
            completions: HashMap::new(),
            wr_map: HashMap::new(),
            next_handle: 1,
            watches: Vec::new(),
            last_arrival: vec![0; n],
            pool: FramePool::default(),
            trace: TraceSink::default(),
            metrics,
            lat,
            capture: None,
            post_info: HashMap::new(),
            batch_buf: Vec::new(),
            cfg,
        }
    }

    /// Enables structured tracing with a bounded ring of `capacity`
    /// records, threading the sink through every instrumented layer: the
    /// event queue publishes the simulation clock to it, and the
    /// requesters, retransmission timers, and TLBs of both nodes emit
    /// into it alongside the testbed's own packet/DMA/kernel events.
    /// Returns a handle to the sink (also available via [`Self::trace`]).
    pub fn enable_tracing(&mut self, capacity: usize) -> TraceSink {
        let sink = TraceSink::enabled(capacity);
        self.queue.set_telemetry(
            sink.clone(),
            Some(self.metrics.counter("sim.events_dispatched")),
        );
        for n in &mut self.nodes {
            n.requester.set_trace(sink.clone());
            n.timer.set_trace(sink.clone());
            n.tlb.set_trace(sink.clone());
        }
        self.trace = sink.clone();
        sink
    }

    /// The testbed's trace sink (disabled unless
    /// [`Self::enable_tracing`] was called).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The testbed's metrics registry (completion-latency histograms,
    /// the sim dispatch counter, and anything experiments add).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Starts capturing every RoCE frame that reaches the wire into an
    /// in-memory pcap file (nanosecond timestamps, Ethernet link type).
    /// Frames the fault model drops outright are never encoded, so they
    /// do not appear; corrupted frames appear as transmitted (post-flip).
    /// ARP uses a bare 28-byte body in this model — not an Ethernet
    /// frame — so bring-up traffic is not captured.
    pub fn enable_capture(&mut self) {
        self.capture = Some(PcapWriter::new());
    }

    /// The captured pcap file bytes, if [`Self::enable_capture`] is on.
    pub fn pcap_bytes(&self) -> Option<&[u8]> {
        self.capture.as_ref().map(|c| c.as_bytes())
    }

    /// The configuration in force.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Advances simulated time by `delta` without processing events —
    /// models host CPU work (e.g. a software checksum pass) between
    /// simulated I/O operations.
    pub fn advance(&mut self, delta: TimeDelta) {
        let t = self.queue.now() + delta;
        self.queue.advance_to(t);
    }

    /// Timestamp of the earliest pending event, if any. Open-loop
    /// drivers use this to process everything due before an arrival
    /// time, then [`Self::advance`] the clock to the arrival itself.
    pub fn next_event_at(&self) -> Option<Time> {
        self.queue.inner.peek_time()
    }

    /// Mutable access to a node's host memory (the application's view).
    pub fn mem(&mut self, node: NodeId) -> &mut HostMemory {
        &mut self.nodes[node].mem
    }

    /// Immutable access to a node's kernel fabric (statistics).
    pub fn fabric(&self, node: NodeId) -> &KernelFabric {
        &self.nodes[node].fabric
    }

    /// Mutable access to a node's kernel fabric (failure injection).
    pub fn fabric_mut(&mut self, node: NodeId) -> &mut KernelFabric {
        &mut self.nodes[node].fabric
    }

    /// When the kernel with `op` on `node` will have finished consuming
    /// all stream payload fed to it so far (its pipeline occupancy; §3.4).
    /// Returns 0 if the kernel has consumed nothing.
    pub fn kernel_busy_until(&self, node: NodeId, op: RpcOpCode) -> Time {
        self.nodes[node]
            .kernel_occ
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, s)| s.busy_until())
            .unwrap_or(0)
    }

    /// Retransmitted packets on a node (loss-recovery diagnostics).
    pub fn retransmissions(&self, node: NodeId) -> u64 {
        self.nodes[node].requester.retransmissions()
    }

    /// Frames dropped by injected link loss toward `node`.
    pub fn frames_lost(&self, node: NodeId) -> u64 {
        self.nodes[node].counters.frames_lost
    }

    /// Payload bytes delivered into `node`'s memory by WRITEs.
    pub fn payload_bytes_rx(&self, node: NodeId) -> u64 {
        self.nodes[node].counters.payload_bytes_rx
    }

    /// Pins `len` bytes on `node` and installs the pages in the NIC TLB
    /// (the driver's pin + populate flow, §4.3). Returns the base address.
    pub fn pin(&mut self, node: NodeId, len: u64) -> u64 {
        let n = &mut self.nodes[node];
        let (base, pages) = n.mem.pin(len).expect("pin failed");
        n.tlb.insert_region(base, &pages).expect("TLB full");
        base
    }

    /// Initializes a queue pair between nodes 0 and 1 (the out-of-band
    /// connection setup RoCE performs before one-sided traffic) — the
    /// original two-host API.
    pub fn connect_qp(&mut self, qpn: Qpn) {
        self.connect_qp_between(0, 1, qpn);
    }

    /// Initializes a queue pair between two specific nodes; subsequent
    /// traffic posted on `qpn` from either endpoint is routed to the
    /// other.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn connect_qp_between(&mut self, a: NodeId, b: NodeId, qpn: Qpn) {
        assert_ne!(a, b, "a queue pair connects two distinct nodes");
        // Both directions start at PSN 0 for reproducibility.
        self.nodes[a].state.init_qp(qpn, 0, 0);
        self.nodes[b].state.init_qp(qpn, 0, 0);
        self.qp_peer.insert((a, qpn), b);
        self.qp_peer.insert((b, qpn), a);
    }

    /// Number of nodes in the testbed.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node at the far end of `qpn` as seen from `node`.
    fn peer_of(&self, node: NodeId, qpn: Qpn) -> NodeId {
        match self.qp_peer.get(&(node, qpn)) {
            Some(&peer) => peer,
            // Pre-cluster QPs were implicitly 0 ↔ 1; keep that default so
            // two-node flows that skip connect_qp (e.g. raw ACK probes)
            // behave as before.
            None => {
                debug_assert!(
                    self.nodes.len() == 2,
                    "unconnected qpn {qpn} on node {node}"
                );
                1 - node
            }
        }
    }

    /// The switch's forwarding counters for one port, when running in
    /// switched mode.
    pub fn switch_counters(&self, port: usize) -> Option<SwitchPortCounters> {
        self.switch.as_ref().map(|s| s.model.counters(port))
    }

    /// Total frames tail-dropped across all switch egress ports (0 in
    /// transparent mode).
    pub fn switch_tail_drops(&self) -> u64 {
        self.switch
            .as_ref()
            .map(|s| s.model.total_tail_drops())
            .unwrap_or(0)
    }

    /// Deploys a StRoM kernel on `node` (§5.1 multi-kernel deployment).
    pub fn deploy_kernel(&mut self, node: NodeId, kernel: Box<dyn Kernel>) {
        self.nodes[node].fabric.register(kernel);
    }

    /// Taps incoming WRITE payload on `node` into the kernel with the
    /// given op-code (receive kernel, §3.5).
    pub fn set_receive_tap(&mut self, node: NodeId, op: RpcOpCode) {
        self.nodes[node].receive_tap = Some(op);
    }

    /// Taps *outgoing* WRITE payload on `node` into the kernel with the
    /// given op-code (send kernel, §3.5: kernels can "process data before
    /// being sent").
    pub fn set_send_tap(&mut self, node: NodeId, op: RpcOpCode) {
        self.nodes[node].send_tap = Some(op);
    }

    /// Configures a CPU fallback for RPCs with op-code `op` on `node`
    /// (§5.1). Used when the kernel is not deployed on the NIC.
    pub fn set_cpu_fallback(&mut self, node: NodeId, op: RpcOpCode, handler: Box<dyn CpuFallback>) {
        self.nodes[node].fallbacks.push((op, handler));
    }

    /// Invokes a kernel on `node`'s *own* NIC (local StRoM invocation,
    /// §5.2: "StRoM kernels can also be invoked by the local host by
    /// posting an RPC to the local network card"). The kernel's network
    /// output, if any, is transmitted from `node` on `qpn`.
    pub fn post_local_rpc(&mut self, node: NodeId, qpn: Qpn, rpc_op: RpcOpCode, params: Bytes) {
        // The command crosses MMIO to the Controller, which forwards it to
        // the kernel fabric directly — no network hop.
        let now = self.queue.now();
        let n = &mut self.nodes[node];
        let t_store = (now + self.cfg.host_post_overhead).max(n.next_cmd_issue);
        n.next_cmd_issue = t_store + self.cfg.pcie.cmd_issue_interval;
        let at = t_store + self.cfg.pcie.mmio_latency + self.cfg.kernel_dispatch_time();
        // Model as an immediate fabric dispatch at `at` via the event
        // queue: reuse CmdArrive with a marker is invasive; dispatch
        // directly with the right base time instead.
        if let Some(actions) = self.nodes[node].fabric.invoke(rpc_op, qpn, params) {
            self.trace.emit(TraceEvent::KernelEnter {
                node: node as u8,
                op: rpc_op.0,
            });
            self.exec_kernel_actions(node, rpc_op, actions, at);
        }
    }

    /// Sets independent Bernoulli link loss — a convenience wrapper around
    /// [`Self::set_fault_model`] preserving the original single-knob API.
    /// Replaces any fault model in force.
    pub fn set_loss_rate(&mut self, rate: f64) {
        self.cfg.fault = LinkFaultModel::bernoulli(rate);
    }

    /// Installs a composable link fault model (loss, corruption,
    /// reordering, duplication) and resets the per-direction loss-model
    /// state, so the chaos schedule is fully determined by the model plus
    /// the testbed seed. Clears any per-port overrides.
    pub fn set_fault_model(&mut self, model: LinkFaultModel) {
        self.cfg.fault = model;
        self.fault_state = vec![LinkFaultState::default(); self.nodes.len() * self.nodes.len()];
        self.port_fault = vec![None; self.nodes.len()];
    }

    /// Overrides the fault model for all traffic *toward* `dst` (the
    /// switch egress port facing that node), leaving other ports on the
    /// global model — a chaos run can degrade one port while the rest of
    /// the cluster stays healthy. Resets the fault state of the affected
    /// directed pairs.
    pub fn set_port_fault_model(&mut self, dst: NodeId, model: LinkFaultModel) {
        let n = self.nodes.len();
        assert!(dst < n, "port out of range");
        self.port_fault[dst] = Some(model);
        for src in 0..n {
            self.fault_state[src * n + dst] = LinkFaultState::default();
        }
    }

    /// The fault model in force for frames from `src` to `dst`.
    fn fault_model_for(&self, _src: NodeId, dst: NodeId) -> LinkFaultModel {
        self.port_fault[dst].unwrap_or(self.cfg.fault)
    }

    /// Whether `qpn` on `node` is in the terminal error state (retry
    /// budget exhausted).
    pub fn qp_errored(&self, node: NodeId, qpn: Qpn) -> bool {
        self.nodes[node].requester.is_errored(qpn)
    }

    /// Performs network bring-up: each node sends an ARP who-has for
    /// every peer and answers the peers' requests, populating all
    /// resolution caches over the simulated wire (§4.1: "we use an open
    /// source module to handle the Address Resolution Protocol"). Returns
    /// the time at which every cache is populated.
    pub fn bring_up(&mut self) -> Time {
        use strom_wire::arp::ArpPacket;
        use strom_wire::ethernet::MacAddr;
        use strom_wire::ipv4::Ipv4Addr;
        let n = self.nodes.len();
        for node in 0..n {
            for peer in 0..n {
                if peer == node {
                    continue;
                }
                let req = ArpPacket::request(
                    MacAddr::from_node_id(node as u32),
                    Ipv4Addr::from_node_id(node as u8),
                    Ipv4Addr::from_node_id(peer as u8),
                );
                self.send_arp(node, peer, &req);
            }
        }
        self.run_until_idle();
        for node in 0..n {
            assert!(self.resolved(node), "bring-up must resolve every peer");
        }
        self.now()
    }

    /// Whether `node` has resolved every peer's MAC address.
    pub fn resolved(&self, node: NodeId) -> bool {
        (0..self.nodes.len()).filter(|&p| p != node).all(|peer| {
            self.nodes[node]
                .arp
                .lookup(strom_wire::ipv4::Ipv4Addr::from_node_id(peer as u8))
                .is_some()
        })
    }

    /// Transmits an ARP body to `dst`. ARP rides a bare minimum-size
    /// Ethernet frame in this model, below the RoCE datapath — it is
    /// delivered point-to-point even in switched mode (bring-up is
    /// control-plane traffic; the switch model concerns itself with the
    /// RoCE frames the experiments measure).
    fn send_arp(&mut self, node: NodeId, dst: NodeId, pkt: &strom_wire::arp::ArpPacket) {
        let now = self.queue.now();
        let frame = pkt.encode();
        let wire_bytes = strom_wire::ethernet::wire_bytes(frame.len()) as u64;
        let tx_ready = now + self.cfg.tx_pipeline_time();
        let (_, wire_end) = self.links[node].admit(tx_ready, wire_bytes);
        let arrival = (wire_end + self.cfg.propagation + self.cfg.rx_pipeline_time())
            .max(self.last_arrival[dst] + self.cfg.clock.period_ps());
        self.last_arrival[dst] = arrival;
        self.queue
            .schedule_at(arrival, Event::ArpArrive { node: dst, frame });
    }

    fn on_arp(&mut self, node: NodeId, frame: &[u8], _now: Time) {
        use strom_wire::ethernet::MacAddr;
        use strom_wire::ipv4::Ipv4Addr;
        let Some(pkt) = strom_wire::arp::ArpPacket::parse(frame) else {
            self.nodes[node].counters.frames_parse_dropped += 1;
            self.trace.emit(TraceEvent::PacketDrop {
                node: node as u8,
                reason: DropReason::Malformed,
            });
            return;
        };
        let my_ip = Ipv4Addr::from_node_id(node as u8);
        let my_mac = MacAddr::from_node_id(node as u32);
        if let Some(reply) = self.nodes[node].arp.on_packet(&pkt, my_ip, my_mac) {
            // The reply's target is the requester; its IP names the node.
            let dst = reply
                .target_ip
                .node_id()
                .map(usize::from)
                .filter(|&d| d < self.nodes.len())
                .expect("ARP requester is a testbed node");
            self.send_arp(node, dst, &reply);
        }
    }

    /// Posts a work request from `node`'s host; returns a handle usable
    /// with [`Self::run_until_complete`].
    ///
    /// Charges the host-side costs: software post overhead, the AVX2-store
    /// pacing interval, and the MMIO latency to the Controller.
    pub fn post(&mut self, node: NodeId, qpn: Qpn, wr: WorkRequest) -> u64 {
        let handle = self.next_handle;
        self.next_handle += 1;
        let now = self.queue.now();
        self.post_info
            .insert((node, handle), (now, LatKind::of(&wr)));
        let n = &mut self.nodes[node];
        let t_store = (now + self.cfg.host_post_overhead).max(n.next_cmd_issue);
        n.next_cmd_issue = t_store + self.cfg.pcie.cmd_issue_interval;
        let arrive = t_store + self.cfg.pcie.mmio_latency;
        // Drive the real doorbell ABI: encode the request into the 32 B
        // AVX2 command word (§7.1) and let the Controller decode it back.
        // RPC parameters are staged in a host-side buffer the word points
        // at, as the driver does with WQE memory.
        let mut staged: Option<Bytes> = None;
        let wr = match crate::controller::CommandWord::encode(qpn, &wr, |p| {
            staged = Some(p.clone());
            0xFFFF_0000_0000 // Staging-slot address inside driver memory.
        }) {
            Some(word) => {
                let staged = staged;
                let (decoded_qpn, decoded) = word
                    .decode(|_, _| staged.expect("params were staged"))
                    .expect("own encoding decodes");
                debug_assert_eq!(decoded_qpn, qpn);
                decoded
            }
            // WriteInline has no doorbell form (NIC-internal only).
            None => wr,
        };
        n.counters.commands += 1;
        self.queue.schedule_at(
            arrive,
            Event::CmdArrive {
                node,
                qpn,
                wr: Box::new(wr),
                handle,
            },
        );
        handle
    }

    /// Reads the Controller's status registers for `node` (§4.3: "the
    /// host can also retrieve status and performance metrics").
    pub fn status(&self, node: NodeId) -> crate::controller::StatusRegisters {
        let n = &self.nodes[node];
        crate::controller::StatusRegisters {
            wire: n.counters,
            retransmissions: n.requester.retransmissions(),
            timeouts: n.timer.expirations(),
            backoff_events: n.timer.backoff_events(),
            qps_in_error: n.requester.qps_in_error(),
            kernel_invocations: n.fabric.completed(),
            rpc_unmatched: n.fabric.unmatched(),
        }
    }

    /// Registers a watch on `[addr, addr + len)` of `node`'s memory; fires
    /// once that many bytes of the range have been DMA-written.
    pub fn add_watch(&mut self, node: NodeId, addr: u64, len: u64) -> WatchId {
        self.watches.push(Watch {
            node,
            addr,
            len,
            remaining: len,
            fired_at: None,
        });
        WatchId(self.watches.len() - 1)
    }

    /// When the given watch fired (including the host's polling-detection
    /// overhead), if it has.
    pub fn watch_fired(&self, id: WatchId) -> Option<Time> {
        self.watches[id.0]
            .fired_at
            .map(|t| t + self.cfg.poll_overhead)
    }

    /// Runs until the watch fires; returns the detection time.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains first — the awaited data can then
    /// never arrive, which is an experiment bug.
    pub fn run_until_watch(&mut self, id: WatchId) -> Time {
        loop {
            if let Some(t) = self.watch_fired(id) {
                return t;
            }
            assert!(self.step(), "simulation went idle before watch fired");
        }
    }

    /// When the given work request completed (ACKed / data delivered /
    /// failed terminally).
    pub fn completed_at(&self, node: NodeId, handle: u64) -> Option<Time> {
        self.completions.get(&(node, handle)).map(|&(t, _)| t)
    }

    /// How the given work request completed, once it has.
    pub fn completion_status(&self, node: NodeId, handle: u64) -> Option<CompletionStatus> {
        self.completions.get(&(node, handle)).map(|&(_, s)| s)
    }

    /// Runs until a work request completes; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains first.
    pub fn run_until_complete(&mut self, node: NodeId, handle: u64) -> Time {
        loop {
            // A completion may be recorded with a timestamp slightly in
            // the future (e.g. a read completes when its final DMA write
            // lands); keep stepping until simulated time catches up so
            // the memory effects are visible to the caller.
            if let Some(t) = self.completed_at(node, handle) {
                if self.queue.now() >= t || self.queue.is_empty() {
                    return t;
                }
                self.step();
                continue;
            }
            assert!(self.step(), "simulation went idle before completion");
        }
    }

    /// Runs the event loop dry, one same-timestamp batch at a time.
    pub fn run_until_idle(&mut self) {
        while self.step_batch() > 0 {}
    }

    /// Runs the event loop dry, but gives up after `max_events` events.
    ///
    /// Returns `true` if the simulation quiesced within the budget — the
    /// chaos harness's livelock detector: a retransmission storm that
    /// never converges fails this instead of hanging the test suite.
    /// Batched dispatch may overshoot the budget by at most one
    /// same-timestamp bucket.
    pub fn run_until_idle_bounded(&mut self, max_events: u64) -> bool {
        let mut left = max_events;
        loop {
            if left == 0 {
                return self.queue.is_empty();
            }
            let n = self.step_batch();
            if n == 0 {
                return true;
            }
            left = left.saturating_sub(n);
        }
    }

    /// Whether `qpn` on `node` still has unacknowledged messages or
    /// outstanding reads (a "stuck QP" probe for the chaos harness: after
    /// the sim quiesces, nothing may be left outstanding on a healthy QP).
    pub fn qp_has_outstanding(&self, node: NodeId, qpn: Qpn) -> bool {
        self.nodes[node].requester.has_outstanding(qpn)
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        self.dispatch_event(scheduled.event, scheduled.at);
        true
    }

    /// Processes one same-timestamp batch of events; returns how many
    /// were dispatched (0 when the queue is empty).
    ///
    /// Equivalent to calling [`Self::step`] once per event in the batch —
    /// same order, same handlers — but amortizes the queue's bucket walk
    /// across the whole tick. Used by the idle-drain loops; the
    /// completion- and watch-bounded loops keep single-event granularity
    /// so they stop exactly where the reference engine would.
    pub fn step_batch(&mut self) -> u64 {
        let mut buf = std::mem::take(&mut self.batch_buf);
        buf.clear();
        let n = self.queue.pop_batch(&mut buf);
        for s in buf.drain(..) {
            self.dispatch_event(s.event, s.at);
        }
        self.batch_buf = buf;
        n as u64
    }

    /// Enables the observation-only lookahead audit: every event
    /// scheduled from inside the dispatch loop is classified by
    /// [`Event::owner`] as partition-local or cross-partition, and the
    /// cross-partition scheduling distances are tracked against the
    /// cable propagation delay (the PDES lookahead). Changes nothing
    /// about the run itself.
    pub fn enable_lookahead_audit(&mut self) {
        self.queue.audit = Some(LookaheadAudit {
            current_owner: 0,
            now: 0,
            in_dispatch: false,
            report: LookaheadReport {
                cross_events: 0,
                min_cross_delta: u64::MAX,
                violations: 0,
                floor: self.cfg.propagation,
            },
        });
    }

    /// The lookahead audit's findings so far (`None` until
    /// [`Self::enable_lookahead_audit`] is called).
    pub fn lookahead_report(&self) -> Option<LookaheadReport> {
        self.queue.audit.as_ref().map(|a| a.report)
    }

    fn dispatch_event(&mut self, event: Event, now: Time) {
        self.queue
            .begin_dispatch(event.owner(self.queue.switch_owner), now);
        match event {
            Event::CmdArrive {
                node,
                qpn,
                wr,
                handle,
            } => self.on_cmd(node, qpn, wr, handle, now),
            Event::FrameArrive { node, frame } => self.on_frame(node, frame, now),
            Event::DmaWriteDone { node, vaddr, data } => {
                self.on_dma_write_done(node, vaddr, &data, now)
            }
            Event::KernelDmaReadDone {
                node,
                op,
                tag,
                vaddr,
                len,
            } => self.on_kernel_read_done(node, op, tag, vaddr, len, now),
            Event::RetransmitCheck { node } => self.on_retransmit_check(node, now),
            Event::PacerTick { node, qpn } => self.on_pacer_tick(node, qpn, now),
            Event::SwitchTick => self.on_switch_tick(now),
            Event::ArpArrive { node, frame } => self.on_arp(node, &frame, now),
        }
        self.queue.end_dispatch();
    }

    // ----- event handlers -------------------------------------------------

    fn on_cmd(&mut self, node: NodeId, qpn: Qpn, wr: Box<WorkRequest>, handle: u64, now: Time) {
        // Reads land in the bounded multi-queue; if it is full, back the
        // doorbell off *before* posting so the success path below can move
        // the request out of its box instead of cloning it defensively.
        if matches!(*wr, WorkRequest::Read { .. }) && self.nodes[node].requester.read_queue_full() {
            self.queue.schedule_at(
                now + 500 * strom_sim::time::NANOS,
                Event::CmdArrive {
                    node,
                    qpn,
                    wr,
                    handle,
                },
            );
            return;
        }
        let n = &mut self.nodes[node];
        match n.requester.post(&mut n.state, qpn, *wr) {
            Ok((wr_id, descs)) => {
                self.wr_map.insert((node, wr_id), handle);
                for desc in descs {
                    self.send_descriptor(node, &desc, now);
                }
            }
            Err(strom_proto::requester::PostError::MultiQueueFull) => {
                unreachable!("read-queue fullness is pre-checked above")
            }
            Err(strom_proto::requester::PostError::QpInError) => {
                // The QP went terminal while the doorbell was in flight:
                // complete immediately with an error instead of wedging
                // the host, which may be blocked on this handle.
                self.finish_completion(node, handle, now, CompletionStatus::RetryExceeded);
            }
            Err(e) => panic!("post failed on node {node}: {e}"),
        }
    }

    fn on_frame(&mut self, node: NodeId, frame: Bytes, now: Time) {
        self.nodes[node].counters.frames_rx += 1;
        let pkt = match Packet::parse(&frame) {
            Ok(p) => p,
            // A checksum catching in-flight corruption (ICRC over
            // BTH+payload, IPv4 header checksum) degrades the frame into a
            // loss the retransmission machinery recovers from; count it
            // separately from structurally malformed frames.
            Err(PacketError::Icrc | PacketError::Ip) => {
                self.nodes[node].counters.frames_crc_dropped += 1;
                self.trace.emit(TraceEvent::PacketDrop {
                    node: node as u8,
                    reason: DropReason::Corruption,
                });
                self.pool.put(frame);
                return;
            }
            Err(_) => {
                self.nodes[node].counters.frames_parse_dropped += 1;
                self.trace.emit(TraceEvent::PacketDrop {
                    node: node as u8,
                    reason: DropReason::Malformed,
                });
                self.pool.put(frame);
                return;
            }
        };
        self.trace.emit(TraceEvent::PacketRx {
            node: node as u8,
            opcode: pkt.opcode() as u8,
            qpn: pkt.bth.dest_qp,
            psn: pkt.bth.psn,
            payload_len: pkt.payload.len() as u32,
        });
        match pkt.opcode() {
            Opcode::Acknowledge => {
                let aeth = pkt.aeth.expect("ACK carries an AETH");
                self.on_ack(node, pkt.bth.dest_qp, pkt.bth.psn, aeth, now);
            }
            Opcode::ReadResponseFirst
            | Opcode::ReadResponseMiddle
            | Opcode::ReadResponseLast
            | Opcode::ReadResponseOnly => {
                let n = &mut self.nodes[node];
                let qpn = pkt.bth.dest_qp;
                if let Some((addr, completion)) =
                    n.requester
                        .on_read_response(&mut n.state, qpn, pkt.bth.psn, &pkt.payload)
                {
                    let done = self.schedule_dma_write(
                        node,
                        addr,
                        pkt.payload.clone(),
                        now,
                        self.cfg.pcie.bypass_overhead,
                    );
                    if let Some(c) = completion {
                        self.record_completion(node, &c, done);
                    }
                    // Every response packet is forward progress: restart
                    // the retransmission timer (standard RC requester
                    // behaviour), or a multi-millisecond response stream
                    // would spuriously time out mid-flight.
                    self.refresh_timer(node, qpn, now);
                } // else: duplicate/out-of-order response, dropped.
                  // A CE mark on a read response means the responder→
                  // requester direction is congested: echo a CNP so the
                  // *responder's* DCQCN cuts its read-response rate (the
                  // mirror of the responder-side echo for request data in
                  // `strom-proto`). Duplicates still count — each marked
                  // packet is evidence of a congested queue.
                if self.cfg.cc && pkt.ecn == strom_wire::ECN_CE {
                    self.nodes[node].counters.cnps_tx += 1;
                    self.send_cnp(node, qpn, now);
                }
            }
            Opcode::Cnp => {
                // Congestion echo: apply the DCQCN rate cut to the QP the
                // marked data packet came from. CNPs are pure signals —
                // no PSN, no ACK, never retransmitted.
                let n = &mut self.nodes[node];
                n.counters.cnps_rx += 1;
                n.dcqcn.on_cnp(pkt.bth.dest_qp as usize, now);
            }
            _ => {
                let n = &mut self.nodes[node];
                let actions = n.responder.on_packet(&mut n.state, &pkt);
                self.exec_responder_actions(node, &pkt, actions, now);
            }
        }
        // Best-effort buffer reuse: the parsed packet's payload is a
        // zero-copy slice of `frame`, so drop it first — reclaim then
        // succeeds exactly when dispatch kept no reference (ACKs, NAKs).
        drop(pkt);
        self.pool.put(frame);
    }

    fn on_ack(&mut self, node: NodeId, qpn: Qpn, psn: Psn, aeth: Aeth, now: Time) {
        let n = &mut self.nodes[node];
        let (completions, retransmit) = n.requester.on_ack(&mut n.state, qpn, psn, aeth);
        for c in completions {
            self.record_completion(node, &c, now);
        }
        for desc in retransmit {
            self.send_descriptor(node, &desc, now);
        }
        self.refresh_timer(node, qpn, now);
    }

    fn on_dma_write_done(&mut self, node: NodeId, vaddr: u64, data: &Bytes, _now: Time) {
        // The NIC writes through the TLB: translate and store physically.
        let segs = self.nodes[node]
            .tlb
            .translate_command(vaddr, data.len() as u32)
            .unwrap_or_else(|e| panic!("DMA write fault on node {node}: {e}"));
        let mut offset = 0usize;
        for seg in segs {
            self.nodes[node]
                .mem
                .phys_write(seg.paddr, &data[offset..offset + seg.len as usize]);
            offset += seg.len as usize;
        }
        let done_at = self.queue.now();
        // Notify watches overlapping the written range.
        for w in &mut self.watches {
            if w.fired_at.is_some() || w.node != node {
                continue;
            }
            let start = vaddr.max(w.addr);
            let end = (vaddr + data.len() as u64).min(w.addr + w.len);
            if end > start {
                w.remaining = w.remaining.saturating_sub(end - start);
                if w.remaining == 0 {
                    w.fired_at = Some(done_at);
                }
            }
        }
    }

    fn on_kernel_read_done(
        &mut self,
        node: NodeId,
        op: RpcOpCode,
        tag: u32,
        vaddr: u64,
        len: u32,
        now: Time,
    ) {
        // Read the bytes *at completion time* — a concurrently modified
        // object yields a torn read, which is what the consistency kernel
        // exists to catch.
        let data = self.dma_read_bytes(node, vaddr, len);
        if let Some(actions) = self.nodes[node].fabric.dma_data(op, tag, data) {
            self.exec_kernel_actions(node, op, actions, now);
        }
    }

    fn on_retransmit_check(&mut self, node: NodeId, now: Time) {
        // Only the live check — the one `schedule_check` most recently
        // filed — may act. Re-arming at an *earlier* deadline orphans the
        // previously queued event; if an orphan were allowed to clear the
        // dedup state and fall through to `schedule_check`, every orphan
        // would mint a fresh duplicate on each firing and the duplicate
        // population would never decay (a self-sustaining event storm
        // under congestion-driven retransmission).
        if self.nodes[node].check_at != Some(now) {
            return;
        }
        self.nodes[node].check_at = None;
        let expired = self.nodes[node].timer.expired(now);
        for qpn in expired {
            if !self.nodes[node].requester.has_outstanding(qpn) {
                continue;
            }
            // Retry budget (IB retry_cnt): after max_retries consecutive
            // timeouts without progress the QP goes terminal instead of
            // retransmitting forever. Everything in flight completes with
            // an error status so the host observes the failure.
            if self.nodes[node].timer.attempts(qpn) > self.cfg.max_retries {
                // Drop queued requests, but keep paced READ responses:
                // they belong to the *peer's* read, not this node's
                // failed requester window.
                self.nodes[node].txq[qpn as usize].retain(|tx| !tx.arm_timer);
                let completions = self.nodes[node].requester.fail_qp(qpn);
                for c in completions {
                    self.record_completion(node, &c, now);
                }
                continue;
            }
            // Go-back-N: the timeout retransmits every outstanding
            // packet, so any original still parked in the pacer queue is
            // superseded — drop it or the window would go out twice.
            // Paced READ responses stay: they are responder-side data
            // for the peer's read, not part of this requester window.
            self.nodes[node].txq[qpn as usize].retain(|tx| !tx.arm_timer);
            let descs = self.nodes[node].requester.on_timeout(qpn);
            for desc in descs {
                self.send_descriptor(node, &desc, now);
            }
        }
        self.schedule_check(node);
    }

    // ----- protocol execution ---------------------------------------------

    fn exec_responder_actions(
        &mut self,
        node: NodeId,
        pkt: &Packet,
        actions: Vec<ResponderAction>,
        now: Time,
    ) {
        for action in actions {
            match action {
                ResponderAction::WritePayload { vaddr, data } => {
                    self.nodes[node].counters.payload_bytes_rx += data.len() as u64;
                    self.schedule_dma_write(
                        node,
                        vaddr,
                        data.clone(),
                        now,
                        self.cfg.pcie.bypass_overhead,
                    );
                    // Receive kernel tap: bump-in-the-wire copy (§3.5),
                    // no extra latency on the main path.
                    if let Some(op) = self.nodes[node].receive_tap {
                        let last = pkt.opcode().ends_message();
                        let done = self.kernel_consume(node, op, data.len(), now);
                        if let Some(acts) =
                            self.nodes[node]
                                .fabric
                                .stream(op, pkt.bth.dest_qp, data, last)
                        {
                            self.exec_kernel_actions(node, op, acts, done);
                        }
                    }
                }
                ResponderAction::SendAck { qpn, psn, msn } => {
                    self.send_ack(node, qpn, psn, msn, AethSyndrome::Ack, now);
                }
                ResponderAction::SendNakSequenceError { qpn, psn, msn } => {
                    self.send_ack(node, qpn, psn, msn, AethSyndrome::NakSequenceError, now);
                }
                ResponderAction::ReadResponse {
                    qpn,
                    first_psn,
                    vaddr,
                    len,
                } => {
                    self.send_read_response(node, qpn, first_psn, vaddr, len, now);
                }
                ResponderAction::RpcInvoke {
                    qpn,
                    rpc_op,
                    params,
                } => {
                    let at = now + self.cfg.kernel_dispatch_time();
                    match self.nodes[node].fabric.invoke(rpc_op, qpn, params.clone()) {
                        Some(actions) => {
                            self.trace.emit(TraceEvent::KernelEnter {
                                node: node as u8,
                                op: rpc_op.0,
                            });
                            self.exec_kernel_actions(node, rpc_op, actions, at)
                        }
                        None => {
                            // No kernel matched: try the CPU fallback
                            // (§5.1), else NAK so the requester observes
                            // the failure.
                            if !self.run_cpu_fallback(node, rpc_op, qpn, &params, now) {
                                let msn = 0;
                                self.send_ack(
                                    node,
                                    qpn,
                                    pkt.bth.psn,
                                    msn,
                                    AethSyndrome::NakRemoteOperationalError,
                                    now,
                                );
                            }
                        }
                    }
                }
                ResponderAction::RpcPayload {
                    qpn,
                    rpc_op,
                    data,
                    last,
                } => {
                    let at = self
                        .kernel_consume(node, rpc_op, data.len(), now)
                        .max(now + self.cfg.kernel_dispatch_time());
                    if let Some(actions) = self.nodes[node].fabric.stream(rpc_op, qpn, data, last) {
                        self.exec_kernel_actions(node, rpc_op, actions, at);
                    }
                }
                ResponderAction::SendCnp { qpn } => {
                    self.nodes[node].counters.cnps_tx += 1;
                    self.send_cnp(node, qpn, now);
                }
                ResponderAction::DroppedDuplicate | ResponderAction::DroppedInvalid => {}
            }
        }
    }

    fn exec_kernel_actions(
        &mut self,
        node: NodeId,
        op: RpcOpCode,
        actions: Vec<KernelAction>,
        now: Time,
    ) {
        for action in actions {
            match action {
                KernelAction::DmaRead { tag, vaddr, len } => {
                    let (_, occ_end) = self.nodes[node].dma.admit_with_overhead(
                        now,
                        u64::from(len),
                        self.cfg.pcie.cmd_overhead,
                    );
                    let done = occ_end + self.cfg.pcie.read_rtt_base;
                    self.queue.schedule_at(
                        done,
                        Event::KernelDmaReadDone {
                            node,
                            op,
                            tag,
                            vaddr,
                            len,
                        },
                    );
                }
                KernelAction::DmaWrite { vaddr, data } => {
                    // Kernel-issued stores are random-access commands.
                    self.schedule_dma_write(node, vaddr, data, now, self.cfg.pcie.cmd_overhead);
                }
                KernelAction::RoceSend {
                    qpn,
                    remote_vaddr,
                    data,
                } => {
                    let n = &mut self.nodes[node];
                    let result = n.requester.post(
                        &mut n.state,
                        qpn,
                        WorkRequest::WriteInline { remote_vaddr, data },
                    );
                    match result {
                        Ok((_, descs)) => {
                            for desc in descs {
                                self.send_descriptor_at(node, &desc, now);
                            }
                        }
                        Err(e) => panic!("kernel RoceSend failed: {e}"),
                    }
                }
                KernelAction::Forward { .. } => {
                    // A Forward leaving the *top-level* kernel has no next
                    // stage: the data was already delivered to host memory
                    // by the RPC WRITE path (bump-in-the-wire), so the
                    // fabric drops it. Inside a KernelChain, Forward is
                    // consumed by the chain itself and never reaches here.
                }
                KernelAction::Done => {
                    self.trace.emit(TraceEvent::KernelExit {
                        node: node as u8,
                        op: op.0,
                    });
                    let next = self.nodes[node].fabric.done(op);
                    if !next.is_empty() {
                        self.exec_kernel_actions(node, op, next, now);
                    }
                }
            }
        }
    }

    // ----- transmission ---------------------------------------------------

    /// Resolves a descriptor's payload (DMA-fetching host payload) and
    /// transmits the packet.
    fn send_descriptor(&mut self, node: NodeId, desc: &PacketDescriptor, now: Time) {
        self.send_descriptor_at(node, desc, now);
    }

    fn send_descriptor_at(&mut self, node: NodeId, desc: &PacketDescriptor, now: Time) {
        let (payload, payload_ready) = match &desc.payload {
            PayloadSource::None => (Bytes::new(), now),
            PayloadSource::Inline(b) => (b.clone(), now),
            PayloadSource::Host { vaddr, len } => {
                let data = self.dma_read_bytes(node, *vaddr, *len);
                let (_, occ_end) = self.nodes[node].dma.admit_with_overhead(
                    now,
                    u64::from(*len),
                    self.cfg.pcie.bypass_overhead,
                );
                (data, occ_end + self.cfg.pcie.read_rtt_base)
            }
        };
        // Send kernel (§3.5): outgoing WRITE payload is tapped into the
        // kernel as it streams to the MAC, without altering the packet.
        if !payload.is_empty()
            && matches!(
                desc.opcode,
                Opcode::WriteFirst | Opcode::WriteMiddle | Opcode::WriteLast | Opcode::WriteOnly
            )
        {
            if let Some(op) = self.nodes[node].send_tap {
                let last = desc.opcode.ends_message();
                let done = self.kernel_consume(node, op, payload.len(), now);
                if let Some(actions) =
                    self.nodes[node]
                        .fabric
                        .stream(op, desc.qpn, payload.clone(), last)
                {
                    self.exec_kernel_actions(node, op, actions, done);
                }
            }
        }
        let peer = self.peer_of(node, desc.qpn);
        let pkt = Packet::new(
            node as u32,
            peer as u32,
            desc.opcode,
            desc.qpn,
            desc.psn,
            desc.reth,
            None,
            payload,
        );
        self.send_packet(node, peer, pkt, payload_ready, true);
    }

    fn send_ack(
        &mut self,
        node: NodeId,
        qpn: Qpn,
        psn: Psn,
        msn: u32,
        syndrome: AethSyndrome,
        now: Time,
    ) {
        let peer = self.peer_of(node, qpn);
        let pkt = Packet::new(
            node as u32,
            peer as u32,
            Opcode::Acknowledge,
            qpn,
            psn,
            None,
            Some(Aeth { syndrome, msn }),
            Bytes::new(),
        );
        self.send_packet(node, peer, pkt, now, false);
    }

    /// Echoes a CE mark back to the sender as a bare CNP: no payload, no
    /// AETH, PSN 0 (CNPs sit outside the PSN space and are never acked or
    /// retransmitted — losing one just defers the cut to the next mark).
    fn send_cnp(&mut self, node: NodeId, qpn: Qpn, now: Time) {
        let peer = self.peer_of(node, qpn);
        let pkt = Packet::new(
            node as u32,
            peer as u32,
            Opcode::Cnp,
            qpn,
            0,
            None,
            None,
            Bytes::new(),
        );
        self.send_packet(node, peer, pkt, now, false);
    }

    fn send_read_response(
        &mut self,
        node: NodeId,
        qpn: Qpn,
        first_psn: Psn,
        vaddr: u64,
        len: u32,
        now: Time,
    ) {
        let msn = 0; // The AETH MSN is informational for responses here.
        let segments = segment_message(len as usize, self.cfg.max_payload());
        for (i, seg) in segments.iter().enumerate() {
            // Per-packet DMA fetch: response packet i streams out as soon
            // as its chunk has crossed PCIe (pipelined, not
            // store-the-whole-message).
            let chunk = self.dma_read_bytes(node, vaddr + seg.offset as u64, seg.len as u32);
            let (_, occ_end) = self.nodes[node].dma.admit_with_overhead(
                now,
                seg.len as u64,
                self.cfg.pcie.bypass_overhead,
            );
            let ready = occ_end + self.cfg.pcie.read_rtt_base;
            let opcode = seg.kind.read_response_opcode();
            let aeth = opcode.has_aeth().then_some(Aeth {
                syndrome: AethSyndrome::Ack,
                msn,
            });
            let peer = self.peer_of(node, qpn);
            let pkt = Packet::new(
                node as u32,
                peer as u32,
                opcode,
                qpn,
                strom_proto::psn_add(first_psn, i as u32),
                None,
                aeth,
                chunk,
            );
            self.send_packet(node, peer, pkt, ready, false);
        }
    }

    /// Puts a packet on the wire toward `peer`: TX pipeline, link
    /// serialization, then either the direct point-to-point path
    /// (transparent mode) or the switch (ingress latency, arbitration,
    /// egress serialization). Arms the retransmission timer for request
    /// packets.
    fn send_packet(
        &mut self,
        node: NodeId,
        peer: NodeId,
        pkt: Packet,
        payload_ready: Time,
        arm_timer: bool,
    ) {
        // DCQCN intercepts both data directions: requester packets (the
        // ones that arm the retransmission timer) and READ responses —
        // a READ-heavy incast is congested by responder→requester data,
        // so the responder's return stream must obey its rate too.
        // Packets park in a per-QP queue and a PacerTick releases one
        // per paced slot, so a rate cut mid-message slows everything
        // still queued. Pure control (ACKs, NAKs, CNPs) bypasses the
        // pacer: delaying the congestion signal would defeat it.
        if self.cfg.cc && (arm_timer || pkt.opcode().is_read_response()) {
            let qpn = pkt.bth.dest_qp as usize;
            self.nodes[node].txq[qpn].push_back(PacedTx {
                peer,
                pkt,
                payload_ready,
                arm_timer,
            });
            self.schedule_pacer_tick(node, qpn);
            return;
        }
        self.transmit_packet(node, peer, pkt, payload_ready, arm_timer);
    }

    /// Schedules the live PacerTick for `qpn` at its next paced slot, if
    /// the queue is non-empty and no tick is already pending.
    fn schedule_pacer_tick(&mut self, node: NodeId, qpn: usize) {
        let now = self.queue.now();
        let n = &mut self.nodes[node];
        if n.tick_at[qpn].is_some() || n.txq[qpn].is_empty() {
            return;
        }
        let at = now.max(n.pacers[qpn].next_ready());
        n.tick_at[qpn] = Some(at);
        self.queue.schedule_at(
            at,
            Event::PacerTick {
                node,
                qpn: qpn as Qpn,
            },
        );
    }

    /// Releases the head of one QP's paced transmit queue at the DCQCN
    /// rate *read at release time* — the whole point of queueing.
    fn on_pacer_tick(&mut self, node: NodeId, qpn: Qpn, now: Time) {
        let q = qpn as usize;
        // Same staleness discipline as `on_retransmit_check`: only the
        // most recently scheduled tick may act (a timeout flush may have
        // rescheduled underneath an in-flight tick).
        if self.nodes[node].tick_at[q] != Some(now) {
            return;
        }
        self.nodes[node].tick_at[q] = None;
        let Some(tx) = self.nodes[node].txq[q].pop_front() else {
            return;
        };
        let bytes = tx.pkt.wire_bytes() as u64;
        let n = &mut self.nodes[node];
        let bits = n.dcqcn.rate(q, now);
        n.pacers[q].pace(now, bytes, Bandwidth::gbit_per_sec(bits / 1e9));
        self.transmit_packet(node, tx.peer, tx.pkt, tx.payload_ready, tx.arm_timer);
        self.schedule_pacer_tick(node, q);
    }

    fn transmit_packet(
        &mut self,
        node: NodeId,
        peer: NodeId,
        mut pkt: Packet,
        payload_ready: Time,
        arm_timer: bool,
    ) {
        let now = self.queue.now();
        let tx_ready = (now + self.cfg.tx_pipeline_time()).max(payload_ready);
        let wire_bytes = pkt.wire_bytes() as u64;
        let ip_len = pkt.ip_len();
        let qpn = pkt.bth.dest_qp;
        // Data packets go out ECN-capable so switches can mark them
        // instead of dropping. Control traffic (ACKs, CNPs) stays
        // Not-ECT: cutting rates on ACK marks would punish the wrong
        // direction.
        if self.cfg.cc && pkt.opcode().has_payload() {
            pkt.ecn = strom_wire::ECN_ECT0;
        }
        let (_, wire_end) = self.links[node].admit(tx_ready, wire_bytes);
        if arm_timer {
            self.nodes[node].timer.arm(qpn, wire_end);
            self.schedule_check(node);
        }
        self.trace.emit(TraceEvent::PacketTx {
            node: node as u8,
            opcode: pkt.opcode() as u8,
            qpn,
            psn: pkt.bth.psn,
            wire_bytes: wire_bytes as u32,
        });
        // Fault pipeline, in wire order: a frame is first subject to loss,
        // then (if it survives) to corruption, reordering, and
        // duplication. Decisions draw from the testbed RNG in this fixed
        // order — and always at transmit time, never from inside the
        // switch — so a chaos run replays exactly from (seed, fault
        // model) regardless of switch queueing.
        let n = self.nodes.len();
        let fault = self.fault_model_for(node, peer);
        if fault.should_drop(&mut self.fault_state[node * n + peer], &mut self.rng) {
            self.nodes[peer].counters.frames_lost += 1;
            self.trace.emit(TraceEvent::PacketDrop {
                node: peer as u8,
                reason: DropReason::Loss,
            });
            return;
        }
        // Encode into a pooled buffer (single pass, no intermediate
        // allocation) and flip fault-injected bits in place while the
        // buffer is still mutable — then freeze it into `Bytes` for
        // transit (a pure move, never a copy).
        let mut buf = self.pool.take();
        pkt.encode_into(&mut buf);
        if fault.corrupt_rate > 0.0 && fault.should_corrupt(&mut self.rng) {
            // One bit flips in flight; the receiver's checksums must catch
            // it (frames_crc_dropped) unless it lands in the handful of
            // unprotected header bytes, where it is harmless.
            fault::flip_random_bit(&mut buf, &mut self.rng);
        }
        let frame = Bytes::from(buf);
        if let Some(cap) = &mut self.capture {
            // Captured as it leaves the wire (post-corruption), stamped
            // with the serialization end time.
            cap.record(wire_end, &frame);
        }
        let jitter = if fault.reorder_rate > 0.0 {
            fault.reorder_delay(&mut self.rng)
        } else {
            None
        };
        if jitter.is_some() {
            self.nodes[peer].counters.frames_reordered += 1;
        }
        let dup = fault.duplicate_rate > 0.0 && fault.should_duplicate(&mut self.rng);
        if dup {
            self.nodes[peer].counters.frames_duplicated += 1;
        }
        match &mut self.switch {
            None => {
                let arrival = (wire_end
                    + self.cfg.propagation
                    + self.cfg.store_and_forward_time(ip_len)
                    + self.cfg.rx_pipeline_time())
                .max(self.last_arrival[peer] + self.cfg.clock.period_ps());
                self.deliver_frame(peer, frame, arrival, jitter, dup);
            }
            Some(sw) => {
                // The frame reaches the switch after propagating from the
                // NIC; it leaves once it wins arbitration and serializes
                // on the egress port. Delivery continues in
                // `on_switch_tick`.
                let received = wire_end + self.cfg.propagation;
                let eligible = sw.model.enqueue(
                    node,
                    peer,
                    wire_bytes,
                    received,
                    SwitchFrame {
                        frame,
                        ip_len,
                        jitter,
                        dup,
                    },
                );
                self.queue.schedule_at(eligible, Event::SwitchTick);
            }
        }
    }

    /// Schedules a frame's arrival at `dst`, applying the transmit-time
    /// reorder/duplicate decisions. `arrival` is the nominal in-order
    /// arrival time (already clamped to the receiver's FIFO).
    fn deliver_frame(
        &mut self,
        dst: NodeId,
        frame: Bytes,
        arrival: Time,
        jitter: Option<TimeDelta>,
        dup: bool,
    ) {
        let arrival = match jitter {
            Some(jitter) => {
                // Held back by jitter — and deliberately NOT recorded in
                // last_arrival, so frames behind it overtake it (the FIFO
                // clamp is what normally forbids that).
                arrival + jitter
            }
            None => {
                self.last_arrival[dst] = arrival;
                arrival
            }
        };
        if dup {
            self.queue.schedule_at(
                arrival + self.cfg.clock.period_ps(),
                Event::FrameArrive {
                    node: dst,
                    frame: frame.clone(),
                },
            );
        }
        self.queue
            .schedule_at(arrival, Event::FrameArrive { node: dst, frame });
    }

    /// Runs one switch arbitration pass: grants eligible ingress frames,
    /// emits tail-drops as traced packet drops (the retransmission
    /// machinery recovers them like any loss), and schedules granted
    /// frames' arrivals after egress serialization + propagation + the
    /// receiver's store-and-forward and RX pipeline.
    fn on_switch_tick(&mut self, now: Time) {
        let Some(sw) = self.switch.as_mut() else {
            return;
        };
        let mut deliveries = std::mem::take(&mut sw.deliveries);
        let mut drops = std::mem::take(&mut sw.drops);
        sw.model.arbitrate(now, &mut deliveries, &mut drops);
        for d in drops.drain(..) {
            self.trace.emit(TraceEvent::PacketDrop {
                node: d.dst as u8,
                reason: DropReason::TailDrop,
            });
            if let Some(sw) = self.switch.as_ref() {
                sw.port_metrics[d.dst].tail_drops.inc();
            }
            self.pool.put(d.payload.frame);
        }
        for d in deliveries.drain(..) {
            let mut frame = d.payload.frame;
            if d.marked {
                // The switch decided to CE-mark this frame: rewrite the
                // ECN field (and IPv4 checksum) in the egress buffer. At
                // this point the switch holds the only reference, so
                // reclaim is a move; the ICRC stays valid because it
                // covers BTH+payload only.
                let mut buf = frame.try_reclaim().unwrap_or_else(|b| b.to_vec());
                strom_wire::mark_ce(&mut buf[strom_wire::ethernet::ETHERNET_HEADER_LEN..]);
                frame = Bytes::from(buf);
            }
            if let Some(sw) = self.switch.as_ref() {
                let pm = &sw.port_metrics[d.dst];
                pm.frames_out.inc();
                if d.marked {
                    pm.ecn_marked.inc();
                }
            }
            let arrival = (d.egress_end
                + self.cfg.propagation
                + self.cfg.store_and_forward_time(d.payload.ip_len)
                + self.cfg.rx_pipeline_time())
            .max(self.last_arrival[d.dst] + self.cfg.clock.period_ps());
            self.deliver_frame(d.dst, frame, arrival, d.payload.jitter, d.payload.dup);
        }
        if let Some(sw) = self.switch.as_mut() {
            sw.deliveries = deliveries;
            sw.drops = drops;
            // Mirror the per-port queue high-watermarks into gauges so
            // they flow into telemetry reports alongside the counters.
            for p in 0..sw.port_metrics.len() {
                sw.port_metrics[p]
                    .queue_peak
                    .set(sw.model.counters(p).queue_peak);
            }
        }
    }

    // ----- helpers ----------------------------------------------------------

    /// Reads bytes from host memory through the TLB (the DMA engine's
    /// path), splitting at page boundaries.
    fn dma_read_bytes(&mut self, node: NodeId, vaddr: u64, len: u32) -> Bytes {
        self.trace.emit(TraceEvent::DmaRead {
            node: node as u8,
            vaddr,
            len,
        });
        let segs = self.nodes[node]
            .tlb
            .translate_command(vaddr, len)
            .unwrap_or_else(|e| panic!("DMA read fault on node {node}: {e}"));
        let mut out = vec![0u8; len as usize];
        let mut offset = 0usize;
        for seg in segs {
            self.nodes[node]
                .mem
                .phys_read(seg.paddr, &mut out[offset..offset + seg.len as usize]);
            offset += seg.len as usize;
        }
        Bytes::from(out)
    }

    /// Schedules a DMA write: PCIe occupancy + posted-write latency, then
    /// the bytes land (and watches fire). Returns the landing time.
    /// `overhead` distinguishes stream-oriented stores (Descriptor
    /// Bypass) from random kernel-issued commands.
    fn schedule_dma_write(
        &mut self,
        node: NodeId,
        vaddr: u64,
        data: Bytes,
        now: Time,
        overhead: Time,
    ) -> Time {
        self.trace.emit(TraceEvent::DmaWrite {
            node: node as u8,
            vaddr,
            len: data.len() as u32,
        });
        let (_, occ_end) =
            self.nodes[node]
                .dma
                .admit_with_overhead(now, data.len() as u64, overhead);
        let done = occ_end + self.cfg.pcie.write_post_latency;
        self.queue
            .schedule_at(done, Event::DmaWriteDone { node, vaddr, data });
        done
    }

    /// When the kernel with `op` on `node` finishes consuming `bytes` of
    /// stream payload submitted at `now` — the §3.4 line-rate condition:
    /// an II = 1 kernel consumes one datapath word per cycle and never
    /// lags the wire; an II > 1 kernel becomes the bottleneck.
    fn kernel_consume(&mut self, node: NodeId, op: RpcOpCode, bytes: usize, now: Time) -> Time {
        let Some(cycles) = self.nodes[node].fabric.cycles_per_word(op) else {
            return now;
        };
        let bytes_per_sec =
            self.cfg.datapath_bytes as f64 * self.cfg.clock.mhz() * 1e6 / cycles as f64;
        let n = &mut self.nodes[node];
        let serializer = match n.kernel_occ.iter_mut().find(|(o, _)| *o == op) {
            Some((_, s)) => s,
            None => {
                n.kernel_occ.push((
                    op,
                    LinkSerializer::new(strom_sim::Bandwidth::gbyte_per_sec(bytes_per_sec / 1e9)),
                ));
                &mut n.kernel_occ.last_mut().expect("just pushed").1
            }
        };
        let (_, end) = serializer.admit(now, bytes as u64);
        end
    }

    /// Runs the CPU fallback for an unmatched RPC, if one is configured.
    ///
    /// Returns `true` if a handler accepted the request. Timing: the NIC
    /// DMA-writes the request to a host queue, the polling CPU picks it
    /// up, computes, and posts the response as an ordinary WRITE.
    fn run_cpu_fallback(
        &mut self,
        node: NodeId,
        rpc_op: RpcOpCode,
        qpn: Qpn,
        params: &Bytes,
        now: Time,
    ) -> bool {
        let n = &mut self.nodes[node];
        let Some(idx) = n.fallbacks.iter().position(|(op, _)| *op == rpc_op) else {
            return false;
        };
        let (_, handler) = &mut n.fallbacks[idx];
        let Some((target, response, cpu_time)) = handler.handle(&mut n.mem, qpn, params) else {
            return true; // Accepted, no response.
        };
        // Host handoff: DMA the request up (posted write + poll detection),
        // CPU work, then the response is posted like any host command.
        let ready = now
            + self.cfg.pcie.write_post_latency
            + self.cfg.poll_overhead
            + cpu_time
            + self.cfg.host_post_overhead
            + self.cfg.pcie.mmio_latency;
        let n = &mut self.nodes[node];
        let result = n.requester.post(
            &mut n.state,
            qpn,
            WorkRequest::WriteInline {
                remote_vaddr: target,
                data: response,
            },
        );
        match result {
            Ok((_, descs)) => {
                for desc in descs {
                    self.send_descriptor_at(node, &desc, ready);
                }
                true
            }
            Err(e) => panic!("CPU fallback response failed: {e}"),
        }
    }

    /// Ensures a RetransmitCheck is pending no later than the node's
    /// earliest timer deadline (at most one outstanding check per node).
    fn schedule_check(&mut self, node: NodeId) {
        let Some(deadline) = self.nodes[node].timer.next_deadline() else {
            return;
        };
        match self.nodes[node].check_at {
            Some(t) if t <= deadline => {}
            _ => {
                // The queue clamps past times to `now`; record the clamped
                // time so the firing event matches `check_at` exactly.
                let at = deadline.max(self.queue.now());
                self.queue.schedule_at(at, Event::RetransmitCheck { node });
                self.nodes[node].check_at = Some(at);
            }
        }
    }

    fn record_completion(&mut self, node: NodeId, c: &strom_proto::Completion, at: Time) {
        if let Some(handle) = self.wr_map.remove(&(node, c.wr_id)) {
            self.finish_completion(node, handle, at, c.status);
        }
    }

    /// Records a work request's outcome and feeds its post-to-completion
    /// latency into the per-kind histogram. Every completion path funnels
    /// through here, so the histograms and the `completions` map agree.
    fn finish_completion(&mut self, node: NodeId, handle: u64, at: Time, status: CompletionStatus) {
        self.completions.insert((node, handle), (at, status));
        if let Some((posted, kind)) = self.post_info.remove(&(node, handle)) {
            self.lat[kind as usize].record(at.saturating_sub(posted));
        }
    }

    fn refresh_timer(&mut self, node: NodeId, qpn: Qpn, now: Time) {
        // Any ACK/NAK/response from the peer is evidence it is alive:
        // reset the retry budget and exponential backoff.
        self.nodes[node].timer.note_progress(qpn);
        let outstanding = self.nodes[node].requester.has_outstanding(qpn);
        if outstanding {
            // Restart the timer on progress — but never let the deadline
            // land before packets still queued on the transmit link have
            // even left the NIC, or a long transmit queue would trigger
            // spurious mass retransmissions.
            let base = now.max(self.links[node].busy_until());
            self.nodes[node].timer.arm(qpn, base);
            self.schedule_check(node);
        } else {
            self.nodes[node].timer.disarm(qpn);
        }
    }
}

/// The original two-node point-to-point testbed, now a thin wrapper over
/// [`ClusterTestbed::transparent_pair`]: same API (every `ClusterTestbed`
/// method is reachable through `Deref`), same timing, same RNG draws,
/// bit-identical traces — the chaos-soak fingerprints and the pcap
/// golden fixture pin the equivalence.
pub struct Testbed(ClusterTestbed);

impl Testbed {
    /// Builds a two-node testbed from a configuration.
    pub fn new(cfg: NicConfig) -> Self {
        Testbed(ClusterTestbed::transparent_pair(cfg))
    }

    /// Unwraps into the underlying [`ClusterTestbed`].
    pub fn into_cluster(self) -> ClusterTestbed {
        self.0
    }
}

impl std::ops::Deref for Testbed {
    type Target = ClusterTestbed;

    fn deref(&self) -> &ClusterTestbed {
        &self.0
    }
}

impl std::ops::DerefMut for Testbed {
    fn deref_mut(&mut self) -> &mut ClusterTestbed {
        &mut self.0
    }
}

/// Extra simulated-time padding helper.
pub fn micros(us: u64) -> TimeDelta {
    us * strom_sim::time::MICROS
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_sim::time::MICROS;

    fn testbed() -> Testbed {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(1);
        tb
    }

    #[test]
    fn write_delivers_bytes_end_to_end() {
        let mut tb = testbed();
        let src = tb.pin(0, 1 << 20);
        let dst = tb.pin(1, 1 << 20);
        tb.mem(0).write(src, b"hello remote memory");
        let watch = tb.add_watch(1, dst, 19);
        tb.post(
            0,
            1,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 19,
            },
        );
        let t = tb.run_until_watch(watch);
        assert!(t > 0);
        assert_eq!(tb.mem(1).read(dst, 19), b"hello remote memory");
        tb.run_until_idle();
    }

    #[test]
    fn write_latency_is_in_the_paper_range() {
        let mut tb = testbed();
        let src = tb.pin(0, 1 << 20);
        let dst = tb.pin(1, 1 << 20);
        tb.mem(0).write(src, &[7u8; 64]);
        let watch = tb.add_watch(1, dst, 64);
        tb.post(
            0,
            1,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 64,
            },
        );
        let t = tb.run_until_watch(watch);
        let us = t as f64 / MICROS as f64;
        // One-way delivery of a 64 B write: around 3 µs (Fig 5a).
        assert!((2.0..4.5).contains(&us), "one-way write = {us} µs");
        tb.run_until_idle();
    }

    #[test]
    fn multi_packet_write_reassembles() {
        let mut tb = testbed();
        let src = tb.pin(0, 1 << 20);
        let dst = tb.pin(1, 1 << 20);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        tb.mem(0).write(src, &data);
        let watch = tb.add_watch(1, dst, data.len() as u64);
        tb.post(
            0,
            1,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: data.len() as u32,
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(tb.mem(1).read(dst, data.len()), data);
        tb.run_until_idle();
    }

    #[test]
    fn read_fetches_remote_bytes() {
        let mut tb = testbed();
        let local = tb.pin(0, 1 << 20);
        let remote = tb.pin(1, 1 << 20);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 241) as u8).collect();
        tb.mem(1).write(remote, &data);
        let h = tb.post(
            0,
            1,
            WorkRequest::Read {
                remote_vaddr: remote,
                local_vaddr: local,
                len: data.len() as u32,
            },
        );
        let t = tb.run_until_complete(0, h);
        assert!(t > 0);
        assert_eq!(tb.mem(0).read(local, data.len()), data);
        tb.run_until_idle();
    }

    #[test]
    fn read_latency_exceeds_write_latency() {
        // A read pays the remote PCIe fetch (~1.5 µs) on top of the wire
        // round trip; a one-way write does not wait for anything remote.
        let mut tb = testbed();
        let local = tb.pin(0, 1 << 20);
        let remote = tb.pin(1, 1 << 20);
        tb.mem(1).write(remote, &[1u8; 64]);
        let watch = tb.add_watch(0, local, 64);
        tb.post(
            0,
            1,
            WorkRequest::Read {
                remote_vaddr: remote,
                local_vaddr: local,
                len: 64,
            },
        );
        let t_read = tb.run_until_watch(watch);
        let us = t_read as f64 / MICROS as f64;
        assert!((3.5..7.0).contains(&us), "read RTT = {us} µs");
        tb.run_until_idle();
    }

    #[test]
    fn writes_complete_on_ack() {
        let mut tb = testbed();
        let src = tb.pin(0, 1 << 20);
        let dst = tb.pin(1, 1 << 20);
        tb.mem(0).write(src, &[9u8; 128]);
        let h = tb.post(
            0,
            1,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 128,
            },
        );
        let t = tb.run_until_complete(0, h);
        assert!(t > 0, "ACK observed");
        tb.run_until_idle();
        assert_eq!(tb.retransmissions(0), 0);
    }

    #[test]
    fn lossy_link_recovers_by_retransmission() {
        let mut tb = testbed();
        tb.set_loss_rate(0.05);
        let src = tb.pin(0, 4 << 20);
        let dst = tb.pin(1, 4 << 20);
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
        tb.mem(0).write(src, &data);
        let mut handles = Vec::new();
        // Ten 20 KB writes over a 5 %-lossy link.
        for i in 0..10u64 {
            let off = i * 20_000;
            handles.push(tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst + off,
                    local_vaddr: src + off,
                    len: 20_000,
                },
            ));
        }
        for h in handles {
            tb.run_until_complete(0, h);
        }
        tb.set_loss_rate(0.0);
        tb.run_until_idle();
        assert_eq!(tb.mem(1).read(dst, data.len()), data, "data survives loss");
        assert!(tb.retransmissions(0) > 0, "loss actually happened");
    }

    #[test]
    fn rpc_without_kernel_is_naked() {
        let mut tb = testbed();
        tb.pin(0, 1 << 20);
        tb.pin(1, 1 << 20);
        let h = tb.post(
            0,
            1,
            WorkRequest::Rpc {
                rpc_op: RpcOpCode(0x7777),
                params: Bytes::from_static(b"whatever"),
            },
        );
        // The params packet is ACKed (receipt) — completion still happens —
        // and the fabric counts the unmatched request.
        tb.run_until_complete(0, h);
        tb.run_until_idle();
        assert_eq!(tb.fabric(1).unmatched(), 1);
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = || {
            let mut tb = testbed();
            tb.set_loss_rate(0.02);
            let src = tb.pin(0, 1 << 20);
            let dst = tb.pin(1, 1 << 20);
            tb.mem(0).write(src, &[5u8; 50_000]);
            let h = tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst,
                    local_vaddr: src,
                    len: 50_000,
                },
            );
            let t = tb.run_until_complete(0, h);
            tb.run_until_idle();
            (t, tb.retransmissions(0))
        };
        assert_eq!(run(), run(), "same seed, same trace");
    }
}
