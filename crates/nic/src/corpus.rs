//! The declarative workload corpus: every scenario family this repo has
//! accumulated — chaos soak, all-to-all shuffle (clean / storm / DCQCN),
//! N:1 incast, the open-loop KV serving tier, and the chained kernel
//! pipelines — described by a [`ScenarioSpec`] value, run at both
//! hardware platforms (§6.1: 10 G and 100 G), and held to two kinds of
//! contract:
//!
//! * a **correctness fingerprint** — an FNV-1a fold of the run's
//!   verified observables (memory images, trace streams, per-request
//!   response words, recovery counters) pinned bit-for-bit against
//!   `tests/golden/corpus.fingerprints`; drift fails the gate until the
//!   change is deliberately re-blessed with `STROM_BLESS=1`;
//! * **perf floors/ceilings** — simulated time is deterministic, so
//!   throughput floors and tail-latency ceilings hold exactly, not
//!   statistically.
//!
//! [`run_corpus`] executes the full matrix and returns a
//! [`CorpusReport`] that renders to one machine-readable JSON document
//! (schema `strom-corpus-v1`); the `figures corpus` entry point writes
//! it to `CORPUS.json` and fails loudly on any fingerprint drift, gate
//! violation, or failed cross-platform check. Specs round-trip through
//! that JSON ([`ScenarioSpec::to_json`] / [`ScenarioSpec::from_json`]),
//! so a failing case can be re-run from the report alone.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use strom_sim::time::{MICROS, NANOS};
use strom_sim::EcnConfig;

use crate::chaos::{run_chaos, ChaosSpec};
use crate::cluster_chain::{run_crcverify_shuffle, run_filter_agg_hll, ChainSpec};
use crate::cluster_incast::{run_incast, IncastSpec};
use crate::cluster_shuffle::{run_shuffle, ShuffleSpec};
use crate::config::Platform;
use crate::fault::LinkFaultModel;
use crate::kv_serve::{run_kv_serve, KvSpec};

mod json;

pub use json::Value as JsonValue;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Which chained kernel pipeline a [`Workload::KernelChain`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainKind {
    /// filter → aggregate → HyperLogLog.
    FilterAggHll,
    /// CRC-verify → radix shuffle.
    CrcVerifyShuffle,
}

impl ChainKind {
    /// The wire name used in spec JSON.
    pub fn name(self) -> &'static str {
        match self {
            ChainKind::FilterAggHll => "filter-agg-hll",
            ChainKind::CrcVerifyShuffle => "crcverify-shuffle",
        }
    }

    /// Parses a wire name back to the kind.
    pub fn from_name(name: &str) -> Option<ChainKind> {
        match name {
            "filter-agg-hll" => Some(ChainKind::FilterAggHll),
            "crcverify-shuffle" => Some(ChainKind::CrcVerifyShuffle),
            _ => None,
        }
    }
}

/// The declarative workload of one scenario. Every field is a plain
/// number or flag: the runner materializes the full simulation spec
/// (switch geometry, fault models, timeouts) deterministically from
/// these plus the platform and seed, so a `Workload` value plus a seed
/// IS the scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// Two-host READ/WRITE soak under a seed-composed fault schedule
    /// ([`crate::chaos::chaos_model`]); every byte verified against a
    /// pure-array reference.
    ChaosSoak {
        /// Upper bound on the op count (the seed draws `2..ops`).
        ops: u64,
    },
    /// All-to-all shuffle over a switched cluster.
    Shuffle {
        /// Cluster size (≥ 2).
        nodes: usize,
        /// 8 B values per node table.
        values_per_node: usize,
        /// Shallow fabric (32-frame egress queues) plus 2 % Bernoulli
        /// link loss — the congestion-storm geometry. `false` is the
        /// clean deep-buffered fabric (1024-frame queues, no loss).
        lossy: bool,
        /// DCQCN congestion control on every NIC.
        cc: bool,
        /// ECN step marking at the switch egress queues.
        ecn: bool,
    },
    /// N:1 incast into one receiver through a line-rate switch port.
    Incast {
        /// Concurrent senders.
        senders: usize,
        /// Outstanding messages per sender.
        window: usize,
        /// READ-heavy mode: the congested traffic is the read-response
        /// stream converging on node 0.
        reads: bool,
        /// DCQCN congestion control on every NIC.
        cc: bool,
        /// ECN step marking at the switch egress queues.
        ecn: bool,
    },
    /// Open-loop KV serving tier (Poisson arrivals, Zipf keys,
    /// 70/20/10 GET/PUT/traversal, exactly-once PUT audit).
    KvServe {
        /// Server shards.
        servers: usize,
        /// Client nodes.
        clients: usize,
        /// Mean Poisson inter-arrival gap, nanoseconds.
        mean_gap_ns: u64,
        /// Total requests offered.
        requests: usize,
    },
    /// A chained on-NIC kernel pipeline over a two-node testbed.
    KernelChain {
        /// Which pipeline.
        chain: ChainKind,
        /// 8 B tuples streamed through it.
        tuples: usize,
    },
}

impl Workload {
    /// The wire name of the workload family.
    pub fn family(&self) -> &'static str {
        match self {
            Workload::ChaosSoak { .. } => "chaos-soak",
            Workload::Shuffle { .. } => "shuffle",
            Workload::Incast { .. } => "incast",
            Workload::KvServe { .. } => "kv-serve",
            Workload::KernelChain { .. } => "kernel-chain",
        }
    }
}

/// Why a [`ScenarioSpec`] was rejected. Typed so tooling can
/// distinguish a malformed document from a structurally valid spec
/// that asks for an impossible run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The scenario name is empty.
    EmptyName,
    /// The scenario name contains a character outside `[a-z0-9-]`.
    BadName(char),
    /// The JSON named a workload family the corpus does not know.
    UnknownScenario(String),
    /// The JSON named a platform other than `10g`/`100g`.
    UnknownPlatform(String),
    /// The JSON named a kernel chain the corpus does not know.
    UnknownChain(String),
    /// A field is outside the range the simulator supports.
    InvalidShape(&'static str),
    /// The fields are individually valid but contradict each other
    /// (e.g. DCQCN without an ECN-marking switch: the NICs would stamp
    /// ECT(0) and wait forever for marks that never come).
    Inconsistent(&'static str),
    /// The document is not valid spec JSON (parse error, missing or
    /// mistyped field).
    Malformed(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyName => write!(f, "scenario name is empty"),
            SpecError::BadName(c) => write!(f, "scenario name contains {c:?} (want [a-z0-9-])"),
            SpecError::UnknownScenario(s) => write!(f, "unknown workload family {s:?}"),
            SpecError::UnknownPlatform(s) => write!(f, "unknown platform {s:?} (want 10g|100g)"),
            SpecError::UnknownChain(s) => write!(f, "unknown kernel chain {s:?}"),
            SpecError::InvalidShape(why) => write!(f, "invalid shape: {why}"),
            SpecError::Inconsistent(why) => write!(f, "inconsistent spec: {why}"),
            SpecError::Malformed(why) => write!(f, "malformed spec JSON: {why}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One scenario of the corpus: a name, a platform, a seed, and a
/// declarative workload. Everything a run observes is a deterministic
/// function of this value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Kebab-case scenario name (`[a-z0-9-]+`), unique per workload
    /// shape within a corpus.
    pub name: String,
    /// Hardware platform preset.
    pub platform: Platform,
    /// Base seed; corpus full runs fold extra derived seeds in.
    pub seed: u64,
    /// The declarative workload.
    pub workload: Workload,
}

/// What one scenario run observed: the correctness fingerprint plus the
/// perf observables the gates are written against.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// FNV-1a fold of the run's verified observables.
    pub fingerprint: u64,
    /// Named perf observables (`elapsed_us` is always present).
    pub perf: Vec<(&'static str, f64)>,
}

impl ScenarioOutcome {
    /// Looks up one perf observable.
    pub fn perf(&self, key: &str) -> Option<f64> {
        self.perf.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

impl ScenarioSpec {
    /// Checks the spec against the ranges and consistency rules the
    /// runner assumes.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        if let Some(c) = self
            .name
            .chars()
            .find(|c| !c.is_ascii_lowercase() && !c.is_ascii_digit() && *c != '-')
        {
            return Err(SpecError::BadName(c));
        }
        match self.workload {
            Workload::ChaosSoak { ops } => {
                if !(3..=10_000).contains(&ops) {
                    return Err(SpecError::InvalidShape("chaos ops must be in 3..=10000"));
                }
            }
            Workload::Shuffle {
                nodes,
                values_per_node,
                lossy: _,
                cc,
                ecn,
            } => {
                if !(2..=16).contains(&nodes) {
                    return Err(SpecError::InvalidShape("shuffle nodes must be in 2..=16"));
                }
                if !(1..=1 << 20).contains(&values_per_node) {
                    return Err(SpecError::InvalidShape(
                        "shuffle values_per_node must be in 1..=2^20",
                    ));
                }
                if cc && !ecn {
                    return Err(SpecError::Inconsistent(
                        "shuffle cc=true needs ecn=true: DCQCN only reacts to CE marks",
                    ));
                }
            }
            Workload::Incast {
                senders,
                window,
                reads: _,
                cc,
                ecn,
            } => {
                if !(1..=32).contains(&senders) {
                    return Err(SpecError::InvalidShape("incast senders must be in 1..=32"));
                }
                if !(1..=64).contains(&window) {
                    return Err(SpecError::InvalidShape("incast window must be in 1..=64"));
                }
                if cc && !ecn {
                    return Err(SpecError::Inconsistent(
                        "incast cc=true needs ecn=true: DCQCN only reacts to CE marks",
                    ));
                }
            }
            Workload::KvServe {
                servers,
                clients,
                mean_gap_ns,
                requests,
            } => {
                if !(1..=8).contains(&servers) {
                    return Err(SpecError::InvalidShape("kv servers must be in 1..=8"));
                }
                if !(1..=8).contains(&clients) {
                    return Err(SpecError::InvalidShape("kv clients must be in 1..=8"));
                }
                if mean_gap_ns == 0 {
                    return Err(SpecError::InvalidShape("kv mean_gap_ns must be nonzero"));
                }
                if !(1..=100_000).contains(&requests) {
                    return Err(SpecError::InvalidShape("kv requests must be in 1..=100000"));
                }
            }
            Workload::KernelChain { chain: _, tuples } => {
                if !(1..=1 << 22).contains(&tuples) {
                    return Err(SpecError::InvalidShape("chain tuples must be in 1..=2^22"));
                }
            }
        }
        Ok(())
    }

    /// Case identity within a corpus: `name@platform`.
    pub fn id(&self) -> String {
        format!("{}@{}", self.name, self.platform)
    }

    /// Validates and runs the scenario at its own seed.
    pub fn run(&self) -> Result<ScenarioOutcome, SpecError> {
        self.validate()?;
        Ok(self.run_seeded(self.seed))
    }

    /// Runs the (already validated) scenario at an explicit seed — the
    /// corpus full scale folds several derived seeds per case.
    fn run_seeded(&self, seed: u64) -> ScenarioOutcome {
        let us = |ps: u64| ps as f64 / 1e6;
        match self.workload {
            Workload::ChaosSoak { ops } => {
                let out = run_chaos(&ChaosSpec {
                    platform: self.platform,
                    ops,
                    seed,
                });
                ScenarioOutcome {
                    fingerprint: out.fingerprint,
                    perf: vec![
                        ("elapsed_us", us(out.elapsed_ps)),
                        ("bytes_moved", out.bytes_moved as f64),
                        ("retransmissions", out.retransmissions as f64),
                        ("frames_lost", out.frames_lost as f64),
                        ("crc_dropped", out.crc_dropped as f64),
                    ],
                }
            }
            Workload::Shuffle {
                nodes,
                values_per_node,
                lossy,
                cc,
                ecn,
            } => {
                let mut spec = ShuffleSpec::new(nodes, values_per_node, seed);
                spec.platform = self.platform;
                spec.trace_capacity = Some(1 << 14);
                // Queueing delay on deep queues exceeds the platform
                // timeout; pin it high so queued frames are not counted
                // as spurious retransmissions.
                spec.retransmit_timeout = Some(1_000 * MICROS);
                if lossy {
                    spec.switch.egress_capacity = 32;
                    spec.fault = LinkFaultModel::bernoulli(0.02);
                } else {
                    spec.switch.egress_capacity = 1024;
                }
                if ecn {
                    let mut mark = EcnConfig::step(8);
                    mark.seed = seed ^ 0xECF;
                    spec.switch.ecn = Some(mark);
                }
                spec.cc = cc;
                let out = run_shuffle(&spec);
                let mut fp = FNV_OFFSET;
                for word in [
                    out.fingerprint.unwrap_or(0),
                    out.bytes_shuffled,
                    out.elapsed_ps,
                    out.p99_rpc_ps.unwrap_or(0),
                    out.tail_drops,
                    out.retransmissions,
                ] {
                    fp = fnv_fold(fp, word);
                }
                ScenarioOutcome {
                    fingerprint: fp,
                    perf: vec![
                        ("elapsed_us", us(out.elapsed_ps)),
                        ("aggregate_gbps", out.aggregate_gbps),
                        ("p99_rpc_us", us(out.p99_rpc_ps.unwrap_or(0))),
                        ("tail_drops", out.tail_drops as f64),
                        ("retransmissions", out.retransmissions as f64),
                    ],
                }
            }
            Workload::Incast {
                senders,
                window,
                reads,
                cc,
                ecn,
            } => {
                let mut spec = IncastSpec::new(senders, window, seed);
                spec.platform = self.platform;
                spec.messages_per_sender = 12;
                // Line-rate egress (port_rate: None follows the
                // platform), deep enough not to tail-drop at these
                // windows, marking early enough for DCQCN to react.
                spec.switch.egress_capacity = 256;
                if ecn {
                    let mut mark = EcnConfig::step(16);
                    mark.seed = seed ^ 0xECF;
                    spec.switch.ecn = Some(mark);
                }
                spec.cc = cc;
                spec.reads = reads;
                spec.retransmit_timeout = Some(1_000 * MICROS);
                let out = run_incast(&spec);
                let mut fp = FNV_OFFSET;
                for word in [
                    out.elapsed_ps,
                    out.p50_ps.unwrap_or(0),
                    out.p99_ps.unwrap_or(0),
                    out.p999_ps.unwrap_or(0),
                    out.tail_drops,
                    out.ecn_marked,
                    out.cnps,
                    out.retransmissions,
                    out.qp_errors as u64,
                ] {
                    fp = fnv_fold(fp, word);
                }
                for &b in &out.per_sender_bytes {
                    fp = fnv_fold(fp, b);
                }
                ScenarioOutcome {
                    fingerprint: fp,
                    perf: vec![
                        ("elapsed_us", us(out.elapsed_ps)),
                        ("goodput_gbps", out.goodput_gbps),
                        ("p999_us", us(out.p999_ps.unwrap_or(0))),
                        ("tail_drops", out.tail_drops as f64),
                        ("ecn_marked", out.ecn_marked as f64),
                        ("qp_errors", out.qp_errors as f64),
                        ("jain", out.jain),
                    ],
                }
            }
            Workload::KvServe {
                servers,
                clients,
                mean_gap_ns,
                requests,
            } => {
                let mut spec = KvSpec::new(servers, clients, mean_gap_ns * NANOS, seed);
                spec.platform = self.platform;
                spec.requests = requests;
                let out = run_kv_serve(&spec);
                let violations = out.verify_failures
                    + out.lost_puts
                    + out.dup_puts
                    + out.put_errors
                    + out.lost_responses
                    + out.qp_errors as u64;
                let mut fp = FNV_OFFSET;
                for word in [
                    out.fingerprint,
                    out.elapsed_ps,
                    out.completed,
                    out.retransmissions,
                    violations,
                ] {
                    fp = fnv_fold(fp, word);
                }
                ScenarioOutcome {
                    fingerprint: fp,
                    perf: vec![
                        ("elapsed_us", us(out.elapsed_ps)),
                        ("p999_us", us(out.p999_ps.unwrap_or(0))),
                        ("achieved_krps", out.achieved_rps as f64 / 1e3),
                        ("completed", out.completed as f64),
                        ("violations", violations as f64),
                    ],
                }
            }
            Workload::KernelChain { chain, tuples } => {
                let mut spec = ChainSpec::new(tuples, seed);
                spec.platform = self.platform;
                let out = match chain {
                    ChainKind::FilterAggHll => run_filter_agg_hll(&spec),
                    ChainKind::CrcVerifyShuffle => run_crcverify_shuffle(&spec),
                };
                let mut fp = FNV_OFFSET;
                for word in [
                    out.fingerprint,
                    out.payload_bytes,
                    out.elapsed_ps,
                    u64::from(out.error_code.unwrap_or(0)),
                    out.retransmissions,
                ] {
                    fp = fnv_fold(fp, word);
                }
                ScenarioOutcome {
                    fingerprint: fp,
                    perf: vec![
                        ("elapsed_us", us(out.elapsed_ps)),
                        ("gib_per_sec", out.gib_per_sec),
                        (
                            "chain_errors",
                            f64::from(u8::from(out.error_code.is_some())),
                        ),
                        ("retransmissions", out.retransmissions as f64),
                    ],
                }
            }
        }
    }

    /// Serializes the spec to one JSON object (seeds as hex strings —
    /// u64 does not survive a float round-trip).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":{},\"platform\":\"{}\",\"seed\":\"{:#x}\",\"workload\":{{\"family\":\"{}\"",
            json::escape(&self.name),
            self.platform,
            self.seed,
            self.workload.family()
        );
        match self.workload {
            Workload::ChaosSoak { ops } => {
                let _ = write!(s, ",\"ops\":{ops}");
            }
            Workload::Shuffle {
                nodes,
                values_per_node,
                lossy,
                cc,
                ecn,
            } => {
                let _ = write!(
                    s,
                    ",\"nodes\":{nodes},\"values_per_node\":{values_per_node},\
                     \"lossy\":{lossy},\"cc\":{cc},\"ecn\":{ecn}"
                );
            }
            Workload::Incast {
                senders,
                window,
                reads,
                cc,
                ecn,
            } => {
                let _ = write!(
                    s,
                    ",\"senders\":{senders},\"window\":{window},\"reads\":{reads},\
                     \"cc\":{cc},\"ecn\":{ecn}"
                );
            }
            Workload::KvServe {
                servers,
                clients,
                mean_gap_ns,
                requests,
            } => {
                let _ = write!(
                    s,
                    ",\"servers\":{servers},\"clients\":{clients},\
                     \"mean_gap_ns\":{mean_gap_ns},\"requests\":{requests}"
                );
            }
            Workload::KernelChain { chain, tuples } => {
                let _ = write!(s, ",\"chain\":\"{}\",\"tuples\":{tuples}", chain.name());
            }
        }
        s.push_str("}}");
        s
    }

    /// Parses a spec back from JSON and validates it. The inverse of
    /// [`ScenarioSpec::to_json`]: any spec that validates round-trips
    /// exactly.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = json::parse(text).map_err(SpecError::Malformed)?;
        let spec = Self::from_value(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Builds a spec from an already-parsed JSON value (the report
    /// embeds spec objects inside case objects).
    pub fn from_value(v: &json::Value) -> Result<ScenarioSpec, SpecError> {
        let name = v.str_field("name")?.to_string();
        let platform_name = v.str_field("platform")?;
        let platform = Platform::from_name(platform_name)
            .ok_or_else(|| SpecError::UnknownPlatform(platform_name.to_string()))?;
        let seed_text = v.str_field("seed")?;
        let seed = seed_text
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SpecError::Malformed(format!("seed {seed_text:?} is not 0x-hex")))?;
        let w = v.field("workload")?;
        let family = w.str_field("family")?;
        let workload = match family {
            "chaos-soak" => Workload::ChaosSoak {
                ops: w.u64_field("ops")?,
            },
            "shuffle" => Workload::Shuffle {
                nodes: w.usize_field("nodes")?,
                values_per_node: w.usize_field("values_per_node")?,
                lossy: w.bool_field("lossy")?,
                cc: w.bool_field("cc")?,
                ecn: w.bool_field("ecn")?,
            },
            "incast" => Workload::Incast {
                senders: w.usize_field("senders")?,
                window: w.usize_field("window")?,
                reads: w.bool_field("reads")?,
                cc: w.bool_field("cc")?,
                ecn: w.bool_field("ecn")?,
            },
            "kv-serve" => Workload::KvServe {
                servers: w.usize_field("servers")?,
                clients: w.usize_field("clients")?,
                mean_gap_ns: w.u64_field("mean_gap_ns")?,
                requests: w.usize_field("requests")?,
            },
            "kernel-chain" => {
                let chain_name = w.str_field("chain")?;
                Workload::KernelChain {
                    chain: ChainKind::from_name(chain_name)
                        .ok_or_else(|| SpecError::UnknownChain(chain_name.to_string()))?,
                    tuples: w.usize_field("tuples")?,
                }
            }
            other => return Err(SpecError::UnknownScenario(other.to_string())),
        };
        Ok(ScenarioSpec {
            name,
            platform,
            seed,
            workload,
        })
    }
}

/// A floor and/or ceiling on one perf observable of a case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfGate {
    /// Which [`ScenarioOutcome::perf`] key the gate holds.
    pub key: &'static str,
    /// Inclusive floor, if any.
    pub min: Option<f64>,
    /// Inclusive ceiling, if any.
    pub max: Option<f64>,
}

impl PerfGate {
    /// A floor-only gate.
    pub fn at_least(key: &'static str, min: f64) -> Self {
        PerfGate {
            key,
            min: Some(min),
            max: None,
        }
    }

    /// A ceiling-only gate.
    pub fn at_most(key: &'static str, max: f64) -> Self {
        PerfGate {
            key,
            min: None,
            max: Some(max),
        }
    }

    /// Does `value` satisfy the gate?
    pub fn admits(&self, value: f64) -> bool {
        self.min.is_none_or(|m| value >= m) && self.max.is_none_or(|m| value <= m)
    }
}

/// One case of the corpus: a spec plus its gates.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// The scenario.
    pub spec: ScenarioSpec,
    /// Perf floors/ceilings asserted on the first-seed run.
    pub gates: Vec<PerfGate>,
    /// Include this case in the 100 G-beats-10 G cross-platform check.
    /// Off for fault-injected scenarios, where elapsed time is dominated
    /// by seed-dependent retransmission timeouts rather than link rate.
    pub cross_check: bool,
}

/// How many derived seeds each case folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusScale {
    /// One seed per case (CI default).
    Quick,
    /// Three seeds per case.
    Full,
}

impl CorpusScale {
    /// The wire name (`quick`/`full`).
    pub fn name(self) -> &'static str {
        match self {
            CorpusScale::Quick => "quick",
            CorpusScale::Full => "full",
        }
    }

    /// Seeds folded per case.
    pub fn seeds_per_case(self) -> usize {
        match self {
            CorpusScale::Quick => 1,
            CorpusScale::Full => 3,
        }
    }

    /// The derived seed list for a case: the spec's own seed first, then
    /// fixed-stride derivations (Weyl increment) so full-scale
    /// fingerprints pin extra independent draws.
    pub fn seeds(self, base: u64) -> Vec<u64> {
        (0..self.seeds_per_case() as u64)
            .map(|k| base.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect()
    }
}

/// One evaluated gate in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// The gate as declared.
    pub gate: PerfGate,
    /// The observed value.
    pub value: f64,
    /// Did it hold?
    pub pass: bool,
}

/// One evaluated case in a report.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The scenario that ran.
    pub spec: ScenarioSpec,
    /// The seeds folded into the fingerprint (scale-dependent).
    pub seeds: Vec<u64>,
    /// FNV-1a fold of every per-seed run fingerprint.
    pub fingerprint: u64,
    /// The pinned golden fingerprint, if one exists for this case+scale.
    pub golden: Option<u64>,
    /// First-seed perf observables.
    pub perf: Vec<(&'static str, f64)>,
    /// Evaluated gates.
    pub gates: Vec<GateResult>,
}

impl CaseResult {
    /// `name@platform`.
    pub fn id(&self) -> String {
        self.spec.id()
    }

    /// Fingerprint matches its golden (an unpinned case fails: every
    /// corpus case must be blessed before it can gate).
    pub fn fingerprint_ok(&self) -> bool {
        self.golden == Some(self.fingerprint)
    }

    /// Fingerprint pinned and matching, every gate holding.
    pub fn pass(&self) -> bool {
        self.fingerprint_ok() && self.gates.iter().all(|g| g.pass)
    }

    /// Looks up one perf observable.
    pub fn perf(&self, key: &str) -> Option<f64> {
        self.perf.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// One cross-case consistency check in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheck {
    /// Check family (`platform-speedup` or `cc-pair`).
    pub kind: &'static str,
    /// Human-readable statement of what must hold.
    pub label: String,
    /// Left side of the comparison (must be strictly less).
    pub lhs: f64,
    /// Right side of the comparison.
    pub rhs: f64,
    /// Did `lhs < rhs` hold?
    pub pass: bool,
}

/// The result of one corpus run: every case, every cross check, and a
/// single pass/fail verdict with itemized failures.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// The scale that ran.
    pub scale: CorpusScale,
    /// Per-case results, in corpus order.
    pub cases: Vec<CaseResult>,
    /// Cross-case checks.
    pub cross_checks: Vec<CrossCheck>,
}

impl CorpusReport {
    /// Every reason this run fails the gate (empty ⇒ pass).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for case in &self.cases {
            match case.golden {
                None => out.push(format!(
                    "{} [{}]: no golden fingerprint pinned (got {:#018x}) — bless with \
                     STROM_BLESS=1 figures corpus",
                    case.id(),
                    self.scale.name(),
                    case.fingerprint
                )),
                Some(want) if want != case.fingerprint => out.push(format!(
                    "{} [{}]: fingerprint drift: got {:#018x}, golden {:#018x}",
                    case.id(),
                    self.scale.name(),
                    case.fingerprint,
                    want
                )),
                Some(_) => {}
            }
            for g in &case.gates {
                if !g.pass {
                    out.push(format!(
                        "{}: gate {} = {} violates [{}, {}]",
                        case.id(),
                        g.gate.key,
                        g.value,
                        g.gate.min.map_or("-inf".into(), |m| m.to_string()),
                        g.gate.max.map_or("+inf".into(), |m| m.to_string()),
                    ));
                }
            }
        }
        for c in &self.cross_checks {
            if !c.pass {
                out.push(format!(
                    "cross-check {} failed: {} (lhs {} !< rhs {})",
                    c.kind, c.label, c.lhs, c.rhs
                ));
            }
        }
        out
    }

    /// Overall verdict.
    pub fn pass(&self) -> bool {
        self.failures().is_empty()
    }

    /// Renders the report as one `strom-corpus-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"strom-corpus-v1\",\n  \"scale\": \"{}\",\n  \"cases\": [",
            self.scale.name()
        );
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    {{\"spec\": {}, \"seeds\": [", case.spec.to_json());
            for (j, seed) in case.seeds.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{seed:#x}\"");
            }
            let _ = write!(s, "], \"fingerprint\": \"{:#018x}\", ", case.fingerprint);
            match case.golden {
                Some(g) => {
                    let _ = write!(s, "\"golden\": \"{g:#018x}\", ");
                }
                None => s.push_str("\"golden\": null, "),
            }
            let _ = write!(
                s,
                "\"fingerprint_ok\": {}, \"perf\": {{",
                case.fingerprint_ok()
            );
            for (j, (k, v)) in case.perf.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{k}\": {}", json::number(*v));
            }
            s.push_str("}, \"gates\": [");
            for (j, g) in case.gates.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"key\": \"{}\", \"min\": {}, \"max\": {}, \"value\": {}, \"pass\": {}}}",
                    g.gate.key,
                    g.gate.min.map_or("null".into(), json::number),
                    g.gate.max.map_or("null".into(), json::number),
                    json::number(g.value),
                    g.pass
                );
            }
            let _ = write!(s, "], \"pass\": {}}}", case.pass());
        }
        s.push_str("\n  ],\n  \"cross_checks\": [");
        for (i, c) in self.cross_checks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"kind\": \"{}\", \"label\": {}, \"lhs\": {}, \"rhs\": {}, \"pass\": {}}}",
                c.kind,
                json::escape(&c.label),
                json::number(c.lhs),
                json::number(c.rhs),
                c.pass
            );
        }
        s.push_str("\n  ],\n  \"failures\": [");
        for (i, f) in self.failures().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    {}", json::escape(f));
        }
        let _ = write!(s, "\n  ],\n  \"pass\": {}\n}}\n", self.pass());
        s
    }

    /// Merges this run's fingerprints into the golden file: lines for
    /// this scale's case ids are replaced, everything else is kept, the
    /// result is sorted. Returns the file path.
    pub fn bless(&self) -> std::io::Result<PathBuf> {
        let path = golden_path();
        let mut lines: BTreeMap<(String, String), u64> = match std::fs::read_to_string(&path) {
            Ok(text) => parse_golden(&text),
            Err(_) => BTreeMap::new(),
        };
        for case in &self.cases {
            lines.insert((case.id(), self.scale.name().to_string()), case.fingerprint);
        }
        let mut text = String::from(
            "# Corpus golden fingerprints: <name@platform> <scale> <fnv1a-hex>\n\
             # Re-bless after an intentional behaviour change with:\n\
             #   STROM_BLESS=1 cargo run --release -p strom-bench --bin figures -- corpus\n",
        );
        for ((id, scale), fp) in &lines {
            let _ = writeln!(text, "{id} {scale} {fp:#018x}");
        }
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

/// Where the pinned corpus fingerprints live (inside the crate, so both
/// the test suite and the `figures` binary resolve the same file
/// regardless of working directory).
pub fn golden_path() -> PathBuf {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/corpus.fingerprints"
    ))
    .to_path_buf()
}

/// Parses the golden file into `(case id, scale) → fingerprint`.
fn parse_golden(text: &str) -> BTreeMap<(String, String), u64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(id), Some(scale), Some(fp)) = (parts.next(), parts.next(), parts.next()) {
            if let Some(fp) = fp
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            {
                map.insert((id.to_string(), scale.to_string()), fp);
            }
        }
    }
    map
}

/// Loads the pinned fingerprints for `scale`, keyed by case id.
pub fn golden_fingerprints(scale: CorpusScale) -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(golden_path()).unwrap_or_default();
    parse_golden(&text)
        .into_iter()
        .filter(|((_, s), _)| s == scale.name())
        .map(|((id, _), fp)| (id, fp))
        .collect()
}

/// Runs one set of cases at `scale` against the pinned goldens and
/// evaluates cross-checks over the results.
pub fn run_corpus_cases(cases: &[CorpusCase], scale: CorpusScale) -> CorpusReport {
    for case in cases {
        case.spec
            .validate()
            .unwrap_or_else(|e| panic!("corpus case {} is invalid: {e}", case.spec.id()));
    }
    let golden = golden_fingerprints(scale);
    let mut results = Vec::new();
    for case in cases {
        let seeds = scale.seeds(case.spec.seed);
        let mut fp = FNV_OFFSET;
        let mut first: Option<ScenarioOutcome> = None;
        for &seed in &seeds {
            let out = case.spec.run_seeded(seed);
            fp = fnv_fold(fp, seed);
            fp = fnv_fold(fp, out.fingerprint);
            if first.is_none() {
                first = Some(out);
            }
        }
        let first = first.expect("every scale runs at least one seed");
        let gates = case
            .gates
            .iter()
            .map(|g| {
                let value = first.perf(g.key).unwrap_or_else(|| {
                    panic!("case {}: gate key {:?} not in perf", case.spec.id(), g.key)
                });
                GateResult {
                    gate: *g,
                    value,
                    pass: g.admits(value),
                }
            })
            .collect();
        results.push(CaseResult {
            spec: case.spec.clone(),
            seeds,
            fingerprint: fp,
            golden: golden.get(&case.spec.id()).copied(),
            perf: first.perf,
            gates,
        });
    }
    let cross_checks = cross_checks(cases, &results);
    CorpusReport {
        scale,
        cases: results,
        cross_checks,
    }
}

/// The cross-case checks: for every `cross_check` workload present at
/// both platforms, the 100 G run must be strictly faster end to end
/// (§7's crossover direction); and for the shuffle storm/DCQCN pair,
/// congestion control must strictly cut retransmissions at each
/// platform.
fn cross_checks(cases: &[CorpusCase], results: &[CaseResult]) -> Vec<CrossCheck> {
    let find = |name: &str, platform: Platform| {
        results
            .iter()
            .find(|r| r.spec.name == name && r.spec.platform == platform)
    };
    let mut out = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for case in cases {
        let name = case.spec.name.as_str();
        if !case.cross_check || seen.contains(&name) {
            continue;
        }
        seen.push(name);
        if let (Some(slow), Some(fast)) = (
            find(name, Platform::TenGig),
            find(name, Platform::HundredGig),
        ) {
            let (lhs, rhs) = (
                fast.perf("elapsed_us").unwrap_or(f64::INFINITY),
                slow.perf("elapsed_us").unwrap_or(0.0),
            );
            out.push(CrossCheck {
                kind: "platform-speedup",
                label: format!("{name}: 100g elapsed < 10g elapsed"),
                lhs,
                rhs,
                pass: lhs < rhs,
            });
        }
    }
    for &platform in &Platform::ALL {
        if let (Some(storm), Some(dcqcn)) = (
            find("shuffle-storm", platform),
            find("shuffle-dcqcn", platform),
        ) {
            let (lhs, rhs) = (
                dcqcn.perf("retransmissions").unwrap_or(f64::INFINITY),
                storm.perf("retransmissions").unwrap_or(0.0),
            );
            out.push(CrossCheck {
                kind: "cc-pair",
                label: format!("{platform}: DCQCN retransmissions < storm retransmissions"),
                lhs,
                rhs,
                pass: lhs < rhs,
            });
        }
    }
    out
}

/// Runs the default corpus — every scenario family at both platforms —
/// at `scale`.
pub fn run_corpus(scale: CorpusScale) -> CorpusReport {
    run_corpus_cases(&default_corpus(), scale)
}

/// The corpus: nine scenario shapes × both platforms. Perf floors and
/// ceilings are written against the deterministic simulated time of the
/// pinned seeds — tight enough to catch a regression, loose enough to
/// survive an intentional re-bless of nearby behaviour.
pub fn default_corpus() -> Vec<CorpusCase> {
    let mut cases = Vec::new();
    for &p in &Platform::ALL {
        let hundred = p == Platform::HundredGig;
        let spec = |name: &str, seed: u64, workload: Workload| ScenarioSpec {
            name: name.to_string(),
            platform: p,
            seed,
            workload,
        };

        // Two-host chaos soak: composed faults, byte-verified, bounded
        // recovery. Elapsed is timeout-dominated, so no platform race.
        cases.push(CorpusCase {
            spec: spec("chaos-soak", 0xC440_5001, Workload::ChaosSoak { ops: 8 }),
            gates: vec![
                PerfGate::at_least("retransmissions", 1.0),
                PerfGate::at_most("elapsed_us", 1_500.0),
            ],
            cross_check: false,
        });

        // Clean deep-buffered shuffle: zero loss tolerated, aggregate
        // throughput floored per platform.
        cases.push(CorpusCase {
            spec: spec(
                "shuffle",
                0x5CA1_E001,
                Workload::Shuffle {
                    nodes: 4,
                    values_per_node: 3_000,
                    lossy: false,
                    cc: false,
                    ecn: false,
                },
            ),
            gates: vec![
                PerfGate::at_most("tail_drops", 0.0),
                PerfGate::at_most("retransmissions", 0.0),
                PerfGate::at_least("aggregate_gbps", if hundred { 9.0 } else { 1.8 }),
                PerfGate::at_most("elapsed_us", if hundred { 15.0 } else { 60.0 }),
            ],
            cross_check: true,
        });

        // Shallow-fabric storm without congestion control: loss and
        // drops must actually bite (a quiet storm means the fault model
        // or queue bound silently stopped applying).
        cases.push(CorpusCase {
            spec: spec(
                "shuffle-storm",
                0x5CA1_E002,
                Workload::Shuffle {
                    nodes: 4,
                    values_per_node: 12_000,
                    lossy: true,
                    cc: false,
                    ecn: false,
                },
            ),
            gates: vec![
                PerfGate::at_least("retransmissions", 10.0),
                PerfGate::at_most("elapsed_us", 3_000.0),
            ],
            cross_check: false,
        });

        // The same storm geometry with DCQCN: the cc-pair cross-check
        // asserts it strictly cuts retransmissions.
        cases.push(CorpusCase {
            spec: spec(
                "shuffle-dcqcn",
                0x5CA1_E002,
                Workload::Shuffle {
                    nodes: 4,
                    values_per_node: 12_000,
                    lossy: true,
                    cc: true,
                    ecn: true,
                },
            ),
            gates: vec![
                PerfGate::at_most("tail_drops", 0.0),
                PerfGate::at_most("retransmissions", 80.0),
                PerfGate::at_least("aggregate_gbps", if hundred { 3.4 } else { 1.9 }),
            ],
            cross_check: false,
        });

        // WRITE incast under DCQCN at a sane window: survivable, no
        // drops, marking active.
        cases.push(CorpusCase {
            spec: spec(
                "incast",
                0x1CA5_0001,
                Workload::Incast {
                    senders: 8,
                    window: 2,
                    reads: false,
                    cc: true,
                    ecn: true,
                },
            ),
            gates: vec![
                PerfGate::at_most("qp_errors", 0.0),
                PerfGate::at_most("tail_drops", 0.0),
                PerfGate::at_least("ecn_marked", 1.0),
                PerfGate::at_least("goodput_gbps", if hundred { 70.0 } else { 4.0 }),
                PerfGate::at_most("p999_us", if hundred { 30.0 } else { 600.0 }),
                PerfGate::at_least("jain", 0.9),
            ],
            cross_check: true,
        });

        // READ-response incast: the converging traffic is the response
        // stream; still survivable.
        cases.push(CorpusCase {
            spec: spec(
                "incast-reads",
                0x1CA5_0002,
                Workload::Incast {
                    senders: 6,
                    window: 2,
                    reads: true,
                    cc: true,
                    ecn: true,
                },
            ),
            gates: vec![
                PerfGate::at_most("qp_errors", 0.0),
                PerfGate::at_most("tail_drops", 0.0),
                PerfGate::at_least("goodput_gbps", if hundred { 65.0 } else { 4.0 }),
                PerfGate::at_most("p999_us", if hundred { 25.0 } else { 400.0 }),
                PerfGate::at_least("jain", 0.9),
            ],
            cross_check: true,
        });

        // Open-loop KV serving at the tuned below-knee gap: clean audit,
        // every request completed, bounded tail.
        cases.push(CorpusCase {
            spec: spec(
                "kv-serve",
                0x4B5E_0001,
                Workload::KvServe {
                    servers: 2,
                    clients: 2,
                    mean_gap_ns: 3_000,
                    requests: 240,
                },
            ),
            gates: vec![
                PerfGate::at_most("violations", 0.0),
                PerfGate::at_least("completed", 240.0),
                PerfGate::at_least("achieved_krps", 280.0),
                PerfGate::at_most("p999_us", if hundred { 30.0 } else { 40.0 }),
            ],
            cross_check: true,
        });

        // Chained kernel pipelines: error-free, throughput floored.
        cases.push(CorpusCase {
            spec: spec(
                "chain-filter-agg-hll",
                0xC4A1_0001,
                Workload::KernelChain {
                    chain: ChainKind::FilterAggHll,
                    tuples: 24_000,
                },
            ),
            gates: vec![
                PerfGate::at_most("chain_errors", 0.0),
                PerfGate::at_most("retransmissions", 0.0),
                PerfGate::at_least("gib_per_sec", if hundred { 7.0 } else { 0.85 }),
            ],
            cross_check: true,
        });
        cases.push(CorpusCase {
            spec: spec(
                "chain-crcverify-shuffle",
                0xC4A1_0002,
                Workload::KernelChain {
                    chain: ChainKind::CrcVerifyShuffle,
                    tuples: 24_000,
                },
            ),
            gates: vec![
                PerfGate::at_most("chain_errors", 0.0),
                PerfGate::at_most("retransmissions", 0.0),
                PerfGate::at_least("gib_per_sec", if hundred { 7.0 } else { 0.85 }),
            ],
            cross_check: true,
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "kv-serve".into(),
            platform: Platform::TenGig,
            seed: 0x4B5E_0001,
            workload: Workload::KvServe {
                servers: 2,
                clients: 2,
                mean_gap_ns: 3_000,
                requests: 40,
            },
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = tiny_spec();
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn inconsistent_cc_without_ecn_is_typed() {
        let mut spec = tiny_spec();
        spec.workload = Workload::Incast {
            senders: 4,
            window: 2,
            reads: false,
            cc: true,
            ecn: false,
        };
        assert!(matches!(spec.validate(), Err(SpecError::Inconsistent(_))));
    }

    #[test]
    fn default_corpus_is_valid_and_covers_both_platforms() {
        let corpus = default_corpus();
        for case in &corpus {
            case.spec.validate().expect("default corpus must validate");
        }
        for &p in &Platform::ALL {
            let families: std::collections::BTreeSet<&str> = corpus
                .iter()
                .filter(|c| c.spec.platform == p)
                .map(|c| c.spec.workload.family())
                .collect();
            assert_eq!(
                families.len(),
                5,
                "all five scenario families must run at {p}"
            );
        }
        // Case ids are unique: the golden file is keyed by them.
        let mut ids: Vec<String> = corpus.iter().map(|c| c.spec.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), corpus.len());
    }

    #[test]
    fn rerunning_a_spec_is_digest_identical() {
        let spec = tiny_spec();
        let a = spec.run().expect("valid");
        let b = spec.run().expect("valid");
        assert_eq!(a, b);
    }
}
