//! The KV serving tier: N client nodes drive M server nodes hosting
//! on-NIC GET/PUT/traversal kernels, under an **open-loop** load
//! generator.
//!
//! The incast benchmark ([`crate::cluster_incast`]) is closed-loop: a
//! sender posts its next message when the previous completes, so the
//! offered load self-throttles to whatever the system sustains.
//! Production serving tiers are not so kind — millions of independent
//! clients do not slow down because the server queue grew. This module
//! models that regime: request *arrival times* come from a seeded
//! arrival process ([`ArrivalProcess::Poisson`] or bursty
//! [`ArrivalProcess::Mmpp`]) that never waits for completions, key
//! popularity is Zipf-skewed, and per-request latency is measured from
//! the **intended arrival time** to response landing — so queueing delay
//! is charged to the tail exactly as an SLO dashboard would. Driving the
//! arrival rate up traces the classic latency knee.
//!
//! Each server node hosts a [`strom_kernels::layouts::KvStore`] (a
//! versioned chained hash table) served entirely by NIC kernels:
//!
//! - **GET**: [`strom_kernels::GetKernel`] in chained mode — response is
//!   the 8 B bucket version header plus the value, `ERR_NOT_FOUND` on a
//!   true miss;
//! - **PUT/INSERT**: [`strom_kernels::PutKernel`] fed by RDMA RPC WRITE —
//!   acks the committed version, so every update is countable;
//! - **traversal**: the generic [`strom_kernels::TraversalKernel`]
//!   walking the same chained entries (§6.2's chaining case).
//!
//! Verification is end-to-end and survives concurrency: every PUT
//! carries a nonce-derived payload
//! ([`strom_kernels::layouts::versioned_value_pattern`] keyed by the
//! request id), acks recover the committed version→nonce order, and the
//! post-run audit replays it: acked versions per key must be exactly
//! `1..=n` (lost or duplicated PUTs are *counted*, not assumed away),
//! the server-side version counter must equal the acked count, and every
//! GET/traversal response must match some version the key legitimately
//! held at or after the GET observed it.
//!
//! Everything derives from the spec's seed; same-spec reruns are
//! bit-identical (the [`KvOutcome::fingerprint`] pins this).

use strom_kernels::framework::{decode_error, ERR_NOT_FOUND};
use strom_kernels::layouts::{build_kv_store, versioned_value_pattern, KvStore};
use strom_kernels::put::{encode_put_request, PutConfig, PUT_HEADER_LEN};
use strom_kernels::simd::bytes_equal;
use strom_kernels::{GetKernel, GetParams, PutKernel, TraversalKernel};
use strom_sim::arrivals::{ArrivalGen, ArrivalProcess, ZipfSampler};
use strom_sim::time::Time;
use strom_sim::SimRng;
use strom_telemetry::{Histogram, MetricsRegistry};
use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::config::Platform;
use crate::fault::LinkFaultModel;
use crate::testbed::{ClusterTestbed, SwitchParams};
use crate::WorkRequest;

/// Everything that determines one serving-tier run.
#[derive(Debug, Clone)]
pub struct KvSpec {
    /// Hardware platform (10 G or 100 G datapath).
    pub platform: Platform,
    /// Server nodes (each hosts one shard of the key space).
    pub servers: usize,
    /// Client nodes (each aggregates many logical clients; arrivals are
    /// generated globally, so a node models an arbitrarily large client
    /// population).
    pub clients: usize,
    /// Preloaded keys per server shard.
    pub keys_per_server: usize,
    /// Primary hash-table entries per server (2 buckets each; fewer
    /// entries ⇒ longer chains).
    pub primary_entries: u64,
    /// Value size in bytes (fixed per tier).
    pub value_size: u32,
    /// Total requests the generator emits.
    pub requests: usize,
    /// The arrival process (the offered-load knob).
    pub process: ArrivalProcess,
    /// Zipf skew of key popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Percent of requests that are GETs.
    pub get_pct: u8,
    /// Percent of requests that are PUTs (the remainder up to 100 are
    /// traversal-kernel lookups).
    pub put_pct: u8,
    /// Percent of GETs that target a deliberately absent key.
    pub miss_pct: u8,
    /// Percent of PUTs that insert a fresh key instead of updating.
    pub insert_pct: u8,
    /// Seed for the schedule and all simulation randomness.
    pub seed: u64,
    /// Switch geometry.
    pub switch: SwitchParams,
    /// Enables DCQCN on every NIC.
    pub cc: bool,
    /// Link fault model for chaos soaks (`None` = clean links).
    pub fault: Option<LinkFaultModel>,
}

impl KvSpec {
    /// A small clean-network spec: Poisson arrivals at `mean_gap_ps`
    /// between requests, moderate skew, a 70/20/10 GET/PUT/traversal mix
    /// with a sprinkle of misses and inserts.
    pub fn new(servers: usize, clients: usize, mean_gap_ps: u64, seed: u64) -> Self {
        KvSpec {
            platform: Platform::TenGig,
            servers,
            clients,
            keys_per_server: 48,
            primary_entries: 16,
            value_size: 64,
            requests: 400,
            process: ArrivalProcess::Poisson {
                mean_gap: mean_gap_ps,
            },
            zipf_theta: 0.99,
            get_pct: 70,
            put_pct: 20,
            miss_pct: 5,
            insert_pct: 10,
            seed,
            switch: SwitchParams::default(),
            cc: false,
            fault: None,
        }
    }
}

/// What one serving-tier run observed. All-integer so reruns compare
/// bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvOutcome {
    /// Requests whose response landed.
    pub completed: u64,
    /// Completed GETs (hits + misses).
    pub gets: u64,
    /// Completed PUTs (updates + inserts).
    pub puts: u64,
    /// Completed traversal-kernel lookups.
    pub traversals: u64,
    /// GETs answered `ERR_NOT_FOUND` (each must have been deliberate).
    pub misses: u64,
    /// Requests whose response never landed (must be 0: RC delivers).
    pub lost_responses: u64,
    /// Responses whose payload matched no version the key ever held,
    /// unexpected misses, and unexpected hits (must be 0).
    pub verify_failures: u64,
    /// PUTs acked but missing from the version ladder, plus server
    /// version counts exceeding acked updates (must be 0).
    pub lost_puts: u64,
    /// Version acks seen twice for the same key (must be 0:
    /// exactly-once).
    pub dup_puts: u64,
    /// PUTs answered with an error word (arena sizing bugs).
    pub put_errors: u64,
    /// Fresh keys committed by insert PUTs.
    pub inserts_acked: u64,
    /// Latency quantiles over all completed requests, picoseconds,
    /// measured from *intended arrival* (open-loop: queueing counts).
    pub p50_ps: Option<u64>,
    pub p99_ps: Option<u64>,
    pub p999_ps: Option<u64>,
    /// Per-op-type p99, picoseconds.
    pub get_p99_ps: Option<u64>,
    pub put_p99_ps: Option<u64>,
    pub traversal_p99_ps: Option<u64>,
    /// Offered load (arrival-process mean), requests per second.
    pub offered_rps: u64,
    /// Achieved throughput: completions over the span from first arrival
    /// to last response, requests per second.
    pub achieved_rps: u64,
    /// First arrival to last response, picoseconds.
    pub elapsed_ps: u64,
    /// Retransmissions summed over all nodes (chaos diagnostics).
    pub retransmissions: u64,
    /// Client↔server QPs that went terminal (must be 0).
    pub qp_errors: usize,
    /// FNV-1a fold of every request's (op, key, latency, response word)
    /// in schedule order — bit-identity across reruns.
    pub fingerprint: u64,
}

/// The operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KvOp {
    /// Chained GET expected to hit.
    Get,
    /// Chained GET on a deliberately absent key.
    GetMiss,
    /// Update of a preloaded key.
    Put,
    /// Insert of a fresh key.
    Insert,
    /// Traversal-kernel lookup (value only, no version header).
    Traversal,
}

/// One scheduled request.
#[derive(Debug, Clone)]
struct Request {
    /// Intended arrival time, relative to traffic start.
    at: Time,
    client: usize,
    server: usize,
    op: KvOp,
    key: u64,
    /// PUT nonce: the value payload is `versioned_value_pattern(key,
    /// nonce, ..)`, recoverable from the committed version via the ack.
    nonce: u64,
}

/// Base of the deliberately-absent key range (never preloaded or
/// inserted).
const MISS_KEY_BASE: u64 = 1 << 40;
/// Base of the fresh-insert key range (never preloaded or GET-sampled).
const INSERT_KEY_BASE: u64 = 1 << 41;

/// Livelock bound for the post-traffic drain.
const EVENT_BUDGET: u64 = 200_000_000;

/// The QP connecting client `c` to server `s`.
fn qpn_for(spec: &KvSpec, c: usize, s: usize) -> Qpn {
    (c * spec.servers + s) as Qpn + 1
}

/// The shard (server index) owning `key`.
fn shard_of(key: u64, servers: usize) -> usize {
    ((key - 1) % servers as u64) as usize
}

/// FNV-1a 64-bit fold.
fn fnv_fold(mut h: u64, words: &[u64]) -> u64 {
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Generates the full request schedule from the spec's seed. Pure: the
/// schedule depends on nothing but the spec.
fn build_schedule(spec: &KvSpec) -> Vec<Request> {
    let total_keys = (spec.keys_per_server * spec.servers) as u64;
    let mut gen = ArrivalGen::new(spec.process, spec.seed);
    let zipf = ZipfSampler::new(total_keys, spec.zipf_theta);
    let mut rng = SimRng::seed(spec.seed ^ 0x4B5E_11E5);
    let mut reqs = Vec::with_capacity(spec.requests);
    let mut next_insert = 0u64;
    let mut next_miss = 0u64;
    for i in 0..spec.requests {
        let at = gen.next_arrival();
        let client = rng.below(spec.clients as u64) as usize;
        let roll = rng.below(100) as u8;
        let (op, key) = if roll < spec.get_pct {
            if (rng.below(100) as u8) < spec.miss_pct {
                next_miss += 1;
                (KvOp::GetMiss, MISS_KEY_BASE + next_miss)
            } else {
                (KvOp::Get, zipf.sample(&mut rng) + 1)
            }
        } else if roll < spec.get_pct + spec.put_pct {
            if (rng.below(100) as u8) < spec.insert_pct {
                next_insert += 1;
                (KvOp::Insert, INSERT_KEY_BASE + next_insert)
            } else {
                (KvOp::Put, zipf.sample(&mut rng) + 1)
            }
        } else {
            (KvOp::Traversal, zipf.sample(&mut rng) + 1)
        };
        reqs.push(Request {
            at,
            client,
            server: shard_of(key, spec.servers),
            op,
            key,
            nonce: i as u64 + 1,
        });
    }
    reqs
}

/// Runs the serving tier and returns the observables.
pub fn run_kv_serve(spec: &KvSpec) -> KvOutcome {
    run_kv_serve_instrumented(spec).0
}

/// [`run_kv_serve`] plus the testbed's metrics registry (per-op latency
/// histograms land there as `kv_get_latency_ps` etc.).
pub fn run_kv_serve_instrumented(spec: &KvSpec) -> (KvOutcome, MetricsRegistry) {
    assert!(spec.servers >= 1 && spec.clients >= 1, "empty tier");
    assert!(spec.get_pct as u32 + spec.put_pct as u32 <= 100, "op mix");
    assert!(spec.keys_per_server >= 1, "empty shard");
    let m = spec.servers;
    let schedule = build_schedule(spec);

    let mut cfg = spec.platform.config();
    cfg.seed = spec.seed;
    cfg.cc = spec.cc;
    let mut tb = ClusterTestbed::switched(cfg, m + spec.clients, spec.switch);
    if let Some(fault) = spec.fault {
        tb.set_fault_model(fault);
    }
    for c in 0..spec.clients {
        for s in 0..m {
            tb.connect_qp_between(s, m + c, qpn_for(spec, c, s));
        }
    }

    // Server shards: preload keys 1..=K round-robin over servers, with
    // arena headroom for exactly this schedule's inserts (plus slack so
    // ERR_NO_SPACE stays a bug signal, not an expected outcome).
    let total_keys = (spec.keys_per_server * m) as u64;
    let mut inserts_per_server = vec![0u64; m];
    for r in &schedule {
        if r.op == KvOp::Insert {
            inserts_per_server[r.server] += 1;
        }
    }
    let mut stores: Vec<KvStore> = Vec::with_capacity(m);
    for (s, &inserts) in inserts_per_server.iter().enumerate() {
        let keys: Vec<u64> = (1..=total_keys).filter(|&k| shard_of(k, m) == s).collect();
        let spare = inserts + 2;
        let len = KvStore::region_len(
            spec.primary_entries,
            keys.len() as u64 + spare,
            spec.value_size,
        );
        let base = tb.pin(s, len);
        let kv = build_kv_store(
            tb.mem(s),
            base,
            spec.primary_entries,
            &keys,
            spec.value_size,
            spare,
        );
        tb.deploy_kernel(s, Box::new(GetKernel::new()));
        tb.deploy_kernel(s, Box::new(TraversalKernel::new()));
        tb.deploy_kernel(s, Box::new(PutKernel::new()));
        tb.post_local_rpc(s, 0, RpcOpCode::PUT, PutConfig::for_store(&kv).encode());
        stores.push(kv);
    }

    // Client regions: one fixed-size chunk per request (indexed by the
    // global request id, so slots never alias): 8 B header/ack + value
    // response slot, then the PUT staging blob.
    let chunk =
        (8 + u64::from(spec.value_size) + PUT_HEADER_LEN as u64 + u64::from(spec.value_size))
            .next_multiple_of(64);
    let mut client_base = vec![0u64; spec.clients];
    for (c, base) in client_base.iter_mut().enumerate() {
        *base = tb.pin(m + c, chunk * schedule.len() as u64);
    }
    tb.bring_up();
    tb.run_until_idle(); // Settle the PUT arena configuration RPCs.

    // Open loop: process everything due before each arrival, advance the
    // clock to the arrival itself, post — never wait for completions.
    let t0 = tb.now();
    let mut watches = Vec::with_capacity(schedule.len());
    for (i, r) in schedule.iter().enumerate() {
        let due = t0 + r.at;
        while tb.next_event_at().is_some_and(|t| t <= due) {
            tb.step();
        }
        if tb.now() < due {
            tb.advance(due - tb.now());
        }
        let node = m + r.client;
        let qpn = qpn_for(spec, r.client, r.server);
        let slot = client_base[r.client] + chunk * i as u64;
        let watch = match r.op {
            KvOp::Get | KvOp::GetMiss => {
                let w = tb.add_watch(node, slot, 8);
                tb.post(
                    node,
                    qpn,
                    WorkRequest::Rpc {
                        rpc_op: RpcOpCode::GET,
                        params: GetParams {
                            entry_addr: stores[r.server].entry_addr(r.key),
                            key: r.key,
                            target_address: slot,
                            chained: true,
                        }
                        .encode(),
                    },
                );
                w
            }
            KvOp::Put | KvOp::Insert => {
                let w = tb.add_watch(node, slot, 8);
                let value = versioned_value_pattern(r.key, r.nonce, spec.value_size);
                let blob =
                    encode_put_request(r.key, stores[r.server].entry_addr(r.key), slot, &value);
                let stage = slot + 8 + u64::from(spec.value_size);
                tb.mem(node).write(stage, &blob);
                tb.post(
                    node,
                    qpn,
                    WorkRequest::RpcWrite {
                        rpc_op: RpcOpCode::PUT,
                        local_vaddr: stage,
                        len: blob.len() as u32,
                    },
                );
                w
            }
            KvOp::Traversal => {
                let w = tb.add_watch(node, slot, u64::from(spec.value_size));
                tb.post(
                    node,
                    qpn,
                    WorkRequest::Rpc {
                        rpc_op: RpcOpCode::TRAVERSAL,
                        params: stores[r.server].table.get_params(r.key, slot).encode(),
                    },
                );
                w
            }
        };
        watches.push((watch, due));
    }
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {}: serving tier failed to quiesce within the event budget",
        spec.seed
    );

    // ---- Post-run audit ----
    // Pass 1: collect PUT acks and build each key's committed
    // version → nonce ladder.
    let mut acked: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
    let mut put_errors = 0u64;
    let mut dup_puts = 0u64;
    for (i, r) in schedule.iter().enumerate() {
        if !matches!(r.op, KvOp::Put | KvOp::Insert) {
            continue;
        }
        let Some(_) = tb.watch_fired(watches[i].0) else {
            continue; // Counted as lost below.
        };
        let node = m + r.client;
        let slot = client_base[r.client] + chunk * i as u64;
        let word = tb.mem(node).read_u64(slot);
        if decode_error(word).is_some() {
            put_errors += 1;
        } else {
            acked.entry(r.key).or_default().push((word, r.nonce));
        }
    }
    let mut lost_puts = 0u64;
    let mut inserts_acked = 0u64;
    let mut version_nonce: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
    let mut final_version: std::collections::BTreeMap<u64, u64> = Default::default();
    for (&key, ladder) in acked.iter_mut() {
        ladder.sort_unstable();
        // Exactly-once: acked versions must be exactly 1..=n, each once.
        for (idx, &(v, nonce)) in ladder.iter().enumerate() {
            let expect = idx as u64 + 1;
            if v == expect {
                version_nonce.insert((key, v), nonce);
            } else if idx > 0 && v == ladder[idx - 1].0 {
                dup_puts += 1;
            } else {
                lost_puts += 1;
            }
        }
        let n = ladder.len() as u64;
        let server = shard_of(key, m);
        match stores[server].lookup(tb.mem(server), key) {
            Some((v, _)) if v == n => {}
            _ => lost_puts += 1, // Acked but not (fully) committed.
        }
        final_version.insert(key, n);
        if key >= INSERT_KEY_BASE {
            inserts_acked += 1;
        }
    }

    // Pass 2: verify every response against the version ladder.
    let mut latency = Histogram::new();
    let mut per_op = [Histogram::new(), Histogram::new(), Histogram::new()];
    let metrics = tb.metrics().clone();
    let mut completed = 0u64;
    let (mut gets, mut puts, mut traversals) = (0u64, 0u64, 0u64);
    let mut misses = 0u64;
    let mut lost_responses = 0u64;
    let mut verify_failures = 0u64;
    let mut last_response = t0;
    let mut fp = 0xCBF2_9CE4_8422_2325u64;
    // The payload a key legitimately holds at committed version `w`.
    let pattern_at = |key: u64, w: u64| -> Vec<u8> {
        match version_nonce.get(&(key, w)) {
            Some(&nonce) => versioned_value_pattern(key, nonce, spec.value_size),
            None => versioned_value_pattern(key, 0, spec.value_size),
        }
    };
    for (i, r) in schedule.iter().enumerate() {
        let (watch, due) = watches[i];
        let Some(fired) = tb.watch_fired(watch) else {
            lost_responses += 1;
            fp = fnv_fold(fp, &[r.op as u64, r.key, u64::MAX, 0]);
            continue;
        };
        let lat = fired.saturating_sub(due);
        let node = m + r.client;
        let slot = client_base[r.client] + chunk * i as u64;
        let head = tb.mem(node).read_u64(slot);
        completed += 1;
        last_response = last_response.max(fired);
        latency.record(lat);
        let fin = final_version.get(&r.key).copied().unwrap_or(0);
        match r.op {
            KvOp::Get | KvOp::GetMiss => {
                gets += 1;
                per_op[0].record(lat);
                match decode_error(head) {
                    Some(code) => {
                        if r.op == KvOp::GetMiss && code == ERR_NOT_FOUND {
                            misses += 1;
                        } else {
                            verify_failures += 1;
                        }
                    }
                    None => {
                        // Hit: header is the version the kernel read; the
                        // value may be newer if a PUT raced the value DMA,
                        // but never older and never torn.
                        let value = tb.mem(node).read(slot + 8, spec.value_size as usize);
                        let ok = r.op == KvOp::Get
                            && head <= fin
                            && (head..=fin).any(|w| bytes_equal(&value, &pattern_at(r.key, w)));
                        if !ok {
                            verify_failures += 1;
                        }
                    }
                }
            }
            KvOp::Put | KvOp::Insert => {
                puts += 1;
                per_op[1].record(lat);
            }
            KvOp::Traversal => {
                traversals += 1;
                per_op[2].record(lat);
                let value = tb.mem(node).read(slot, spec.value_size as usize);
                let ok = (0..=fin).any(|w| bytes_equal(&value, &pattern_at(r.key, w)));
                if !ok {
                    verify_failures += 1;
                }
            }
        }
        fp = fnv_fold(fp, &[r.op as u64, r.key, lat, head]);
    }
    for (name, h) in [
        ("kv_get_latency_ps", &per_op[0]),
        ("kv_put_latency_ps", &per_op[1]),
        ("kv_traversal_latency_ps", &per_op[2]),
    ] {
        let handle = metrics.histogram(name);
        for (v, n) in h.nonzero_buckets() {
            for _ in 0..n {
                handle.record(v);
            }
        }
    }

    let elapsed_ps = (last_response - t0).max(1);
    let mut qp_errors = 0usize;
    for c in 0..spec.clients {
        for s in 0..m {
            if tb.qp_errored(m + c, qpn_for(spec, c, s)) {
                qp_errors += 1;
            }
        }
    }
    let outcome = KvOutcome {
        completed,
        gets,
        puts,
        traversals,
        misses,
        lost_responses,
        verify_failures,
        lost_puts,
        dup_puts,
        put_errors,
        inserts_acked,
        p50_ps: latency.quantile(0.50),
        p99_ps: latency.quantile(0.99),
        p999_ps: latency.quantile(0.999),
        get_p99_ps: per_op[0].quantile(0.99),
        put_p99_ps: per_op[1].quantile(0.99),
        traversal_p99_ps: per_op[2].quantile(0.99),
        offered_rps: spec.process.mean_rate_per_sec().round() as u64,
        achieved_rps: (completed as u128 * 1_000_000_000_000 / elapsed_ps as u128) as u64,
        elapsed_ps,
        retransmissions: (0..tb.num_nodes()).map(|n| tb.retransmissions(n)).sum(),
        qp_errors,
        fingerprint: fp,
    };
    (outcome, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_sim::time::NANOS;

    /// A light-load spec small enough for unit-test budgets.
    fn small(seed: u64) -> KvSpec {
        let mut spec = KvSpec::new(2, 2, 3_000 * NANOS, seed);
        spec.requests = 160;
        spec.keys_per_server = 24;
        spec.primary_entries = 8;
        spec
    }

    /// The invariants every healthy run must satisfy.
    fn assert_clean(o: &KvOutcome) {
        assert_eq!(o.lost_responses, 0, "RC must deliver every response");
        assert_eq!(o.verify_failures, 0, "payloads must verify: {o:?}");
        assert_eq!(o.lost_puts, 0, "every acked PUT must be committed");
        assert_eq!(o.dup_puts, 0, "version acks must be exactly-once");
        assert_eq!(o.put_errors, 0, "arena was sized for the schedule");
        assert_eq!(o.qp_errors, 0);
        assert_eq!(o.completed, o.gets + o.puts + o.traversals);
    }

    #[test]
    fn mixed_workload_serves_and_verifies() {
        let o = run_kv_serve(&small(0x5E21));
        assert_clean(&o);
        assert_eq!(o.completed, 160);
        assert!(o.gets > 0 && o.puts > 0 && o.traversals > 0);
        assert!(o.misses > 0, "the 5% miss mix must have sampled misses");
        assert!(o.inserts_acked > 0, "inserts must have committed");
        assert!(o.p50_ps.is_some() && o.p99_ps.is_some());
    }

    #[test]
    fn reruns_are_bit_identical() {
        let a = run_kv_serve(&small(0xD15C));
        let b = run_kv_serve(&small(0xD15C));
        assert_eq!(a, b, "same spec must reproduce the outcome exactly");
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let a = run_kv_serve(&small(1));
        let b = run_kv_serve(&small(2));
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_clean(&a);
        assert_clean(&b);
    }

    #[test]
    fn overload_pushes_the_tail_out() {
        // Same workload at a 12× higher offered rate: open-loop arrivals
        // pile into the serving queues, so the p99 must grow sharply —
        // the latency knee the closed-loop incast driver cannot see.
        let light = run_kv_serve(&small(0xA11));
        let mut hot = small(0xA11);
        hot.process = ArrivalProcess::Poisson {
            mean_gap: 250 * NANOS,
        };
        let heavy = run_kv_serve(&hot);
        assert_clean(&heavy);
        let (lo, hi) = (light.p99_ps.unwrap(), heavy.p99_ps.unwrap());
        assert!(
            hi > lo * 2,
            "open-loop overload must inflate the tail: {lo} → {hi}"
        );
    }

    #[test]
    fn bursty_arrivals_fatten_the_tail_at_equal_mean_rate() {
        let mut calm = small(0xBB51);
        calm.requests = 240;
        let mut bursty = calm.clone();
        // MMPP with the same long-run mean rate as the Poisson spec:
        // dwell-weighted mean gap = (6000·1 + 600·1)/2 ... chosen so
        // mean_rate matches within a few percent.
        bursty.process = ArrivalProcess::Mmpp {
            calm_gap: 9_000 * NANOS,
            burst_gap: 600 * NANOS,
            calm_dwell: 150_000 * NANOS,
            burst_dwell: 50_000 * NANOS,
        };
        let a = run_kv_serve(&calm);
        let b = run_kv_serve(&bursty);
        assert_clean(&a);
        assert_clean(&b);
        assert!(
            b.p99_ps.unwrap() > a.p99_ps.unwrap(),
            "bursts must fatten the tail: {:?} vs {:?}",
            a.p99_ps,
            b.p99_ps
        );
    }
}
