//! The kernel fabric: StRoM kernels deployed behind the op-code matcher.
//!
//! §5.1: the RETH address field of an RPC packet "encodes an RPC op-code
//! that is used to match the request against the deployed StRoM kernels on
//! the remote NIC. This mechanism resembles the matching used in Portals
//! and enables multi-kernel deployments." If no kernel matches, "either a
//! fallback implementation on the remote CPU is triggered (if configured
//! a priori by the remote CPU) or an error code is written back to the
//! requesting node."
//!
//! The fabric also provides the consistency experiment's fault injection:
//! with probability `failure_rate`, the *first* DMA read of an invocation
//! returns corrupted data — "note that in this evaluation it does not
//! affect consecutive retries, which always succeed" (§6.3, Fig 10).

use std::collections::VecDeque;

use bytes::Bytes;

use strom_kernels::framework::{Kernel, KernelAction, KernelEvent};
use strom_sim::SimRng;
use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

/// Per-kernel slot state.
struct Slot {
    kernel: Box<dyn Kernel>,
    /// Whether an RPC invocation is in flight (stream kernels never set
    /// this).
    busy: bool,
    /// Queued invocations waiting for the kernel to go idle.
    queue: VecDeque<(Qpn, Bytes)>,
    /// DMA reads issued by the current invocation (drives first-read
    /// fault injection).
    reads_in_invocation: u32,
    /// Completed invocations (diagnostics).
    completed: u64,
}

/// The kernel fabric of one NIC.
pub struct KernelFabric {
    slots: Vec<Slot>,
    /// Probability of corrupting the first DMA read of an invocation of
    /// the consistency kernel (Fig 10's failure rate).
    failure_rate: f64,
    rng: SimRng,
    /// RPC requests that matched no kernel (each returned an error).
    unmatched: u64,
}

impl std::fmt::Debug for KernelFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelFabric")
            .field("kernels", &self.slots.len())
            .field("failure_rate", &self.failure_rate)
            .finish()
    }
}

impl KernelFabric {
    /// Creates an empty fabric.
    pub fn new(seed: u64) -> Self {
        Self {
            slots: Vec::new(),
            failure_rate: 0.0,
            rng: SimRng::seed(seed),
            unmatched: 0,
        }
    }

    /// Deploys a kernel. Kernels are run-time interchangeable on the FPGA
    /// (partial reconfiguration, §3.3); here they can be registered at any
    /// point.
    pub fn register(&mut self, kernel: Box<dyn Kernel>) {
        self.slots.push(Slot {
            kernel,
            busy: false,
            queue: VecDeque::new(),
            reads_in_invocation: 0,
            completed: 0,
        });
    }

    /// Sets the Fig 10 failure rate for first reads.
    pub fn set_failure_rate(&mut self, rate: f64) {
        self.failure_rate = rate;
    }

    /// Number of RPC requests that matched no kernel.
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Total completed invocations across all kernels.
    pub fn completed(&self) -> u64 {
        self.slots.iter().map(|s| s.completed).sum()
    }

    fn index_of(&self, op: RpcOpCode) -> Option<usize> {
        self.slots.iter().position(|s| s.kernel.rpc_op() == op)
    }

    /// Whether a kernel for `op` is deployed.
    pub fn has_kernel(&self, op: RpcOpCode) -> bool {
        self.index_of(op).is_some()
    }

    /// Immutable access to a deployed kernel (for reading statistics).
    pub fn kernel(&self, op: RpcOpCode) -> Option<&dyn Kernel> {
        self.index_of(op).map(|i| &*self.slots[i].kernel)
    }

    /// The kernel's declared pipeline cost in cycles per datapath word
    /// (§3.4's initiation interval).
    pub fn cycles_per_word(&self, op: RpcOpCode) -> Option<u64> {
        self.index_of(op)
            .map(|i| self.slots[i].kernel.cycles_per_word())
    }

    /// Dispatches an RPC invocation. Returns the kernel's actions, or
    /// `None` if no kernel matched (the caller writes the error back,
    /// §5.1). If the kernel is busy, the invocation is queued and an empty
    /// action list is returned.
    pub fn invoke(&mut self, op: RpcOpCode, qpn: Qpn, params: Bytes) -> Option<Vec<KernelAction>> {
        let Some(i) = self.index_of(op) else {
            self.unmatched += 1;
            return None;
        };
        let slot = &mut self.slots[i];
        if slot.busy {
            slot.queue.push_back((qpn, params));
            return Some(Vec::new());
        }
        slot.busy = true;
        slot.reads_in_invocation = 0;
        Some(slot.kernel.on_event(KernelEvent::Invoke { qpn, params }))
    }

    /// Feeds RPC WRITE payload (or a receive-path tap) to a kernel.
    pub fn stream(
        &mut self,
        op: RpcOpCode,
        qpn: Qpn,
        data: Bytes,
        last: bool,
    ) -> Option<Vec<KernelAction>> {
        let i = self.index_of(op)?;
        Some(
            self.slots[i]
                .kernel
                .on_event(KernelEvent::RoceData { qpn, data, last }),
        )
    }

    /// Routes a DMA read completion back to the kernel, applying the
    /// first-read fault injection for the consistency kernel.
    pub fn dma_data(
        &mut self,
        op: RpcOpCode,
        tag: u32,
        mut data: Bytes,
    ) -> Option<Vec<KernelAction>> {
        let i = self.index_of(op)?;
        let slot = &mut self.slots[i];
        slot.reads_in_invocation += 1;
        if op == RpcOpCode::CONSISTENCY
            && slot.reads_in_invocation == 1
            && self.failure_rate > 0.0
            && self.rng.chance(self.failure_rate)
        {
            // Torn read: the object was concurrently modified. Flip one
            // payload byte so the CRC check fails.
            let mut v = data.to_vec();
            if let Some(b) = v.last_mut() {
                *b ^= 0xff;
            }
            data = Bytes::from(v);
        }
        Some(slot.kernel.on_event(KernelEvent::DmaData { tag, data }))
    }

    /// Marks the current invocation of `op` complete; if another
    /// invocation is queued, dispatches it and returns its actions.
    pub fn done(&mut self, op: RpcOpCode) -> Vec<KernelAction> {
        let Some(i) = self.index_of(op) else {
            return Vec::new();
        };
        let slot = &mut self.slots[i];
        slot.completed += 1;
        if let Some((qpn, params)) = slot.queue.pop_front() {
            slot.reads_in_invocation = 0;
            slot.kernel.on_event(KernelEvent::Invoke { qpn, params })
        } else {
            slot.busy = false;
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_kernels::framework::ERROR_SENTINEL;

    /// A kernel that answers with a constant after one DMA read.
    struct Probe;

    impl Kernel for Probe {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn rpc_op(&self) -> RpcOpCode {
            RpcOpCode(0x99)
        }

        fn name(&self) -> &'static str {
            "probe"
        }

        fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
            match event {
                KernelEvent::Invoke { .. } => vec![KernelAction::DmaRead {
                    tag: 7,
                    vaddr: 0x100,
                    len: 8,
                }],
                KernelEvent::DmaData { .. } => vec![
                    KernelAction::RoceSend {
                        qpn: 1,
                        remote_vaddr: 0,
                        data: Bytes::from_static(b"pong"),
                    },
                    KernelAction::Done,
                ],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn matching_dispatches_and_unmatched_counts() {
        let mut f = KernelFabric::new(1);
        f.register(Box::new(Probe));
        assert!(f.has_kernel(RpcOpCode(0x99)));
        let a = f.invoke(RpcOpCode(0x99), 1, Bytes::new()).unwrap();
        assert!(matches!(a[0], KernelAction::DmaRead { tag: 7, .. }));
        assert!(f.invoke(RpcOpCode(0x42), 1, Bytes::new()).is_none());
        assert_eq!(f.unmatched(), 1);
    }

    #[test]
    fn busy_kernel_queues_invocations() {
        let mut f = KernelFabric::new(1);
        f.register(Box::new(Probe));
        let op = RpcOpCode(0x99);
        let a1 = f.invoke(op, 1, Bytes::new()).unwrap();
        assert_eq!(a1.len(), 1);
        // Second invocation while the first is mid-flight: queued.
        let a2 = f.invoke(op, 2, Bytes::new()).unwrap();
        assert!(a2.is_empty());
        // Finish the first.
        let a3 = f.dma_data(op, 7, Bytes::from_static(b"12345678")).unwrap();
        assert!(matches!(a3[1], KernelAction::Done));
        let a4 = f.done(op);
        // The queued invocation starts immediately.
        assert!(matches!(a4[0], KernelAction::DmaRead { .. }));
        assert_eq!(f.completed(), 1);
    }

    /// A kernel that echoes every DMA completion back out, so tests can
    /// observe exactly what bytes the fabric delivered.
    struct EchoDma(RpcOpCode);

    impl Kernel for EchoDma {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn rpc_op(&self) -> RpcOpCode {
            self.0
        }
        fn name(&self) -> &'static str {
            "echo-dma"
        }
        fn on_event(&mut self, e: KernelEvent) -> Vec<KernelAction> {
            if let KernelEvent::DmaData { data, .. } = e {
                return vec![KernelAction::RoceSend {
                    qpn: 0,
                    remote_vaddr: 0,
                    data,
                }];
            }
            Vec::new()
        }
    }

    fn echoed(actions: &[KernelAction]) -> Bytes {
        match &actions[0] {
            KernelAction::RoceSend { data, .. } => data.clone(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_injection_corrupts_only_first_reads() {
        let mut f = KernelFabric::new(3);
        f.register(Box::new(EchoDma(RpcOpCode::CONSISTENCY)));
        f.set_failure_rate(1.0);
        let clean = Bytes::from_static(b"AAAAAAAA");
        f.invoke(RpcOpCode::CONSISTENCY, 1, Bytes::new()).unwrap();
        let a1 = f
            .dma_data(RpcOpCode::CONSISTENCY, 1, clean.clone())
            .unwrap();
        let a2 = f
            .dma_data(RpcOpCode::CONSISTENCY, 1, clean.clone())
            .unwrap();
        assert_ne!(
            echoed(&a1),
            clean,
            "first read must be corrupted at rate 1.0"
        );
        assert_eq!(echoed(&a2), clean, "retries always succeed (Fig 10)");
    }

    #[test]
    fn zero_failure_rate_never_corrupts() {
        let mut f = KernelFabric::new(7);
        f.register(Box::new(EchoDma(RpcOpCode::CONSISTENCY)));
        let clean = Bytes::from_static(b"BBBBBBBB");
        f.invoke(RpcOpCode::CONSISTENCY, 1, Bytes::new()).unwrap();
        for _ in 0..50 {
            let a = f
                .dma_data(RpcOpCode::CONSISTENCY, 1, clean.clone())
                .unwrap();
            assert_eq!(echoed(&a), clean);
        }
        let _ = ERROR_SENTINEL;
    }

    #[test]
    fn non_consistency_kernels_are_never_corrupted() {
        let mut f = KernelFabric::new(9);
        f.register(Box::new(EchoDma(RpcOpCode::TRAVERSAL)));
        f.set_failure_rate(1.0);
        let clean = Bytes::from_static(b"CCCCCCCC");
        f.invoke(RpcOpCode::TRAVERSAL, 1, Bytes::new()).unwrap();
        let a = f.dma_data(RpcOpCode::TRAVERSAL, 1, clean.clone()).unwrap();
        assert_eq!(echoed(&a), clean);
    }
}
