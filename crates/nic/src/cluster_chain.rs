//! Chained-kernel pipelines on the cluster testbed.
//!
//! §8's outlook — "more complex processing pipelines can be built by
//! chaining kernels" — executed with real NIC timing: a
//! [`KernelChain`](strom_kernels::framework::KernelChain) deploys into a
//! node's kernel fabric like any single kernel (one RPC op-code, one
//! fabric slot), the client configures every stage with one RPC Params
//! message, and the payload streams through the chain as RDMA RPC WRITE
//! packets cross the switch. Each driver verifies the end-to-end result
//! against a host-computed reference and folds every result record into a
//! deterministic fingerprint, so same-seed reruns must be bit-identical —
//! including under a chaos fault model with retransmissions.

use strom_kernels::aggregate::Aggregate;
use strom_kernels::chains::{
    crcverify_shuffle, crcverify_shuffle_params, filter_agg_hll, filter_agg_hll_params,
};
use strom_kernels::crc_verify::{append_trailer, CrcVerifyKernel, CrcVerifyParams};
use strom_kernels::filter::FilterKernel;
use strom_kernels::framework::{decode_error, KernelChain};
use strom_kernels::hll_kernel::HllKernel;
use strom_kernels::radix::{radix_bits, radix_partition};
use strom_kernels::shuffle::{encode_histogram, ShuffleParams};
use strom_kernels::traversal::Predicate;
use strom_kernels::{AggregateParams, FilterParams};
use strom_proto::{CompletionStatus, WorkRequest};
use strom_sim::time::TimeDelta;
use strom_sim::SimRng;
use strom_wire::opcode::RpcOpCode;

use crate::config::Platform;
use crate::fault::LinkFaultModel;
use crate::testbed::{ClusterTestbed, SwitchParams};

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

/// Event budget for the post-completion quiesce.
const EVENT_BUDGET: u64 = 200_000_000;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Everything that determines one chain run.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Hardware platform (10 G or 100 G datapath).
    pub platform: Platform,
    /// 8 B tuples in the client's payload.
    pub tuples: usize,
    /// Seed for payload contents and all simulation randomness.
    pub seed: u64,
    /// Radix partitions of the shuffle stage (crc-verify → shuffle only).
    pub partitions: u32,
    /// Flips one payload byte in flight metadata (crc-verify → shuffle
    /// only): the chain must surface `ERR_INCONSISTENT` in-band.
    pub corrupt: bool,
    /// Global link fault model (chaos soaks drive this).
    pub fault: LinkFaultModel,
    /// Enables the structured trace ring with this capacity.
    pub trace_capacity: Option<usize>,
}

impl ChainSpec {
    /// A fault-free 10 G spec.
    pub fn new(tuples: usize, seed: u64) -> Self {
        ChainSpec {
            platform: Platform::TenGig,
            tuples,
            seed,
            partitions: 16,
            corrupt: false,
            fault: LinkFaultModel::default(),
            trace_capacity: None,
        }
    }
}

/// What one chain run observed. `PartialEq` so determinism tests can
/// compare whole reruns.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRun {
    /// Payload bytes streamed through the chain.
    pub payload_bytes: u64,
    /// Simulated time from posting the stream to its completion.
    pub elapsed_ps: TimeDelta,
    /// End-to-end chain throughput in GiB/s of payload.
    pub gib_per_sec: f64,
    /// FNV-1a fold of every result record (and partition contents).
    pub fingerprint: u64,
    /// In-band error the chain surfaced, if any.
    pub error_code: Option<u16>,
    /// Retransmissions summed over both nodes.
    pub retransmissions: u64,
}

fn testbed(spec: &ChainSpec) -> ClusterTestbed {
    let mut cfg = spec.platform.config();
    cfg.seed = spec.seed;
    cfg.fault = spec.fault;
    let mut tb = ClusterTestbed::switched(cfg, 2, SwitchParams::default());
    if let Some(capacity) = spec.trace_capacity {
        tb.enable_tracing(capacity);
    }
    tb.connect_qp_between(CLIENT, SERVER, QP);
    tb
}

fn payload_tuples(spec: &ChainSpec) -> Vec<u64> {
    let mut rng = SimRng::seed(spec.seed ^ 0xC4A1);
    (0..spec.tuples).map(|_| rng.next_u64() % 10_000).collect()
}

fn finish(
    tb: &ClusterTestbed,
    payload_bytes: u64,
    elapsed_ps: TimeDelta,
    fingerprint: u64,
    error_code: Option<u16>,
) -> ChainRun {
    let secs = elapsed_ps as f64 * 1e-12;
    ChainRun {
        payload_bytes,
        elapsed_ps,
        gib_per_sec: if secs > 0.0 {
            payload_bytes as f64 / secs / (1u64 << 30) as f64
        } else {
            0.0
        },
        fingerprint,
        error_code,
        retransmissions: (0..2).map(|i| tb.retransmissions(i)).sum(),
    }
}

/// Runs the filter → aggregate → HLL chain end-to-end and verifies all
/// three result records against a host-computed reference. Panics on any
/// mismatch.
pub fn run_filter_agg_hll(spec: &ChainSpec) -> ChainRun {
    let mut tb = testbed(spec);
    let client = tb.pin(CLIENT, 8 << 20);
    let server = tb.pin(SERVER, 8 << 20);
    tb.bring_up();

    let filter_target = client;
    let agg_target = client + 64;
    let hll_target = client + 128;
    let src = client + 4096;

    tb.deploy_kernel(SERVER, Box::new(filter_agg_hll()));
    let operand = 5_000u64;
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CHAIN_FILTER_AGG_HLL,
            params: filter_agg_hll_params(
                &FilterParams {
                    dest_addr: server,
                    dest_capacity: (4 << 20) as u32,
                    predicate: Predicate::GreaterThan,
                    operand,
                    target_address: filter_target,
                },
                &AggregateParams {
                    target_address: agg_target,
                },
                hll_target,
            ),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let values = payload_tuples(spec);
    let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    tb.mem(CLIENT).write(src, &data);

    let t0 = tb.now();
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::CHAIN_FILTER_AGG_HLL,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    let elapsed_ps = tb.now() - t0;
    assert_eq!(
        tb.completion_status(CLIENT, h),
        Some(CompletionStatus::Success),
        "seed {}: chain stream failed",
        spec.seed
    );
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {}: chain failed to quiesce",
        spec.seed
    );

    // Host reference.
    let expect: Vec<u64> = values.iter().copied().filter(|&v| v > operand).collect();
    let distinct = {
        let mut s = expect.clone();
        s.sort_unstable();
        s.dedup();
        s.len() as f64
    };

    let fs = tb.mem(CLIENT).read(filter_target, 16);
    assert_eq!(
        FilterKernel::decode_summary(&fs),
        Some((values.len() as u64, expect.len() as u64)),
        "seed {}: filter summary mismatch",
        spec.seed
    );
    let ag = tb.mem(CLIENT).read(agg_target, 32);
    assert_eq!(
        Aggregate::decode(&ag),
        Some(Aggregate::of(&expect)),
        "seed {}: aggregate record mismatch",
        spec.seed
    );
    let hs = tb.mem(CLIENT).read(hll_target, 16);
    let (estimate, items) = HllKernel::decode_snapshot(&hs).expect("snapshot");
    assert_eq!(
        items,
        expect.len() as u64,
        "seed {}: HLL item count mismatch",
        spec.seed
    );
    if distinct > 100.0 {
        assert!(
            (estimate - distinct).abs() / distinct < 0.05,
            "seed {}: HLL estimate {estimate} vs {distinct}",
            spec.seed
        );
    }
    // The chain captured every filter burst: nothing landed in the
    // server-side result region.
    let leaked = tb.mem(SERVER).read(server, 4096);
    assert!(
        leaked.iter().all(|&b| b == 0),
        "seed {}: filter bursts leaked to host memory",
        spec.seed
    );
    let chain = tb
        .fabric(SERVER)
        .kernel(RpcOpCode::CHAIN_FILTER_AGG_HLL)
        .and_then(|k| k.as_any().downcast_ref::<KernelChain>())
        .expect("chain deployed");
    assert!(
        !chain.failed(),
        "seed {}: clean run must not latch",
        spec.seed
    );

    let mut fp = fnv_fold(FNV_OFFSET, &fs);
    fp = fnv_fold(fp, &ag);
    fp = fnv_fold(fp, &hs);
    finish(&tb, data.len() as u64, elapsed_ps, fp, None)
}

/// Runs the CRC-verify → shuffle chain end-to-end. On a clean stream the
/// partitions must match the host-computed radix split byte-exactly; with
/// `spec.corrupt` the chain must surface [`ERR_INCONSISTENT`] and starve
/// the shuffle stage of post-corruption data. Panics on any violation.
///
/// [`ERR_INCONSISTENT`]: strom_kernels::framework::ERR_INCONSISTENT
pub fn run_crcverify_shuffle(spec: &ChainSpec) -> ChainRun {
    assert!(
        spec.partitions.is_power_of_two(),
        "partition count must be a power of two"
    );
    let mut tb = testbed(spec);
    let client = tb.pin(CLIENT, 8 << 20);
    let server = tb.pin(SERVER, 8 << 20);
    tb.bring_up();

    let verdict_target = client;
    let src = client + 4096;
    let hist_addr = server;

    // Host reference split, sized exactly.
    let values = payload_tuples(spec);
    let bits = radix_bits(spec.partitions as usize);
    let mut split: Vec<Vec<u64>> = vec![Vec::new(); spec.partitions as usize];
    for &v in &values {
        split[radix_partition(v, bits)].push(v);
    }
    let mut regions: Vec<(u64, u32)> = Vec::with_capacity(split.len());
    let mut cursor = server + 4096;
    for part in &split {
        regions.push((cursor, (part.len() * 8) as u32));
        cursor += (part.len() * 8) as u64;
    }
    tb.mem(SERVER).write(hist_addr, &encode_histogram(&regions));

    tb.deploy_kernel(SERVER, Box::new(crcverify_shuffle()));
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
            params: crcverify_shuffle_params(
                &CrcVerifyParams {
                    target_address: verdict_target,
                },
                &ShuffleParams {
                    histogram_addr: hist_addr,
                    num_partitions: spec.partitions,
                },
            ),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mut stream = append_trailer(&payload);
    if spec.corrupt {
        let n = stream.len();
        stream[n / 2] ^= 0x80;
    }
    tb.mem(CLIENT).write(src, &stream);

    let t0 = tb.now();
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
            local_vaddr: src,
            len: stream.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    let elapsed_ps = tb.now() - t0;
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {}: chain failed to quiesce",
        spec.seed
    );

    let chain_failed = tb
        .fabric(SERVER)
        .kernel(RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE)
        .and_then(|k| k.as_any().downcast_ref::<KernelChain>())
        .expect("chain deployed")
        .failed();

    let mut fp = FNV_OFFSET;
    let error_code;
    if spec.corrupt {
        // The verdict slot holds the in-band sentinel.
        let v = tb.mem(CLIENT).read(verdict_target, 8);
        let word = u64::from_le_bytes(v[..8].try_into().expect("sized"));
        error_code = decode_error(word);
        assert_eq!(
            error_code,
            Some(strom_kernels::framework::ERR_INCONSISTENT),
            "seed {}: corruption must surface ERR_INCONSISTENT",
            spec.seed
        );
        assert!(chain_failed, "seed {}: chain must latch failure", spec.seed);
        fp = fnv_fold(fp, &v);
    } else {
        let v = tb.mem(CLIENT).read(verdict_target, 16);
        let (crc, len) = CrcVerifyKernel::decode_verdict(&v).expect("verdict");
        assert_eq!(
            (crc, len),
            (strom_kernels::crc64::crc64(&payload), payload.len() as u64),
            "seed {}: verdict mismatch",
            spec.seed
        );
        assert!(
            !chain_failed,
            "seed {}: clean run must not latch",
            spec.seed
        );
        error_code = None;
        fp = fnv_fold(fp, &v);
        for (pid, &(addr, cap)) in regions.iter().enumerate() {
            let want: Vec<u8> = split[pid].iter().flat_map(|v| v.to_le_bytes()).collect();
            let got = tb.mem(SERVER).read(addr, cap as usize);
            assert_eq!(
                got, want,
                "seed {}: partition {pid} content mismatch",
                spec.seed
            );
            fp = fnv_fold(fp, &got);
        }
    }
    finish(&tb, payload.len() as u64, elapsed_ps, fp, error_code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_agg_hll_end_to_end() {
        let run = run_filter_agg_hll(&ChainSpec::new(20_000, 0xC0FFEE));
        assert_eq!(run.payload_bytes, 20_000 * 8);
        assert!(run.gib_per_sec > 0.0);
        assert_eq!(run.error_code, None);
    }

    #[test]
    fn crcverify_shuffle_end_to_end() {
        let run = run_crcverify_shuffle(&ChainSpec::new(10_000, 0xFACE));
        assert_eq!(run.payload_bytes, 10_000 * 8);
        assert_eq!(run.error_code, None);
    }

    #[test]
    fn corruption_surfaces_inband_error() {
        let mut spec = ChainSpec::new(5_000, 0xBAD);
        spec.corrupt = true;
        let run = run_crcverify_shuffle(&spec);
        assert_eq!(
            run.error_code,
            Some(strom_kernels::framework::ERR_INCONSISTENT)
        );
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let spec = ChainSpec::new(4_000, 0x5EED);
        assert_eq!(run_filter_agg_hll(&spec), run_filter_agg_hll(&spec));
        assert_eq!(run_crcverify_shuffle(&spec), run_crcverify_shuffle(&spec));
    }
}
