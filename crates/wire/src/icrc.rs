//! The invariant CRC (ICRC) trailer of RoCE packets.
//!
//! Every RoCE packet carries a 4-byte CRC-32 over the fields that are
//! invariant end-to-end. Its presence matters for timing: the transmitter
//! must see the whole packet before it can append the ICRC, and the
//! receiver must see the whole packet before it can validate it, forcing
//! **store-and-forward** at both ends (§7.1: a full MTU is 176 words at
//! 8 B versus 22 words at 64 B, which is why the 100 G datapath cuts
//! latency by more than the clock ratio alone).
//!
//! We compute a real CRC-32 (the IB polynomial `0x04C11DB7`, reflected
//! form `0xEDB88320`) over the packet bytes. We do not reproduce the IB
//! rule that masks variant header fields to `0xff` before hashing — the
//! simulated link never rewrites TTL/DSCP, so the distinction is
//! unobservable here (noted in DESIGN.md §8).

/// Length of the ICRC trailer.
pub const ICRC_LEN: usize = 4;

/// CRC-32 lookup table for the reflected polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the ICRC over `data`.
pub fn icrc(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Appends the ICRC of everything currently in `buf` to `buf`.
pub fn append_icrc(buf: &mut Vec<u8>) {
    let crc = icrc(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Splits `buf` into `(body, ok)` where `ok` says whether the trailing
/// ICRC matches the body.
pub fn check_icrc(buf: &[u8]) -> Option<(&[u8], bool)> {
    if buf.len() < ICRC_LEN {
        return None;
    }
    let (body, trailer) = buf.split_at(buf.len() - ICRC_LEN);
    let got = u32::from_le_bytes(trailer.try_into().expect("sized slice"));
    Some((body, got == icrc(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic CRC-32 check value.
        assert_eq!(icrc(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(icrc(b""), 0);
    }

    #[test]
    fn append_then_check_round_trips() {
        let mut buf = b"the packet body".to_vec();
        append_icrc(&mut buf);
        let (body, ok) = check_icrc(&buf).unwrap();
        assert!(ok);
        assert_eq!(body, b"the packet body");
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = b"the packet body".to_vec();
        append_icrc(&mut buf);
        buf[3] ^= 0x10;
        let (_, ok) = check_icrc(&buf).unwrap();
        assert!(!ok);
    }

    #[test]
    fn trailer_corruption_is_detected() {
        let mut buf = b"x".to_vec();
        append_icrc(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 1;
        let (_, ok) = check_icrc(&buf).unwrap();
        assert!(!ok);
    }

    #[test]
    fn short_buffer_has_no_icrc() {
        assert!(check_icrc(&[1, 2, 3]).is_none());
    }
}
