//! The invariant CRC (ICRC) trailer of RoCE packets.
//!
//! Every RoCE packet carries a 4-byte CRC-32 over the fields that are
//! invariant end-to-end. Its presence matters for timing: the transmitter
//! must see the whole packet before it can append the ICRC, and the
//! receiver must see the whole packet before it can validate it, forcing
//! **store-and-forward** at both ends (§7.1: a full MTU is 176 words at
//! 8 B versus 22 words at 64 B, which is why the 100 G datapath cuts
//! latency by more than the clock ratio alone).
//!
//! We compute a real CRC-32 (the IB polynomial `0x04C11DB7`, reflected
//! form `0xEDB88320`) over the packet bytes. We do not reproduce the IB
//! rule that masks variant header fields to `0xff` before hashing — the
//! simulated link never rewrites TTL/DSCP, so the distinction is
//! unobservable here (noted in DESIGN.md §8).
//!
//! The hot path is **slice-by-16**: sixteen 256-entry tables let the loop
//! consume sixteen input bytes per step instead of one, the same
//! table-composition trick production CRC libraries use. The FPGA computes
//! the ICRC over a full datapath word per cycle; slicing is the software
//! move in the same direction, and on the simulator it takes the two
//! per-frame CRC passes (TX append + RX check) off the critical path. The
//! original byte-at-a-time loop is kept as [`icrc_reference`] — the
//! differential property tests in `tests/prop.rs` and the `wire_micro`
//! bench both compare against it.

/// Length of the ICRC trailer.
pub const ICRC_LEN: usize = 4;

/// The sixteen slice-by-16 lookup tables for the reflected polynomial
/// `0xEDB88320`. `t[0]` is the classic byte-at-a-time table; `t[k][b]` is
/// the CRC contribution of byte `b` followed by `k` zero bytes, so
/// sixteen single-byte steps fuse into one sixteen-way XOR.
fn tables() -> &'static [[u32; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<[[u32; 256]; 16]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 16]);
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        for k in 1..16 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            }
        }
        t
    })
}

/// Computes the ICRC over `data` (slice-by-16 fast path).
pub fn icrc(data: &[u8]) -> u32 {
    let t = tables();
    let mut crc = 0xffff_ffffu32;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes(c[0..4].try_into().expect("sized"));
        crc = t[15][(lo & 0xff) as usize]
            ^ t[14][((lo >> 8) & 0xff) as usize]
            ^ t[13][((lo >> 16) & 0xff) as usize]
            ^ t[12][(lo >> 24) as usize]
            ^ t[11][c[4] as usize]
            ^ t[10][c[5] as usize]
            ^ t[9][c[6] as usize]
            ^ t[8][c[7] as usize]
            ^ t[7][c[8] as usize]
            ^ t[6][c[9] as usize]
            ^ t[5][c[10] as usize]
            ^ t[4][c[11] as usize]
            ^ t[3][c[12] as usize]
            ^ t[2][c[13] as usize]
            ^ t[1][c[14] as usize]
            ^ t[0][c[15] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// The original byte-at-a-time ICRC — the reference implementation the
/// slice-by-16 fast path is differential-tested (and benchmarked) against.
pub fn icrc_reference(data: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Appends the ICRC of everything currently in `buf` to `buf`.
pub fn append_icrc(buf: &mut Vec<u8>) {
    let crc = icrc(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Splits `buf` into `(body, ok)` where `ok` says whether the trailing
/// ICRC matches the body.
pub fn check_icrc(buf: &[u8]) -> Option<(&[u8], bool)> {
    if buf.len() < ICRC_LEN {
        return None;
    }
    let (body, trailer) = buf.split_at(buf.len() - ICRC_LEN);
    let got = u32::from_le_bytes(trailer.try_into().expect("sized slice"));
    Some((body, got == icrc(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic CRC-32 check value.
        assert_eq!(icrc(b"123456789"), 0xCBF4_3926);
        assert_eq!(icrc_reference(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(icrc(b""), 0);
        assert_eq!(icrc_reference(b""), 0);
    }

    #[test]
    fn sliced_matches_reference_across_lengths() {
        // Every length through a few chunk boundaries, with nonuniform data.
        let data: Vec<u8> = (0..100u32)
            .map(|i| (i.wrapping_mul(37) % 251) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                icrc(&data[..len]),
                icrc_reference(&data[..len]),
                "len = {len}"
            );
        }
    }

    #[test]
    fn append_then_check_round_trips() {
        let mut buf = b"the packet body".to_vec();
        append_icrc(&mut buf);
        let (body, ok) = check_icrc(&buf).unwrap();
        assert!(ok);
        assert_eq!(body, b"the packet body");
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = b"the packet body".to_vec();
        append_icrc(&mut buf);
        buf[3] ^= 0x10;
        let (_, ok) = check_icrc(&buf).unwrap();
        assert!(!ok);
    }

    #[test]
    fn trailer_corruption_is_detected() {
        let mut buf = b"x".to_vec();
        append_icrc(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 1;
        let (_, ok) = check_icrc(&buf).unwrap();
        assert!(!ok);
    }

    #[test]
    fn short_buffer_has_no_icrc() {
        assert!(check_icrc(&[1, 2, 3]).is_none());
    }
}
