//! Minimal ARP for IPv4-over-Ethernet address resolution.
//!
//! The paper reuses an open-source ARP module for "seamless integration
//! into the network infrastructure" (§4.1). The testbed is a direct
//! two-node link, so this is a small request/reply codec plus a resolution
//! cache — enough to exercise the bring-up path in the examples.

use crate::ethernet::MacAddr;
use crate::ipv4::Ipv4Addr;

/// Length of an ARP packet for IPv4 over Ethernet.
pub const ARP_LEN: usize = 28;

/// An ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An ARP packet (IPv4 over Ethernet only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// Builds the reply answering `request` with our own addresses.
    pub fn reply_to(&self, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: self.target_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }

    /// Encodes into the 28-byte wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ARP_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // HTYPE Ethernet.
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // PTYPE IPv4.
        out.push(6); // HLEN.
        out.push(4); // PLEN.
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        out.extend_from_slice(&op.to_be_bytes());
        out.extend_from_slice(&self.sender_mac.0);
        out.extend_from_slice(&self.sender_ip.0);
        out.extend_from_slice(&self.target_mac.0);
        out.extend_from_slice(&self.target_ip.0);
        out
    }

    /// Parses the wire format.
    pub fn parse(buf: &[u8]) -> Option<ArpPacket> {
        if buf.len() < ARP_LEN {
            return None;
        }
        if buf[0..6] != [0, 1, 0x08, 0x00, 6, 4] {
            return None;
        }
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        let mac6 = |i: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&buf[i..i + 6]);
            MacAddr(m)
        };
        let ip4 = |i: usize| {
            let mut a = [0u8; 4];
            a.copy_from_slice(&buf[i..i + 4]);
            Ipv4Addr(a)
        };
        Some(ArpPacket {
            op,
            sender_mac: mac6(8),
            sender_ip: ip4(14),
            target_mac: mac6(18),
            target_ip: ip4(24),
        })
    }
}

/// A small IPv4 → MAC resolution cache.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: Vec<(Ipv4Addr, MacAddr)>,
}

impl ArpCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the MAC for `ip`.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.iter().find(|(i, _)| *i == ip).map(|(_, m)| *m)
    }

    /// Inserts or updates a mapping.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        if let Some(e) = self.entries.iter_mut().find(|(i, _)| *i == ip) {
            e.1 = mac;
        } else {
            self.entries.push((ip, mac));
        }
    }

    /// Learns from a received ARP packet (sender mapping) and produces the
    /// reply if the packet is a request addressed to `my_ip`.
    pub fn on_packet(
        &mut self,
        pkt: &ArpPacket,
        my_ip: Ipv4Addr,
        my_mac: MacAddr,
    ) -> Option<ArpPacket> {
        self.insert(pkt.sender_ip, pkt.sender_mac);
        if pkt.op == ArpOp::Request && pkt.target_ip == my_ip {
            Some(pkt.reply_to(my_mac))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: u8) -> (MacAddr, Ipv4Addr) {
        (MacAddr::from_node_id(n as u32), Ipv4Addr::from_node_id(n))
    }

    #[test]
    fn request_reply_round_trip() {
        let (mac1, ip1) = addrs(1);
        let (mac2, ip2) = addrs(2);
        let req = ArpPacket::request(mac1, ip1, ip2);
        let parsed = ArpPacket::parse(&req.encode()).unwrap();
        assert_eq!(parsed, req);
        let reply = parsed.reply_to(mac2);
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_mac, mac2);
        assert_eq!(reply.target_mac, mac1);
        let parsed_reply = ArpPacket::parse(&reply.encode()).unwrap();
        assert_eq!(parsed_reply, reply);
    }

    #[test]
    fn cache_resolution_flow() {
        let (mac1, ip1) = addrs(1);
        let (mac2, ip2) = addrs(2);
        let mut cache1 = ArpCache::new();
        let mut cache2 = ArpCache::new();
        assert!(cache1.lookup(ip2).is_none());
        let req = ArpPacket::request(mac1, ip1, ip2);
        // Node 2 learns node 1 and answers.
        let reply = cache2.on_packet(&req, ip2, mac2).unwrap();
        assert_eq!(cache2.lookup(ip1), Some(mac1));
        // Node 1 learns node 2 from the reply (no further answer).
        assert!(cache1.on_packet(&reply, ip1, mac1).is_none());
        assert_eq!(cache1.lookup(ip2), Some(mac2));
    }

    #[test]
    fn request_for_other_host_is_ignored() {
        let (mac1, ip1) = addrs(1);
        let (mac3, ip3) = addrs(3);
        let req = ArpPacket::request(mac1, ip1, ip3);
        let mut cache2 = ArpCache::new();
        let (mac2, ip2) = addrs(2);
        assert!(cache2.on_packet(&req, ip2, mac2).is_none());
        // But the sender is still learned.
        assert_eq!(cache2.lookup(ip1), Some(mac1));
        let _ = mac3;
    }

    #[test]
    fn malformed_packets_rejected() {
        assert!(ArpPacket::parse(&[0u8; 27]).is_none());
        let (mac1, ip1) = addrs(1);
        let mut buf = ArpPacket::request(mac1, ip1, ip1).encode();
        buf[7] = 9; // Unknown op.
        assert!(ArpPacket::parse(&buf).is_none());
        buf[7] = 1;
        buf[4] = 8; // Wrong HLEN.
        assert!(ArpPacket::parse(&buf).is_none());
    }

    #[test]
    fn insert_updates_existing_entry() {
        let mut cache = ArpCache::new();
        let (_, ip) = addrs(5);
        cache.insert(ip, MacAddr::from_node_id(5));
        cache.insert(ip, MacAddr::from_node_id(6));
        assert_eq!(cache.lookup(ip), Some(MacAddr::from_node_id(6)));
    }
}
