//! Whole-packet encode/parse: the functional equivalent of the RX/TX
//! pipelines' header stages chained together (Figure 2).
//!
//! A [`Packet`] is the in-simulation representation of one RoCE v2 frame.
//! `encode` produces the exact byte stream (Ethernet + IPv4 + UDP + BTH
//! [+ RETH] [+ AETH] + payload + ICRC); `parse` is its inverse and performs
//! the same validity checks the hardware pipeline performs, stage by stage,
//! reporting *where* an invalid packet would have been dropped.
//!
//! Both directions are engineered as a fast datapath: [`Packet::encode_into`]
//! writes the whole frame into one caller-supplied buffer in a single pass
//! (header lengths are known up front, so no intermediate RoCE-payload
//! buffer is assembled and the ICRC is computed in place over the tail),
//! and [`Packet::parse`] takes the frame as [`Bytes`] and returns the
//! payload as an O(1) slice of it — zero copies on either side of the
//! simulated wire.

use bytes::Bytes;

use crate::bth::{Aeth, Bth, Psn, Qpn, Reth};
use crate::ethernet::{self, EtherType, MacAddr};
use crate::icrc;
use crate::ipv4::{Ipv4Addr, Ipv4Header, PROTO_UDP};
use crate::opcode::Opcode;
use crate::udp::UdpHeader;

/// One RoCE v2 packet with all headers and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Source IP.
    pub src_ip: Ipv4Addr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// Base transport header.
    pub bth: Bth,
    /// RDMA extended transport header, when the op-code carries one.
    pub reth: Option<Reth>,
    /// ACK extended transport header, when the op-code carries one.
    pub aeth: Option<Aeth>,
    /// ECN codepoint carried in the IPv4 header (`ECN_NOT_ECT` unless the
    /// sender advertises ECN capability; `ECN_CE` after a switch marks it).
    pub ecn: u8,
    /// Payload bytes (cheaply cloneable).
    pub payload: Bytes,
}

/// Where in the RX pipeline an invalid packet is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Dropped before the IP stage: truncated or non-IPv4 frame.
    Ethernet,
    /// Dropped in the Process IP stage: bad checksum/length/protocol.
    Ip,
    /// Dropped in the Process UDP stage: wrong port or bad length.
    Udp,
    /// Dropped in the Process BTH stage: unknown op-code or truncation.
    Bth,
    /// Dropped in the Process RETH/AETH stage: missing extended header.
    Eth,
    /// Dropped at ICRC validation: corrupted packet.
    Icrc,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self {
            PacketError::Ethernet => "ethernet",
            PacketError::Ip => "ip",
            PacketError::Udp => "udp",
            PacketError::Bth => "bth",
            PacketError::Eth => "reth/aeth",
            PacketError::Icrc => "icrc",
        };
        write!(f, "packet dropped at the {stage} stage")
    }
}

impl std::error::Error for PacketError {}

impl Packet {
    /// Builds a request/response packet between two simulated nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src_node: u32,
        dst_node: u32,
        opcode: Opcode,
        dest_qp: Qpn,
        psn: Psn,
        reth: Option<Reth>,
        aeth: Option<Aeth>,
        payload: Bytes,
    ) -> Self {
        debug_assert_eq!(opcode.has_reth(), reth.is_some(), "RETH presence");
        debug_assert_eq!(opcode.has_aeth(), aeth.is_some(), "AETH presence");
        Packet {
            dst_mac: MacAddr::from_node_id(dst_node),
            src_mac: MacAddr::from_node_id(src_node),
            src_ip: Ipv4Addr::from_node_id(src_node as u8),
            dst_ip: Ipv4Addr::from_node_id(dst_node as u8),
            bth: Bth::new(opcode, dest_qp, psn, opcode.ends_message()),
            reth,
            aeth,
            ecn: crate::ipv4::ECN_NOT_ECT,
            payload,
        }
    }

    /// The op-code, for convenience.
    pub fn opcode(&self) -> Opcode {
        self.bth.opcode
    }

    /// Length of the encoded IP packet (IP header through ICRC).
    pub fn ip_len(&self) -> usize {
        let ib = crate::bth::BTH_LEN
            + if self.reth.is_some() {
                crate::bth::RETH_LEN
            } else {
                0
            }
            + if self.aeth.is_some() {
                crate::bth::AETH_LEN
            } else {
                0
            };
        crate::ipv4::IPV4_HEADER_LEN
            + crate::udp::UDP_HEADER_LEN
            + ib
            + self.payload.len()
            + icrc::ICRC_LEN
    }

    /// Total wire occupancy in bytes (framing, FCS, padding, preamble, IPG)
    /// — what the link serializer charges for this packet.
    pub fn wire_bytes(&self) -> usize {
        ethernet::wire_bytes(self.ip_len())
    }

    /// Encodes the full frame byte stream into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Encodes the full frame byte stream into `buf` (cleared first) in a
    /// single pass: every length is known up front from [`Self::ip_len`],
    /// so headers, payload, and ICRC are written directly into one buffer
    /// with no intermediate allocation. `buf` is typically drawn from a
    /// frame-buffer pool and reused across packets.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        let ip_len = self.ip_len();
        buf.reserve(ethernet::ETHERNET_HEADER_LEN + ip_len);
        ethernet::encode_header(self.dst_mac, self.src_mac, EtherType::Ipv4, buf);

        let udp_len = ip_len - crate::ipv4::IPV4_HEADER_LEN;
        let roce_len = udp_len - crate::udp::UDP_HEADER_LEN;
        let mut ip = Ipv4Header::for_udp(self.src_ip, self.dst_ip, udp_len, 0);
        ip.ecn = self.ecn;
        ip.encode(buf);
        let udp = UdpHeader::for_roce((self.bth.dest_qp & 0xffff) as u16, roce_len);
        udp.encode(buf);

        // The RoCE (UDP) payload: BTH [+RETH] [+AETH] + data + ICRC, with
        // the ICRC computed in place over the bytes just written.
        let roce_start = buf.len();
        self.bth.encode(buf);
        if let Some(reth) = &self.reth {
            reth.encode(buf);
        }
        if let Some(aeth) = &self.aeth {
            aeth.encode(buf);
        }
        buf.extend_from_slice(&self.payload);
        let crc = icrc::icrc(&buf[roce_start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(buf.len(), ethernet::ETHERNET_HEADER_LEN + ip_len);
    }

    /// Parses a frame, performing every pipeline validity check.
    ///
    /// Zero-copy: the returned packet's payload is an O(1)
    /// [`Bytes::slice`] of `frame`, not a copy — the frame buffer stays
    /// alive (and, in the testbed, out of the frame pool) for exactly as
    /// long as something still references the payload.
    pub fn parse(frame: &Bytes) -> Result<Packet, PacketError> {
        let (dst_mac, src_mac, ethertype, rest) =
            ethernet::parse_header(frame).ok_or(PacketError::Ethernet)?;
        if EtherType::from_wire(ethertype) != Some(EtherType::Ipv4) {
            return Err(PacketError::Ethernet);
        }
        let (ip, rest) = Ipv4Header::parse(rest).ok_or(PacketError::Ip)?;
        if ip.protocol != PROTO_UDP {
            return Err(PacketError::Ip);
        }
        let (udp, roce) = UdpHeader::parse(rest).ok_or(PacketError::Udp)?;
        if !udp.is_roce() {
            return Err(PacketError::Udp);
        }
        // ICRC is validated over the whole IB packet (store-and-forward).
        let (body, ok) = icrc::check_icrc(roce).ok_or(PacketError::Icrc)?;
        if !ok {
            return Err(PacketError::Icrc);
        }
        let (bth, rest) = Bth::parse(body).ok_or(PacketError::Bth)?;
        let (reth, rest) = if bth.opcode.has_reth() {
            let (r, rest) = Reth::parse(rest).ok_or(PacketError::Eth)?;
            (Some(r), rest)
        } else {
            (None, rest)
        };
        let (aeth, rest) = if bth.opcode.has_aeth() {
            let (a, rest) = Aeth::parse(rest).ok_or(PacketError::Eth)?;
            (Some(a), rest)
        } else {
            (None, rest)
        };
        // `rest` is the payload. Recover its offset in `frame` from the
        // header structure alone: the RoCE region always starts right
        // after the fixed Ethernet + IPv4 + UDP headers, and the headers
        // consumed `body.len() - rest.len()` of it. Deriving the offset
        // from the *physical* frame tail instead would silently shift the
        // payload into any trailing bytes beyond the IP datagram (e.g.
        // Ethernet minimum-frame padding), which the length-bounded
        // header stages and the ICRC never look at.
        let payload_start = ethernet::ETHERNET_HEADER_LEN
            + crate::ipv4::IPV4_HEADER_LEN
            + crate::udp::UDP_HEADER_LEN
            + (body.len() - rest.len());
        let payload_end = payload_start + rest.len();
        Ok(Packet {
            dst_mac,
            src_mac,
            src_ip: ip.src,
            dst_ip: ip.dst,
            bth,
            reth,
            aeth,
            ecn: ip.ecn,
            payload: frame.slice(payload_start..payload_end),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bth::AethSyndrome;

    fn write_only(payload: &[u8]) -> Packet {
        Packet::new(
            1,
            2,
            Opcode::WriteOnly,
            5,
            100,
            Some(Reth {
                vaddr: 0x1000,
                rkey: 1,
                dma_len: payload.len() as u32,
            }),
            None,
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn encode_parse_round_trip_write() {
        let p = write_only(b"hello strom");
        let parsed = Packet::parse(&Bytes::from(p.encode())).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn encode_parse_round_trip_ack() {
        let p = Packet::new(
            2,
            1,
            Opcode::Acknowledge,
            7,
            55,
            None,
            Some(Aeth {
                syndrome: AethSyndrome::Ack,
                msn: 3,
            }),
            Bytes::new(),
        );
        let parsed = Packet::parse(&Bytes::from(p.encode())).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn encode_parse_round_trip_rpc_params() {
        let p = Packet::new(
            1,
            2,
            Opcode::RpcParams,
            9,
            1,
            Some(Reth {
                vaddr: crate::opcode::RpcOpCode::TRAVERSAL.0,
                rkey: 0,
                dma_len: 48,
            }),
            None,
            Bytes::from(vec![7u8; 48]),
        );
        let parsed = Packet::parse(&Bytes::from(p.encode())).unwrap();
        assert_eq!(parsed, p);
        assert!(parsed.opcode().is_strom_extension());
    }

    #[test]
    fn payload_corruption_fails_icrc() {
        let p = write_only(b"data to protect");
        let mut frame = p.encode();
        let n = frame.len();
        frame[n - 10] ^= 0x40;
        assert_eq!(Packet::parse(&Bytes::from(frame)), Err(PacketError::Icrc));
    }

    #[test]
    fn wrong_udp_port_dropped_at_udp_stage() {
        let p = write_only(b"x");
        let mut frame = p.encode();
        // UDP dst port lives at eth(14) + ip(20) + 2.
        frame[14 + 20 + 2] = 0;
        frame[14 + 20 + 3] = 53;
        assert_eq!(Packet::parse(&Bytes::from(frame)), Err(PacketError::Udp));
    }

    #[test]
    fn non_ipv4_dropped_at_ethernet_stage() {
        let p = write_only(b"x");
        let mut frame = p.encode();
        frame[12] = 0x86;
        frame[13] = 0xdd; // IPv6.
        assert_eq!(
            Packet::parse(&Bytes::from(frame)),
            Err(PacketError::Ethernet)
        );
    }

    #[test]
    fn ip_len_matches_encoding() {
        for payload_len in [0usize, 1, 64, 1440] {
            let p = write_only(&vec![0u8; payload_len]);
            assert_eq!(
                p.encode().len(),
                ethernet::ETHERNET_HEADER_LEN + p.ip_len(),
                "payload_len = {payload_len}"
            );
        }
    }

    #[test]
    fn wire_bytes_includes_overheads() {
        let p = write_only(&[0u8; 64]);
        // 64 B payload + 14 eth + 20 ip + 8 udp + 12 bth + 16 reth + 4 icrc
        // + 4 fcs + 20 preamble/ipg.
        assert_eq!(p.wire_bytes(), 64 + 14 + 20 + 8 + 12 + 16 + 4 + 4 + 20);
    }

    #[test]
    fn trailing_bytes_beyond_the_ip_datagram_do_not_shift_the_payload() {
        // The IP total-length field bounds every parse stage, so bytes
        // appended after the ICRC (e.g. Ethernet minimum-frame padding)
        // must be ignored — the payload slice is recovered from header
        // offsets, not the physical frame tail.
        let p = write_only(b"short");
        let mut frame = p.encode();
        frame.extend_from_slice(&[0xEE; 13]);
        let parsed = Packet::parse(&Bytes::from(frame)).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn ce_marked_frame_round_trips_and_passes_icrc() {
        // A switch marks CE on the encoded frame; the IPv4 checksum is
        // repaired in place and the ICRC (BTH+payload only) still holds.
        let mut p = write_only(b"ecn capable payload");
        p.ecn = crate::ipv4::ECN_ECT0;
        let mut frame = p.encode();
        assert!(crate::ipv4::mark_ce(
            &mut frame[ethernet::ETHERNET_HEADER_LEN..]
        ));
        let parsed = Packet::parse(&Bytes::from(frame)).unwrap();
        assert_eq!(parsed.ecn, crate::ipv4::ECN_CE);
        assert_eq!(parsed.payload, p.payload);
        // And the marked frame re-encodes to the same bytes (capture
        // round-trip invariant of the switched testbed).
        let mut frame2 = p.encode();
        crate::ipv4::mark_ce(&mut frame2[ethernet::ETHERNET_HEADER_LEN..]);
        assert_eq!(parsed.encode(), frame2);
    }

    #[test]
    fn cnp_round_trips() {
        let p = Packet::new(2, 1, Opcode::Cnp, 9, 0, None, None, Bytes::new());
        let parsed = Packet::parse(&Bytes::from(p.encode())).unwrap();
        assert_eq!(parsed, p);
        assert!(!parsed.bth.ack_req);
    }

    #[test]
    fn middle_packet_has_no_reth() {
        let p = Packet::new(
            1,
            2,
            Opcode::WriteMiddle,
            5,
            101,
            None,
            None,
            Bytes::from(vec![1u8; 32]),
        );
        let parsed = Packet::parse(&Bytes::from(p.encode())).unwrap();
        assert!(parsed.reth.is_none());
        assert_eq!(parsed.payload.len(), 32);
    }
}
