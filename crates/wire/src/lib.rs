//! RoCE v2 wire formats for StRoM.
//!
//! This crate implements the packet formats the StRoM NIC processes
//! (paper §4.1): Ethernet, IPv4, UDP, the Infiniband Base Transport Header
//! (BTH), the RDMA Extended Transport Header (RETH), the ACK Extended
//! Transport Header (AETH), and the invariant CRC (ICRC) trailer — plus the
//! five StRoM-specific BTH op-codes of Table 1 that carry RPC invocations
//! and RPC WRITE payload to on-NIC kernels.
//!
//! Packets here are byte-accurate: encode/parse are exact inverses and the
//! protocol state machines in `strom-proto` operate on the parsed headers,
//! just as the FPGA pipeline stages of Figure 2 operate on header fields
//! extracted from the byte stream.

pub mod arp;
pub mod bth;
pub mod ethernet;
pub mod icrc;
pub mod ipv4;
pub mod opcode;
pub mod packet;
pub mod pcap;
pub mod segment;
pub mod udp;

pub use bth::{Aeth, Bth, Reth, AETH_LEN, BTH_LEN, RETH_LEN};
pub use ethernet::{EtherType, MacAddr, ETHERNET_HEADER_LEN, ETHERNET_MIN_FRAME};
pub use ipv4::{mark_ce, Ipv4Addr, Ipv4Header, ECN_CE, ECN_ECT0, ECN_NOT_ECT, IPV4_HEADER_LEN};
pub use opcode::{Opcode, RpcOpCode};
pub use packet::{Packet, PacketError};
pub use pcap::PcapWriter;
pub use segment::{segment_message, SegmentKind};
pub use udp::{UdpHeader, ROCE_V2_PORT, UDP_HEADER_LEN};

/// Default Ethernet MTU assumed throughout the paper (1500 B, §6.1/Fig 5).
pub const DEFAULT_MTU: usize = 1500;

/// RoCE payload bytes that fit in one MTU-sized packet.
///
/// The IP packet must fit the MTU: IPv4 (20) + UDP (8) + BTH (12) +
/// RETH (16) + ICRC (4) leaves `MTU - 60` for payload on a FIRST/ONLY
/// packet. For simplicity StRoM segments all packets of a message to the
/// same maximum payload.
pub fn max_payload(mtu: usize) -> usize {
    mtu.saturating_sub(IPV4_HEADER_LEN + UDP_HEADER_LEN + BTH_LEN + RETH_LEN + icrc::ICRC_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mtu_payload() {
        assert_eq!(max_payload(DEFAULT_MTU), 1440);
    }

    #[test]
    fn tiny_mtu_saturates() {
        assert_eq!(max_payload(10), 0);
    }
}
