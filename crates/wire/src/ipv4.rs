//! IPv4 header encoding, parsing, and checksum.
//!
//! StRoM uses RoCE v2 over IPv4 and UDP (§2.1). The Process IP pipeline
//! stage checks the header checksum and extracts addresses and length
//! before forwarding metadata on a separate bus (§4.1); this module is the
//! functional equivalent.

/// Length of an IPv4 header without options (StRoM never emits options).
pub const IPV4_HEADER_LEN: usize = 20;

/// ECN codepoint: not ECN-capable transport (the default).
pub const ECN_NOT_ECT: u8 = 0b00;

/// ECN codepoint: ECN-capable transport (ECT(0), RFC 3168).
pub const ECN_ECT0: u8 = 0b10;

/// ECN codepoint: congestion experienced, set by a marking switch.
pub const ECN_CE: u8 = 0b11;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Builds a testbed address `10.1.212.<id>` (the fpga-network-stack
    /// default subnet).
    pub fn from_node_id(id: u8) -> Self {
        Ipv4Addr([10, 1, 212, id])
    }

    /// The node id of a testbed address (the inverse of
    /// [`Ipv4Addr::from_node_id`]), or `None` for an address outside the
    /// testbed subnet.
    pub fn node_id(&self) -> Option<u8> {
        match self.0 {
            [10, 1, 212, id] => Some(id),
            _ => None,
        }
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// A parsed IPv4 header (the fields StRoM's Process IP stage uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Total length (header + payload).
    pub total_len: u16,
    /// Layer-4 protocol (17 = UDP for RoCE v2).
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used for diagnostics only).
    pub ident: u16,
    /// ECN codepoint (2 bits): `ECN_NOT_ECT`, `ECN_ECT0`, or `ECN_CE`.
    pub ecn: u8,
}

/// Protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

impl Ipv4Header {
    /// Creates a UDP-carrying header with the given payload length.
    pub fn for_udp(src: Ipv4Addr, dst: Ipv4Addr, payload_len: usize, ident: u16) -> Self {
        Ipv4Header {
            src,
            dst,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            protocol: PROTO_UDP,
            ttl: 64,
            ident,
            ecn: ECN_NOT_ECT,
        }
    }

    /// Encodes the header (with a correct checksum) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45); // Version 4, IHL 5.
        out.push(self.ecn & 0b11); // DSCP 0, ECN in the low two bits.
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&[0x40, 0x00]); // Flags: DF, fragment offset 0.
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // Checksum placeholder.
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.dst.0);
        let csum = checksum(&out[start..start + IPV4_HEADER_LEN]);
        out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Parses and checksum-verifies a header; returns `(header, rest)`.
    ///
    /// Mirrors the Process IP stage: a failed checksum drops the packet.
    pub fn parse(buf: &[u8]) -> Option<(Ipv4Header, &[u8])> {
        if buf.len() < IPV4_HEADER_LEN {
            return None;
        }
        if buf[0] != 0x45 {
            return None; // StRoM only handles IPv4 without options.
        }
        if checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            return None;
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN || (total_len as usize) > buf.len() {
            return None;
        }
        let header = Ipv4Header {
            total_len,
            ecn: buf[1] & 0b11,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            protocol: buf[9],
            src: Ipv4Addr([buf[12], buf[13], buf[14], buf[15]]),
            dst: Ipv4Addr([buf[16], buf[17], buf[18], buf[19]]),
        };
        Some((header, &buf[IPV4_HEADER_LEN..total_len as usize]))
    }
}

/// Marks Congestion Experienced on an encoded IPv4 header in place.
///
/// `header` must start at byte 0 of the IPv4 header (at least
/// [`IPV4_HEADER_LEN`] bytes). Only ECN-capable packets (ECT codepoints)
/// may be marked — a switch never invents ECN support the endpoint did not
/// advertise — so Not-ECT packets are left untouched and `false` is
/// returned. The header checksum is recomputed; the ICRC is unaffected
/// because it covers only the IB transport headers and payload.
pub fn mark_ce(header: &mut [u8]) -> bool {
    if header.len() < IPV4_HEADER_LEN || header[0] != 0x45 {
        return false;
    }
    if header[1] & 0b11 == ECN_NOT_ECT {
        return false;
    }
    header[1] |= ECN_CE;
    header[10] = 0;
    header[11] = 0;
    let csum = checksum(&header[..IPV4_HEADER_LEN]);
    header[10..12].copy_from_slice(&csum.to_be_bytes());
    true
}

/// The Internet checksum (RFC 1071) over `data`.
///
/// Computing it over a header whose checksum field is correct yields 0.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::for_udp(
            Ipv4Addr::from_node_id(1),
            Ipv4Addr::from_node_id(2),
            100,
            42,
        )
    }

    #[test]
    fn encode_parse_round_trip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 100]);
        let (parsed, rest) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(rest.len(), 100);
    }

    #[test]
    fn corrupted_checksum_is_dropped() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 100]);
        buf[10] ^= 0xff;
        assert!(Ipv4Header::parse(&buf).is_none());
    }

    #[test]
    fn corrupted_body_byte_in_header_is_dropped() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 100]);
        buf[15] ^= 0x01; // Flip a source-address bit.
        assert!(Ipv4Header::parse(&buf).is_none());
    }

    #[test]
    fn truncated_packet_is_dropped() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // total_len promises 120 bytes; give only the header.
        assert!(Ipv4Header::parse(&buf).is_none());
    }

    #[test]
    fn options_are_rejected() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 100]);
        buf[0] = 0x46; // IHL = 6 (with options).
        assert!(Ipv4Header::parse(&buf).is_none());
    }

    #[test]
    fn rfc1071_known_vector() {
        // Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_checksum_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn display_format() {
        assert_eq!(Ipv4Addr::from_node_id(3).to_string(), "10.1.212.3");
    }

    #[test]
    fn ecn_round_trips_through_encode_parse() {
        for ecn in [ECN_NOT_ECT, ECN_ECT0, ECN_CE] {
            let mut h = sample();
            h.ecn = ecn;
            let mut buf = Vec::new();
            h.encode(&mut buf);
            buf.extend_from_slice(&[0u8; 100]);
            let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
            assert_eq!(parsed.ecn, ecn);
        }
    }

    #[test]
    fn default_header_byte_stream_is_unchanged_by_the_ecn_field() {
        // Not-ECT encodes byte 1 as zero — exactly the pre-ECN byte
        // stream, so pinned pcap goldens and fingerprints are unaffected.
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf[1], 0);
    }

    #[test]
    fn mark_ce_sets_the_codepoint_and_fixes_the_checksum() {
        let mut h = sample();
        h.ecn = ECN_ECT0;
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 100]);
        assert!(mark_ce(&mut buf));
        let (parsed, _) = Ipv4Header::parse(&buf).expect("checksum repaired");
        assert_eq!(parsed.ecn, ECN_CE);
    }

    #[test]
    fn mark_ce_refuses_not_ect_packets() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let before = buf.clone();
        assert!(!mark_ce(&mut buf));
        assert_eq!(buf, before, "Not-ECT frames must not be altered");
    }

    #[test]
    fn mark_ce_rejects_short_or_non_ipv4_buffers() {
        assert!(!mark_ce(&mut [0u8; IPV4_HEADER_LEN - 1]));
        let mut not_ip = [0u8; IPV4_HEADER_LEN];
        not_ip[0] = 0x46;
        assert!(!mark_ce(&mut not_ip));
    }
}
