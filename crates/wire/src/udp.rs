//! UDP header for RoCE v2 encapsulation.
//!
//! RoCE v2 encapsulates IB packets in IP/UDP (§2.1); the destination port
//! 4791 identifies RoCE traffic. The Process UDP stage checks the port and
//! extracts the length (§4.1).

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// IANA-assigned UDP destination port for RoCE v2.
pub const ROCE_V2_PORT: u16 = 4791;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port (RoCE uses it for ECMP entropy; we echo the QPN).
    pub src_port: u16,
    /// Destination port — must be [`ROCE_V2_PORT`] for RoCE traffic.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
}

impl UdpHeader {
    /// Creates a RoCE v2 header for a payload of `payload_len` bytes.
    pub fn for_roce(src_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port: ROCE_V2_PORT,
            length: (UDP_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Encodes the header into `out`.
    ///
    /// RoCE v2 sets the UDP checksum to zero (it relies on the ICRC), and
    /// so do we.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // Checksum: 0 per RoCE v2 convention.
    }

    /// Parses a header; returns `(header, payload)`.
    pub fn parse(buf: &[u8]) -> Option<(UdpHeader, &[u8])> {
        if buf.len() < UDP_HEADER_LEN {
            return None;
        }
        let header = UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
        };
        let len = header.length as usize;
        if len < UDP_HEADER_LEN || len > buf.len() {
            return None;
        }
        Some((header, &buf[UDP_HEADER_LEN..len]))
    }

    /// Whether this datagram is addressed to the RoCE v2 port.
    pub fn is_roce(&self) -> bool {
        self.dst_port == ROCE_V2_PORT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpHeader::for_roce(7, 32);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[9u8; 32]);
        let (parsed, payload) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, &[9u8; 32][..]);
        assert!(parsed.is_roce());
    }

    #[test]
    fn non_roce_port_detected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 53,
            length: 8,
        };
        assert!(!h.is_roce());
    }

    #[test]
    fn truncated_datagram_rejected() {
        let h = UdpHeader::for_roce(7, 32);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // Promised 32 payload bytes, delivered none.
        assert!(UdpHeader::parse(&buf).is_none());
    }

    #[test]
    fn bogus_length_rejected() {
        let mut buf = vec![0u8; 8];
        buf[4..6].copy_from_slice(&3u16.to_be_bytes()); // Length < header.
        assert!(UdpHeader::parse(&buf).is_none());
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_none());
    }
}
