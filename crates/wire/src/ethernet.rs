//! Ethernet framing: MAC addresses, EtherTypes, and frame geometry.
//!
//! The StRoM NIC transmits IB packets as Ethernet frames (RoCE v2 over
//! IPv4/UDP). The simulation accounts frame overhead exactly: 14 B header,
//! 4 B FCS, plus the 20 B of preamble/SFD/inter-packet gap that occupy the
//! wire but never reach the pipeline.

/// Length of the Ethernet header (dst MAC + src MAC + EtherType).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Length of the frame check sequence (CRC-32 trailer).
pub const ETHERNET_FCS_LEN: usize = 4;

/// Minimum Ethernet frame size (header + payload + FCS), 64 B.
///
/// The paper uses this to bound per-packet processing: "the smallest
/// possible Ethernet frame is 64 B corresponding to 8 cycles" at the 8 B
/// datapath (§4.1).
pub const ETHERNET_MIN_FRAME: usize = 64;

/// Preamble (7) + SFD (1) + minimum inter-packet gap (12), in bytes.
///
/// These occupy wire time on every frame and are what separates 10 Gbit/s
/// line rate from the ~9.4 Gbit/s payload goodput ceiling in Fig 5b.
pub const ETHERNET_WIRE_OVERHEAD: usize = 20;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally administered address derived from a node id — handy for
    /// the simulated testbed where nodes are numbered.
    pub fn from_node_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The EtherTypes the StRoM NIC understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EtherType {
    /// IPv4 (carries RoCE v2).
    Ipv4 = 0x0800,
    /// ARP (handled by the open-source module the paper reuses).
    Arp = 0x0806,
}

impl EtherType {
    /// Decodes an EtherType of interest from its wire value.
    pub fn from_wire(v: u16) -> Option<EtherType> {
        match v {
            0x0800 => Some(EtherType::Ipv4),
            0x0806 => Some(EtherType::Arp),
            _ => None,
        }
    }
}

/// Computes the total wire occupancy in bytes of a frame carrying an IP
/// packet of `ip_len` bytes: Ethernet framing, FCS, padding to the minimum
/// frame, preamble and inter-packet gap.
pub fn wire_bytes(ip_len: usize) -> usize {
    let frame = (ETHERNET_HEADER_LEN + ip_len + ETHERNET_FCS_LEN).max(ETHERNET_MIN_FRAME);
    frame + ETHERNET_WIRE_OVERHEAD
}

/// Encodes an Ethernet header into `out`.
pub fn encode_header(dst: MacAddr, src: MacAddr, ethertype: EtherType, out: &mut Vec<u8>) {
    out.extend_from_slice(&dst.0);
    out.extend_from_slice(&src.0);
    out.extend_from_slice(&(ethertype as u16).to_be_bytes());
}

/// Parses an Ethernet header; returns `(dst, src, ethertype, rest)`.
pub fn parse_header(buf: &[u8]) -> Option<(MacAddr, MacAddr, u16, &[u8])> {
    if buf.len() < ETHERNET_HEADER_LEN {
        return None;
    }
    let mut dst = [0u8; 6];
    let mut src = [0u8; 6];
    dst.copy_from_slice(&buf[0..6]);
    src.copy_from_slice(&buf[6..12]);
    let ethertype = u16::from_be_bytes([buf[12], buf[13]]);
    Some((
        MacAddr(dst),
        MacAddr(src),
        ethertype,
        &buf[ETHERNET_HEADER_LEN..],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        let dst = MacAddr::from_node_id(1);
        let src = MacAddr::from_node_id(2);
        encode_header(dst, src, EtherType::Ipv4, &mut buf);
        buf.extend_from_slice(b"payload");
        let (d, s, et, rest) = parse_header(&buf).unwrap();
        assert_eq!(d, dst);
        assert_eq!(s, src);
        assert_eq!(EtherType::from_wire(et), Some(EtherType::Ipv4));
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn short_buffer_fails_to_parse() {
        assert!(parse_header(&[0u8; 13]).is_none());
    }

    #[test]
    fn minimum_frame_is_padded() {
        // A 1-byte IP packet still occupies min frame + overhead.
        assert_eq!(wire_bytes(1), ETHERNET_MIN_FRAME + ETHERNET_WIRE_OVERHEAD);
    }

    #[test]
    fn large_frame_is_not_padded() {
        assert_eq!(wire_bytes(1500), 14 + 1500 + 4 + 20);
    }

    #[test]
    fn node_macs_are_distinct_and_local() {
        let a = MacAddr::from_node_id(7);
        let b = MacAddr::from_node_id(8);
        assert_ne!(a, b);
        // Locally administered bit set, not multicast.
        assert_eq!(a.0[0] & 0x03, 0x02);
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn display_formats_colon_hex() {
        assert_eq!(
            MacAddr([0, 1, 0xab, 3, 4, 5]).to_string(),
            "00:01:ab:03:04:05"
        );
    }

    #[test]
    fn unknown_ethertype_is_rejected() {
        assert_eq!(EtherType::from_wire(0x86dd), None, "no IPv6 in StRoM");
    }
}
