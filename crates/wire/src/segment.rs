//! MTU segmentation of RDMA messages into First/Middle/Last/Only packets.
//!
//! A WRITE whose payload exceeds one MTU is split into a First packet
//! (carrying the RETH with the target address), Middle packets, and a Last
//! packet; the responder's MSN Table tracks the running DMA address because
//! "for write operations with payload spanning multiple packets the address
//! is only part of the first packet" (§4.1). The same segmentation applies
//! to StRoM RPC WRITE messages with the Table 1 op-codes, and to READ
//! responses.

use crate::opcode::Opcode;

/// The position of a segment within its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// The only packet of a single-packet message.
    Only,
    /// The first packet of a multi-packet message.
    First,
    /// An interior packet.
    Middle,
    /// The final packet of a multi-packet message.
    Last,
}

impl SegmentKind {
    /// Maps a message position onto the WRITE op-code family.
    pub fn write_opcode(self) -> Opcode {
        match self {
            SegmentKind::Only => Opcode::WriteOnly,
            SegmentKind::First => Opcode::WriteFirst,
            SegmentKind::Middle => Opcode::WriteMiddle,
            SegmentKind::Last => Opcode::WriteLast,
        }
    }

    /// Maps a message position onto the StRoM RPC WRITE op-code family
    /// (Table 1).
    pub fn rpc_write_opcode(self) -> Opcode {
        match self {
            SegmentKind::Only => Opcode::RpcWriteOnly,
            SegmentKind::First => Opcode::RpcWriteFirst,
            SegmentKind::Middle => Opcode::RpcWriteMiddle,
            SegmentKind::Last => Opcode::RpcWriteLast,
        }
    }

    /// Maps a message position onto the READ response op-code family.
    pub fn read_response_opcode(self) -> Opcode {
        match self {
            SegmentKind::Only => Opcode::ReadResponseOnly,
            SegmentKind::First => Opcode::ReadResponseFirst,
            SegmentKind::Middle => Opcode::ReadResponseMiddle,
            SegmentKind::Last => Opcode::ReadResponseLast,
        }
    }
}

/// One segment of a message: its position, payload byte range, and the
/// offset of that range within the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Position within the message.
    pub kind: SegmentKind,
    /// Byte offset of this segment's payload within the message.
    pub offset: usize,
    /// Payload length of this segment.
    pub len: usize,
}

/// Splits a message of `total_len` payload bytes into segments of at most
/// `max_payload` bytes.
///
/// A zero-length message still produces one `Only` segment (e.g. a
/// zero-byte write used for doorbells).
///
/// # Examples
///
/// ```
/// use strom_wire::segment::{segment_message, SegmentKind};
/// let segs = segment_message(3000, 1440);
/// assert_eq!(segs.len(), 3);
/// assert_eq!(segs[0].kind, SegmentKind::First);
/// assert_eq!(segs[2].kind, SegmentKind::Last);
/// assert_eq!(segs[2].len, 3000 - 2 * 1440);
/// ```
///
/// # Panics
///
/// Panics if `max_payload` is zero while `total_len` is not — such a
/// message could never be transmitted.
pub fn segment_message(total_len: usize, max_payload: usize) -> Vec<Segment> {
    if total_len == 0 {
        return vec![Segment {
            kind: SegmentKind::Only,
            offset: 0,
            len: 0,
        }];
    }
    assert!(max_payload > 0, "cannot segment with a zero MTU budget");
    let n = total_len.div_ceil(max_payload);
    let mut out = Vec::with_capacity(n);
    let mut offset = 0;
    for i in 0..n {
        let len = max_payload.min(total_len - offset);
        let kind = match (i, n) {
            (_, 1) => SegmentKind::Only,
            (0, _) => SegmentKind::First,
            (i, n) if i == n - 1 => SegmentKind::Last,
            _ => SegmentKind::Middle,
        };
        out.push(Segment { kind, offset, len });
        offset += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_message() {
        let segs = segment_message(100, 1440);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].kind, SegmentKind::Only);
        assert_eq!(segs[0].len, 100);
    }

    #[test]
    fn exact_multiple_has_no_partial_tail() {
        let segs = segment_message(2880, 1440);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].kind, SegmentKind::First);
        assert_eq!(segs[1].kind, SegmentKind::Last);
        assert_eq!(segs[1].len, 1440);
    }

    #[test]
    fn three_packet_message_has_middle() {
        let segs = segment_message(3000, 1440);
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![SegmentKind::First, SegmentKind::Middle, SegmentKind::Last]
        );
        assert_eq!(segs[2].len, 3000 - 2 * 1440);
    }

    #[test]
    fn segments_tile_the_message() {
        for total in [1usize, 1439, 1440, 1441, 10_000, 1 << 20] {
            let segs = segment_message(total, 1440);
            let mut expect_offset = 0;
            for s in &segs {
                assert_eq!(s.offset, expect_offset);
                assert!(s.len <= 1440);
                assert!(s.len > 0);
                expect_offset += s.len;
            }
            assert_eq!(expect_offset, total, "total = {total}");
        }
    }

    #[test]
    fn zero_length_message_is_an_only_packet() {
        let segs = segment_message(0, 1440);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].kind, SegmentKind::Only);
        assert_eq!(segs[0].len, 0);
    }

    #[test]
    fn opcode_families() {
        assert_eq!(SegmentKind::Only.write_opcode(), Opcode::WriteOnly);
        assert_eq!(SegmentKind::First.rpc_write_opcode(), Opcode::RpcWriteFirst);
        assert_eq!(
            SegmentKind::Middle.read_response_opcode(),
            Opcode::ReadResponseMiddle
        );
        assert_eq!(SegmentKind::Last.rpc_write_opcode(), Opcode::RpcWriteLast);
    }

    #[test]
    #[should_panic(expected = "zero MTU")]
    fn zero_budget_panics() {
        let _ = segment_message(10, 0);
    }
}
