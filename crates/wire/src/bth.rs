//! Infiniband transport headers: BTH, RETH, and AETH.
//!
//! These are the headers the Process BTH / Process RETH/AETH and Generate
//! BTH / Generate RETH/AETH pipeline stages of Figure 2 handle. Field
//! layouts follow the IB specification (the subset StRoM implements).

use crate::opcode::Opcode;

/// Length of the Base Transport Header.
pub const BTH_LEN: usize = 12;

/// Length of the RDMA Extended Transport Header.
pub const RETH_LEN: usize = 16;

/// Length of the ACK Extended Transport Header.
pub const AETH_LEN: usize = 4;

/// A queue pair number (24 bits on the wire).
pub type Qpn = u32;

/// A packet sequence number (24 bits on the wire, wrapping).
pub type Psn = u32;

/// Mask for 24-bit wire fields (QPN, PSN, MSN).
pub const MASK_24: u32 = 0x00ff_ffff;

/// The Base Transport Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bth {
    /// Operation code.
    pub opcode: Opcode,
    /// Destination queue pair number (24 bits).
    pub dest_qp: Qpn,
    /// Packet sequence number (24 bits).
    pub psn: Psn,
    /// Whether the responder must acknowledge this packet.
    pub ack_req: bool,
    /// Partition key (constant `0xffff` in StRoM, the default partition).
    pub pkey: u16,
}

impl Bth {
    /// Creates a BTH with the default partition key.
    pub fn new(opcode: Opcode, dest_qp: Qpn, psn: Psn, ack_req: bool) -> Self {
        Bth {
            opcode,
            dest_qp: dest_qp & MASK_24,
            psn: psn & MASK_24,
            ack_req,
            pkey: 0xffff,
        }
    }

    /// Encodes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.opcode.to_wire());
        out.push(0x40); // Flags: migration state = migrated, pad 0, tver 0.
        out.extend_from_slice(&self.pkey.to_be_bytes());
        let qp = self.dest_qp & MASK_24;
        out.push(0); // Reserved.
        out.extend_from_slice(&qp.to_be_bytes()[1..4]);
        let psn = self.psn & MASK_24;
        out.push(if self.ack_req { 0x80 } else { 0x00 });
        out.extend_from_slice(&psn.to_be_bytes()[1..4]);
    }

    /// Parses a BTH; returns `(header, rest)`.
    ///
    /// Unknown or reserved op-codes fail to parse — the hardware drops such
    /// packets in the Process BTH stage.
    pub fn parse(buf: &[u8]) -> Option<(Bth, &[u8])> {
        if buf.len() < BTH_LEN {
            return None;
        }
        let opcode = Opcode::from_wire(buf[0] & 0x1f)?;
        if buf[0] >> 5 != crate::opcode::TRANSPORT_RC {
            return None; // Only the RC transport is implemented.
        }
        let pkey = u16::from_be_bytes([buf[2], buf[3]]);
        let dest_qp = u32::from_be_bytes([0, buf[5], buf[6], buf[7]]);
        let ack_req = buf[8] & 0x80 != 0;
        let psn = u32::from_be_bytes([0, buf[9], buf[10], buf[11]]);
        Some((
            Bth {
                opcode,
                dest_qp,
                psn,
                ack_req,
                pkey,
            },
            &buf[BTH_LEN..],
        ))
    }
}

/// The RDMA Extended Transport Header: target address, rkey, and length.
///
/// For the StRoM op-codes the *address* field carries the RPC op-code used
/// to match the request against the kernels deployed on the remote NIC
/// (§5.1) — the header layout is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reth {
    /// Remote virtual address (or RPC op-code for StRoM packets).
    pub vaddr: u64,
    /// Remote key of the target memory region.
    pub rkey: u32,
    /// Total DMA length of the message in bytes.
    pub dma_len: u32,
}

impl Reth {
    /// Encodes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.vaddr.to_be_bytes());
        out.extend_from_slice(&self.rkey.to_be_bytes());
        out.extend_from_slice(&self.dma_len.to_be_bytes());
    }

    /// Parses a RETH; returns `(header, rest)`.
    pub fn parse(buf: &[u8]) -> Option<(Reth, &[u8])> {
        if buf.len() < RETH_LEN {
            return None;
        }
        let vaddr = u64::from_be_bytes(buf[0..8].try_into().expect("sized slice"));
        let rkey = u32::from_be_bytes(buf[8..12].try_into().expect("sized slice"));
        let dma_len = u32::from_be_bytes(buf[12..16].try_into().expect("sized slice"));
        Some((
            Reth {
                vaddr,
                rkey,
                dma_len,
            },
            &buf[RETH_LEN..],
        ))
    }
}

/// AETH syndrome values StRoM generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AethSyndrome {
    /// Positive acknowledgement.
    Ack,
    /// Negative acknowledgement: PSN sequence error (requests retransmit).
    NakSequenceError,
    /// Negative acknowledgement: remote operational error (e.g. no kernel
    /// matched an RPC op-code and no CPU fallback was configured, §5.1).
    NakRemoteOperationalError,
}

impl AethSyndrome {
    /// Encodes into the 8-bit syndrome field.
    pub fn to_wire(self) -> u8 {
        match self {
            // Ack with credit count field = 31 (unlimited credits).
            AethSyndrome::Ack => 0b0001_1111,
            AethSyndrome::NakSequenceError => 0b0110_0000,
            AethSyndrome::NakRemoteOperationalError => 0b0110_0100,
        }
    }

    /// Decodes from the 8-bit syndrome field.
    pub fn from_wire(v: u8) -> Option<AethSyndrome> {
        match v >> 5 {
            0b000 => Some(AethSyndrome::Ack),
            0b011 => match v & 0x1f {
                0 => Some(AethSyndrome::NakSequenceError),
                4 => Some(AethSyndrome::NakRemoteOperationalError),
                _ => None,
            },
            _ => None,
        }
    }
}

/// The ACK Extended Transport Header: syndrome plus message sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aeth {
    /// ACK/NAK discrimination.
    pub syndrome: AethSyndrome,
    /// Message sequence number (24 bits) from the responder's MSN table.
    pub msn: u32,
}

impl Aeth {
    /// Encodes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.syndrome.to_wire());
        out.extend_from_slice(&(self.msn & MASK_24).to_be_bytes()[1..4]);
    }

    /// Parses an AETH; returns `(header, rest)`.
    pub fn parse(buf: &[u8]) -> Option<(Aeth, &[u8])> {
        if buf.len() < AETH_LEN {
            return None;
        }
        let syndrome = AethSyndrome::from_wire(buf[0])?;
        let msn = u32::from_be_bytes([0, buf[1], buf[2], buf[3]]);
        Some((Aeth { syndrome, msn }, &buf[AETH_LEN..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bth_round_trip() {
        let bth = Bth::new(Opcode::WriteOnly, 0x1234, 0xabcdef, true);
        let mut buf = Vec::new();
        bth.encode(&mut buf);
        assert_eq!(buf.len(), BTH_LEN);
        let (parsed, rest) = Bth::parse(&buf).unwrap();
        assert_eq!(parsed, bth);
        assert!(rest.is_empty());
    }

    #[test]
    fn bth_masks_to_24_bits() {
        let bth = Bth::new(Opcode::ReadRequest, 0xff00_0001, 0xff00_0002, false);
        assert_eq!(bth.dest_qp, 0x0000_0001);
        assert_eq!(bth.psn, 0x0000_0002);
    }

    #[test]
    fn bth_rejects_reserved_opcode() {
        let mut buf = Vec::new();
        Bth::new(Opcode::WriteOnly, 1, 1, false).encode(&mut buf);
        buf[0] = 0b000_11110; // Reserved StRoM op-code (11101 is now CNP).
        assert!(Bth::parse(&buf).is_none());
    }

    #[test]
    fn bth_rejects_non_rc_transport() {
        let mut buf = Vec::new();
        Bth::new(Opcode::WriteOnly, 1, 1, false).encode(&mut buf);
        buf[0] = (0b011 << 5) | 0x0a; // UD transport prefix.
        assert!(Bth::parse(&buf).is_none());
    }

    #[test]
    fn reth_round_trip() {
        let reth = Reth {
            vaddr: 0xdead_beef_0000_0040,
            rkey: 7,
            dma_len: 4096,
        };
        let mut buf = Vec::new();
        reth.encode(&mut buf);
        assert_eq!(buf.len(), RETH_LEN);
        let (parsed, rest) = Reth::parse(&buf).unwrap();
        assert_eq!(parsed, reth);
        assert!(rest.is_empty());
    }

    #[test]
    fn aeth_round_trip_all_syndromes() {
        for syndrome in [
            AethSyndrome::Ack,
            AethSyndrome::NakSequenceError,
            AethSyndrome::NakRemoteOperationalError,
        ] {
            let aeth = Aeth { syndrome, msn: 99 };
            let mut buf = Vec::new();
            aeth.encode(&mut buf);
            assert_eq!(buf.len(), AETH_LEN);
            let (parsed, _) = Aeth::parse(&buf).unwrap();
            assert_eq!(parsed, aeth);
        }
    }

    #[test]
    fn short_buffers_fail() {
        assert!(Bth::parse(&[0u8; BTH_LEN - 1]).is_none());
        assert!(Reth::parse(&[0u8; RETH_LEN - 1]).is_none());
        assert!(Aeth::parse(&[0u8; AETH_LEN - 1]).is_none());
    }

    #[test]
    fn strom_rpc_opcode_travels_in_reth_vaddr() {
        // §5.1: the RETH address field encodes the RPC op-code.
        let reth = Reth {
            vaddr: crate::opcode::RpcOpCode::TRAVERSAL.0,
            rkey: 0,
            dma_len: 64,
        };
        let mut buf = Vec::new();
        reth.encode(&mut buf);
        let (parsed, _) = Reth::parse(&buf).unwrap();
        assert_eq!(
            crate::opcode::RpcOpCode(parsed.vaddr),
            crate::opcode::RpcOpCode::TRAVERSAL
        );
    }
}
