//! BTH op-codes: the standard RC one-sided subset plus the StRoM extension.
//!
//! The paper's stack implements only the one-sided RC verbs (RDMA WRITE and
//! RDMA READ, §4.1) and extends the protocol with exactly five new op-codes
//! and two new verbs (Table 1):
//!
//! | verb        | op-code | description            |
//! |-------------|---------|------------------------|
//! | `RPC`       | `11000` | RDMA RPC Params        |
//! | `RPC WRITE` | `11001` | RDMA RPC WRITE First   |
//! | `RPC WRITE` | `11010` | RDMA RPC WRITE Middle  |
//! | `RPC WRITE` | `11011` | RDMA RPC WRITE Last    |
//! | `RPC WRITE` | `11100` | RDMA RPC WRITE Only    |
//! |             | `11101` | CNP (congestion notification, DCQCN) |
//! |             | `11110`–`11111` | reserved       |
//!
//! The CNP op-code is this repo's congestion-control extension (not in the
//! paper's Table 1): it occupies the first reserved slot, mirroring how
//! RoCE v2 DCQCN reserves a BTH op-code for its congestion notification
//! packets.
//!
//! The BTH op-code field is 8 bits: a 3-bit transport prefix (RC = `000`)
//! followed by the 5-bit operation code listed above.

/// The 3-bit Reliable Connection transport prefix in the BTH op-code field.
pub const TRANSPORT_RC: u8 = 0b000;

/// A BTH operation code (the 5-bit operation part, RC transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// RDMA WRITE First — first packet of a multi-packet write.
    WriteFirst = 0x06,
    /// RDMA WRITE Middle.
    WriteMiddle = 0x07,
    /// RDMA WRITE Last.
    WriteLast = 0x08,
    /// RDMA WRITE Only — single-packet write.
    WriteOnly = 0x0A,
    /// RDMA READ Request.
    ReadRequest = 0x0C,
    /// RDMA READ Response First.
    ReadResponseFirst = 0x0D,
    /// RDMA READ Response Middle.
    ReadResponseMiddle = 0x0E,
    /// RDMA READ Response Last.
    ReadResponseLast = 0x0F,
    /// RDMA READ Response Only.
    ReadResponseOnly = 0x10,
    /// Acknowledge (carries an AETH).
    Acknowledge = 0x11,
    /// StRoM: RDMA RPC Params — invokes a kernel, payload = parameters.
    RpcParams = 0b11000,
    /// StRoM: RDMA RPC WRITE First — payload streamed to a kernel.
    RpcWriteFirst = 0b11001,
    /// StRoM: RDMA RPC WRITE Middle.
    RpcWriteMiddle = 0b11010,
    /// StRoM: RDMA RPC WRITE Last.
    RpcWriteLast = 0b11011,
    /// StRoM: RDMA RPC WRITE Only.
    RpcWriteOnly = 0b11100,
    /// Congestion Notification Packet (DCQCN): sent by a responder when a
    /// CE-marked frame arrives; carries no RETH, AETH, or payload.
    Cnp = 0b11101,
}

impl Opcode {
    /// All op-codes the StRoM stack understands.
    pub const ALL: [Opcode; 16] = [
        Opcode::WriteFirst,
        Opcode::WriteMiddle,
        Opcode::WriteLast,
        Opcode::WriteOnly,
        Opcode::ReadRequest,
        Opcode::ReadResponseFirst,
        Opcode::ReadResponseMiddle,
        Opcode::ReadResponseLast,
        Opcode::ReadResponseOnly,
        Opcode::Acknowledge,
        Opcode::RpcParams,
        Opcode::RpcWriteFirst,
        Opcode::RpcWriteMiddle,
        Opcode::RpcWriteLast,
        Opcode::RpcWriteOnly,
        Opcode::Cnp,
    ];

    /// Decodes the 5-bit operation part of a BTH op-code byte.
    pub fn from_wire(op: u8) -> Option<Opcode> {
        Self::ALL.iter().copied().find(|&o| o as u8 == op & 0x1f)
    }

    /// Encodes into the full 8-bit BTH op-code byte (RC transport).
    pub fn to_wire(self) -> u8 {
        (TRANSPORT_RC << 5) | self as u8
    }

    /// Whether this op-code is one of the five StRoM extensions (Table 1).
    pub fn is_strom_extension(self) -> bool {
        matches!(
            self,
            Opcode::RpcParams
                | Opcode::RpcWriteFirst
                | Opcode::RpcWriteMiddle
                | Opcode::RpcWriteLast
                | Opcode::RpcWriteOnly
        )
    }

    /// Whether packets with this op-code carry a RETH (address/length).
    ///
    /// WRITE First/Only carry the target address; StRoM packets reuse the
    /// RETH address field as the RPC op-code (§5.1).
    pub fn has_reth(self) -> bool {
        matches!(
            self,
            Opcode::WriteFirst
                | Opcode::WriteOnly
                | Opcode::ReadRequest
                | Opcode::RpcParams
                | Opcode::RpcWriteFirst
                | Opcode::RpcWriteOnly
        )
    }

    /// Whether packets with this op-code carry an AETH.
    pub fn has_aeth(self) -> bool {
        matches!(
            self,
            Opcode::Acknowledge
                | Opcode::ReadResponseFirst
                | Opcode::ReadResponseLast
                | Opcode::ReadResponseOnly
        )
    }

    /// Whether this op-code is a READ response segment (the responder's
    /// data-bearing return traffic, distinct from request packets).
    pub fn is_read_response(self) -> bool {
        matches!(
            self,
            Opcode::ReadResponseFirst
                | Opcode::ReadResponseMiddle
                | Opcode::ReadResponseLast
                | Opcode::ReadResponseOnly
        )
    }

    /// Whether packets with this op-code carry payload.
    pub fn has_payload(self) -> bool {
        !matches!(
            self,
            Opcode::ReadRequest | Opcode::Acknowledge | Opcode::Cnp
        )
    }

    /// Whether this op-code starts a message (First or Only variants).
    pub fn starts_message(self) -> bool {
        matches!(
            self,
            Opcode::WriteFirst
                | Opcode::WriteOnly
                | Opcode::ReadRequest
                | Opcode::ReadResponseFirst
                | Opcode::ReadResponseOnly
                | Opcode::RpcParams
                | Opcode::RpcWriteFirst
                | Opcode::RpcWriteOnly
                | Opcode::Acknowledge
        )
    }

    /// Whether this op-code ends a message (Last or Only variants).
    pub fn ends_message(self) -> bool {
        matches!(
            self,
            Opcode::WriteLast
                | Opcode::WriteOnly
                | Opcode::ReadRequest
                | Opcode::ReadResponseLast
                | Opcode::ReadResponseOnly
                | Opcode::RpcParams
                | Opcode::RpcWriteLast
                | Opcode::RpcWriteOnly
                | Opcode::Acknowledge
        )
    }

    /// The human-readable name used in Table 1 and logs.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::WriteFirst => "RDMA WRITE First",
            Opcode::WriteMiddle => "RDMA WRITE Middle",
            Opcode::WriteLast => "RDMA WRITE Last",
            Opcode::WriteOnly => "RDMA WRITE Only",
            Opcode::ReadRequest => "RDMA READ Request",
            Opcode::ReadResponseFirst => "RDMA READ Response First",
            Opcode::ReadResponseMiddle => "RDMA READ Response Middle",
            Opcode::ReadResponseLast => "RDMA READ Response Last",
            Opcode::ReadResponseOnly => "RDMA READ Response Only",
            Opcode::Acknowledge => "Acknowledge",
            Opcode::RpcParams => "RDMA RPC Params",
            Opcode::RpcWriteFirst => "RDMA RPC WRITE First",
            Opcode::RpcWriteMiddle => "RDMA RPC WRITE Middle",
            Opcode::RpcWriteLast => "RDMA RPC WRITE Last",
            Opcode::RpcWriteOnly => "RDMA RPC WRITE Only",
            Opcode::Cnp => "Congestion Notification",
        }
    }
}

/// An application-level RPC op-code used to match a request against the
/// kernels deployed on the remote NIC (§5.1).
///
/// On the wire it travels in the RETH *address* field of `RPC Params` /
/// `RPC WRITE` packets — the paper reuses that field rather than defining a
/// new header, a mechanism resembling Portals matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpcOpCode(pub u64);

impl RpcOpCode {
    /// RPC op-code of the traversal kernel (§6.2).
    pub const TRAVERSAL: RpcOpCode = RpcOpCode(0x01);
    /// RPC op-code of the consistency (CRC64) kernel (§6.3).
    pub const CONSISTENCY: RpcOpCode = RpcOpCode(0x02);
    /// RPC op-code of the shuffle kernel (§6.4).
    pub const SHUFFLE: RpcOpCode = RpcOpCode(0x03);
    /// RPC op-code of the HyperLogLog kernel (§7.2).
    pub const HLL: RpcOpCode = RpcOpCode(0x04);
    /// RPC op-code of the simple GET example kernel (§5.2, Listing 2).
    pub const GET: RpcOpCode = RpcOpCode(0x05);
    /// RPC op-code of the filtering kernel (stream selection, §1).
    pub const FILTER: RpcOpCode = RpcOpCode(0x06);
    /// RPC op-code of the aggregation kernel (stream reduction, §1).
    pub const AGGREGATE: RpcOpCode = RpcOpCode(0x07);
    /// RPC op-code of the KV PUT/INSERT kernel (versioned chained
    /// hash-table updates over RDMA RPC WRITE).
    pub const PUT: RpcOpCode = RpcOpCode(0x08);
    /// RPC op-code of the top-k selection kernel (stream reduction).
    pub const TOPK: RpcOpCode = RpcOpCode(0x09);
    /// RPC op-code of the Bloom-filter semi-join kernel.
    pub const BLOOM: RpcOpCode = RpcOpCode(0x0A);
    /// RPC op-code of the substring scan kernel.
    pub const SCAN: RpcOpCode = RpcOpCode(0x0B);
    /// RPC op-code of the cut-through CRC64 verify stage.
    pub const CRC_VERIFY: RpcOpCode = RpcOpCode(0x0C);
    /// RPC op-code of the filter→aggregate→HLL kernel chain.
    pub const CHAIN_FILTER_AGG_HLL: RpcOpCode = RpcOpCode(0x0D);
    /// RPC op-code of the CRC-verify→shuffle kernel chain.
    pub const CHAIN_CRCVERIFY_SHUFFLE: RpcOpCode = RpcOpCode(0x0E);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_opcode_values() {
        // The exact 5-bit values from Table 1 of the paper.
        assert_eq!(Opcode::RpcParams as u8, 0b11000);
        assert_eq!(Opcode::RpcWriteFirst as u8, 0b11001);
        assert_eq!(Opcode::RpcWriteMiddle as u8, 0b11010);
        assert_eq!(Opcode::RpcWriteLast as u8, 0b11011);
        assert_eq!(Opcode::RpcWriteOnly as u8, 0b11100);
    }

    #[test]
    fn exactly_five_strom_extensions() {
        let n = Opcode::ALL
            .iter()
            .filter(|o| o.is_strom_extension())
            .count();
        assert_eq!(n, 5, "the paper adds exactly 5 op-codes");
    }

    #[test]
    fn reserved_opcodes_do_not_decode() {
        for op in 0b11110..=0b11111u8 {
            assert_eq!(Opcode::from_wire(op), None, "op {op:#07b} is reserved");
        }
    }

    #[test]
    fn cnp_is_a_bare_notification() {
        assert_eq!(Opcode::Cnp as u8, 0b11101);
        assert!(!Opcode::Cnp.is_strom_extension());
        assert!(!Opcode::Cnp.has_reth());
        assert!(!Opcode::Cnp.has_aeth());
        assert!(!Opcode::Cnp.has_payload());
        assert!(!Opcode::Cnp.ends_message(), "CNPs are never acked");
    }

    #[test]
    fn wire_round_trip() {
        for &op in &Opcode::ALL {
            assert_eq!(Opcode::from_wire(op.to_wire()), Some(op));
        }
    }

    #[test]
    fn rc_transport_prefix() {
        for &op in &Opcode::ALL {
            assert_eq!(op.to_wire() >> 5, TRANSPORT_RC);
        }
    }

    #[test]
    fn header_presence_rules() {
        assert!(Opcode::WriteFirst.has_reth());
        assert!(!Opcode::WriteMiddle.has_reth());
        assert!(!Opcode::WriteLast.has_reth());
        assert!(Opcode::RpcParams.has_reth());
        assert!(Opcode::Acknowledge.has_aeth());
        assert!(!Opcode::Acknowledge.has_payload());
        assert!(!Opcode::ReadRequest.has_payload());
        assert!(Opcode::ReadResponseMiddle.has_payload());
    }

    #[test]
    fn first_last_classification() {
        assert!(Opcode::WriteOnly.starts_message() && Opcode::WriteOnly.ends_message());
        assert!(Opcode::WriteFirst.starts_message() && !Opcode::WriteFirst.ends_message());
        assert!(!Opcode::WriteMiddle.starts_message() && !Opcode::WriteMiddle.ends_message());
        assert!(!Opcode::WriteLast.starts_message() && Opcode::WriteLast.ends_message());
        assert!(Opcode::RpcWriteOnly.starts_message() && Opcode::RpcWriteOnly.ends_message());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Opcode::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Opcode::ALL.len());
    }
}
