//! pcap export of captured frames, for offline inspection with standard
//! tooling (tcpdump, Wireshark, tshark).
//!
//! Writes the classic libpcap format with the nanosecond-resolution magic
//! (`0xa1b23c4d`) — the simulation clock is picoseconds, so nanosecond
//! records lose only sub-nanosecond digits — and link type 1
//! (LINKTYPE_ETHERNET), matching the raw Ethernet frames the testbed
//! puts on the wire. A minimal reader ([`read_frames`]) round-trips the
//! format for the golden-file tests.

/// Nanosecond-resolution pcap magic number (host-endian; we write LE).
pub const PCAP_MAGIC_NS: u32 = 0xa1b2_3c4d;

/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Length of the pcap global header.
pub const PCAP_HEADER_LEN: usize = 24;

/// Length of each per-record header.
pub const PCAP_RECORD_HEADER_LEN: usize = 16;

/// Picoseconds per second (the simulation clock unit).
const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An in-memory pcap file accumulating captured frames.
///
/// # Examples
///
/// ```
/// use strom_wire::pcap::{read_frames, PcapWriter};
/// let mut w = PcapWriter::new();
/// w.record(1_500_000, &[0xde, 0xad, 0xbe, 0xef]);
/// let frames = read_frames(w.as_bytes()).unwrap();
/// assert_eq!(frames, vec![(1_500, vec![0xde, 0xad, 0xbe, 0xef])]);
/// ```
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buf: Vec<u8>,
    frames: u32,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// A pcap file containing only the global header.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&PCAP_MAGIC_NS.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        Self { buf, frames: 0 }
    }

    /// Appends one frame captured at simulated time `at_ps` (picoseconds;
    /// truncated to nanosecond record resolution).
    pub fn record(&mut self, at_ps: u64, frame: &[u8]) {
        let ts_sec = (at_ps / PS_PER_SEC) as u32;
        let ts_nsec = ((at_ps % PS_PER_SEC) / 1_000) as u32;
        self.buf.extend_from_slice(&ts_sec.to_le_bytes());
        self.buf.extend_from_slice(&ts_nsec.to_le_bytes());
        self.buf
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(frame);
        self.frames += 1;
    }

    /// Frames recorded so far.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// The pcap file bytes accumulated so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the pcap file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Parses a nanosecond-resolution Ethernet pcap file produced by
/// [`PcapWriter`], returning `(timestamp_ns, frame)` per record.
///
/// Returns `None` on a bad magic, wrong link type, or truncated record.
pub fn read_frames(bytes: &[u8]) -> Option<Vec<(u64, Vec<u8>)>> {
    if bytes.len() < PCAP_HEADER_LEN {
        return None;
    }
    let word = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("sized"));
    if word(0) != PCAP_MAGIC_NS || word(20) != LINKTYPE_ETHERNET {
        return None;
    }
    let mut out = Vec::new();
    let mut off = PCAP_HEADER_LEN;
    while off < bytes.len() {
        if bytes.len() - off < PCAP_RECORD_HEADER_LEN {
            return None;
        }
        let ts_sec = u64::from(word(off));
        let ts_nsec = u64::from(word(off + 4));
        let incl = word(off + 8) as usize;
        off += PCAP_RECORD_HEADER_LEN;
        if bytes.len() - off < incl {
            return None;
        }
        out.push((
            ts_sec * 1_000_000_000 + ts_nsec,
            bytes[off..off + incl].to_vec(),
        ));
        off += incl;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_header_layout() {
        let w = PcapWriter::new();
        let b = w.as_bytes();
        assert_eq!(b.len(), PCAP_HEADER_LEN);
        assert_eq!(&b[0..4], &PCAP_MAGIC_NS.to_le_bytes());
        assert_eq!(&b[4..6], &[2, 0], "version 2.4");
        assert_eq!(&b[6..8], &[4, 0]);
        assert_eq!(&b[20..24], &LINKTYPE_ETHERNET.to_le_bytes());
        assert_eq!(w.frames(), 0);
    }

    #[test]
    fn frames_round_trip_with_nanosecond_timestamps() {
        let mut w = PcapWriter::new();
        // 2.5 µs and one full second plus 999,999,999.5 ns (sub-ns digits
        // truncate).
        w.record(2_500_000, b"abc");
        w.record(PS_PER_SEC + 999_999_999_500, &[0u8; 60]);
        assert_eq!(w.frames(), 2);
        let frames = read_frames(w.as_bytes()).unwrap();
        assert_eq!(frames[0], (2_500, b"abc".to_vec()));
        assert_eq!(frames[1], (1_999_999_999, vec![0u8; 60]));
    }

    #[test]
    fn empty_capture_round_trips() {
        assert_eq!(read_frames(PcapWriter::new().as_bytes()), Some(vec![]));
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let mut w = PcapWriter::new();
        w.record(0, b"xyz");
        let good = w.into_bytes();
        assert!(read_frames(&good[..10]).is_none(), "truncated header");
        assert!(
            read_frames(&good[..good.len() - 1]).is_none(),
            "truncated record"
        );
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(read_frames(&bad_magic).is_none());
    }
}
