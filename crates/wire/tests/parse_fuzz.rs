//! Structure-aware fuzzing of the RX parse pipeline.
//!
//! The harness starts from *valid* frames (every opcode family, random
//! headers and payloads), then applies seeded [`SimRng`] mutations that
//! mimic what a hostile or broken link can do to real traffic:
//! single/multi bit flips, truncation, extension with trailing junk,
//! zero-fill, random-garbage frames, and field splices (a region of one
//! valid frame transplanted into another — well-formed bytes in the
//! wrong place, the classic parser trap).
//!
//! The contract under test, for every mutant:
//!
//! 1. [`Packet::parse`] never panics.
//! 2. If it returns `Ok`, every ICRC-protected field (BTH, RETH, AETH,
//!    payload) is *byte-identical* to some validly encoded packet — a
//!    mutant either round-trips or is rejected; there is no silent
//!    mis-parse. (The genuinely unprotected bytes — Ethernet MACs, the
//!    UDP source port, the UDP checksum field, and bytes beyond the IP
//!    datagram — may differ; real RoCE v2 does not cover them either.)
//! 3. Corruption of protected bytes is *observed*: across each corpus
//!    the ICRC rejection counter is incremented, alongside the earlier
//!    pipeline stages' counters.
//!
//! Seeds are fixed, so every CI run explores the same corpus.

use bytes::Bytes;

use strom_sim::SimRng;
use strom_wire::bth::{Aeth, AethSyndrome, Reth};
use strom_wire::opcode::Opcode;
use strom_wire::packet::{Packet, PacketError};

/// Bytes of the frame that the pipeline genuinely does not protect:
/// destination + source MAC (0..12; the FCS is timing-only in the
/// simulation, as documented in `strom_wire::ethernet`), the UDP source
/// port (34..36; a variable field the ICRC masks out), and the UDP
/// checksum (40..42; zero by RoCE v2 convention, not validated).
fn unprotected(i: usize) -> bool {
    i < 12 || (34..36).contains(&i) || (40..42).contains(&i)
}

/// A random valid packet covering every opcode family.
fn rand_packet(rng: &mut SimRng) -> Packet {
    let op = Opcode::ALL[rng.below(Opcode::ALL.len() as u64) as usize];
    let payload = if op.has_payload() {
        let mut buf = vec![0u8; rng.below(300) as usize];
        rng.fill_bytes(&mut buf);
        Bytes::from(buf)
    } else {
        Bytes::new()
    };
    let reth = op.has_reth().then(|| Reth {
        vaddr: rng.next_u64(),
        rkey: rng.next_u64() as u32,
        dma_len: rng.below(1 << 20) as u32,
    });
    let aeth = op.has_aeth().then_some(Aeth {
        syndrome: AethSyndrome::Ack,
        msn: rng.below(1 << 24) as u32,
    });
    Packet::new(
        rng.below(4) as u32,
        rng.below(4) as u32,
        op,
        rng.below(1 << 24) as u32,
        rng.below(1 << 24) as u32,
        reth,
        aeth,
        payload,
    )
}

/// Per-stage rejection tallies — the fuzz harness's stand-in for the RX
/// pipeline drop counters.
#[derive(Debug, Default)]
struct Tally {
    ok_identical: u64,
    ok_unprotected: u64,
    rejected_icrc: u64,
    rejected_other: u64,
}

impl Tally {
    /// Classifies one mutant's parse result, enforcing invariant 2.
    ///
    /// `original` is the template the mutant derives from; `touched`
    /// reports whether any *protected* byte inside the original frame
    /// image could differ (conservative: callers pass `true` unless the
    /// mutation provably stayed in unprotected or trailing bytes).
    fn observe(&mut self, original: &Packet, mutant: &Bytes, touched_protected: bool) {
        match Packet::parse(mutant) {
            Ok(parsed) => {
                let protected_equal = parsed.bth == original.bth
                    && parsed.reth == original.reth
                    && parsed.aeth == original.aeth
                    && parsed.payload == original.payload;
                if protected_equal {
                    if parsed == *original {
                        self.ok_identical += 1;
                    } else {
                        self.ok_unprotected += 1;
                    }
                } else {
                    // An accepted mutant with different protected fields
                    // is only legitimate if the mutation rewrote the
                    // frame so thoroughly that it *is* another valid
                    // packet (splices can do this). It must then be
                    // canonical: re-encoding reproduces what was parsed.
                    assert!(
                        touched_protected,
                        "mutation of unprotected bytes changed protected fields"
                    );
                    let regression = Packet::parse(&Bytes::from(parsed.encode()))
                        .expect("re-encoding an accepted packet must parse");
                    assert_eq!(
                        regression, parsed,
                        "accepted mutant is not canonical — silent mis-parse"
                    );
                    self.ok_unprotected += 1;
                }
            }
            Err(PacketError::Icrc) => self.rejected_icrc += 1,
            Err(_) => self.rejected_other += 1,
        }
    }
}

/// Single- and multi-bit flips: every accepted mutant must carry the
/// original protected fields, and flips of protected bytes must show up
/// in the ICRC (or an earlier stage's) rejection tally.
#[test]
fn bit_flips_round_trip_or_reject() {
    let mut rng = SimRng::seed(0xF1_2206);
    let mut tally = Tally::default();
    for _ in 0..4_000 {
        let pkt = rand_packet(&mut rng);
        let mut frame = pkt.encode();
        let flips = 1 + rng.below(8) as usize;
        let mut touched = false;
        for _ in 0..flips {
            let i = rng.below(frame.len() as u64) as usize;
            frame[i] ^= 1 << rng.below(8);
            touched |= !unprotected(i);
        }
        tally.observe(&pkt, &Bytes::from(frame), touched);
    }
    assert!(tally.rejected_icrc > 0, "no flip reached the ICRC stage");
    assert!(tally.rejected_other > 0, "no flip tripped an earlier stage");
    assert!(
        tally.ok_unprotected > 0,
        "no flip landed purely in unprotected bytes"
    );
}

/// Truncation at every prefix length: never panics, and only parses
/// when the cut removed nothing of the IP datagram (the length-bounded
/// stages ignore bytes past it).
#[test]
fn truncation_rejects_or_preserves() {
    let mut rng = SimRng::seed(0x7246_0001);
    for _ in 0..1_500 {
        let pkt = rand_packet(&mut rng);
        let full = pkt.encode();
        let keep = rng.below(full.len() as u64 + 1) as usize;
        let frame = Bytes::from(full[..keep].to_vec());
        match Packet::parse(&frame) {
            Ok(parsed) => assert_eq!(
                parsed,
                pkt,
                "truncation to {keep} of {} accepted a different packet",
                full.len()
            ),
            Err(_) => assert!(
                keep < full.len(),
                "the untruncated frame must parse cleanly"
            ),
        }
    }
}

/// Appending junk past the encoded frame (oversized reads, minimum-size
/// padding) must not shift the payload or change any field.
#[test]
fn trailing_extension_is_ignored() {
    let mut rng = SimRng::seed(0xE07E_2206);
    for _ in 0..1_500 {
        let pkt = rand_packet(&mut rng);
        let mut frame = pkt.encode();
        let mut junk = vec![0u8; 1 + rng.below(64) as usize];
        rng.fill_bytes(&mut junk);
        frame.extend_from_slice(&junk);
        let parsed = Packet::parse(&Bytes::from(frame))
            .expect("trailing bytes beyond the IP datagram are not the packet's problem");
        assert_eq!(parsed, pkt, "trailing junk changed the parsed packet");
    }
}

/// Field splices: a random region of one valid frame transplanted over
/// a random region of another. Byte patterns are locally well-formed,
/// so this is the strongest mis-parse bait the harness has.
#[test]
fn splices_never_misparse() {
    let mut rng = SimRng::seed(0x5911_CE55);
    let mut tally = Tally::default();
    for _ in 0..4_000 {
        let pkt = rand_packet(&mut rng);
        let donor = rand_packet(&mut rng).encode();
        let mut frame = pkt.encode();
        let dst = rng.below(frame.len() as u64) as usize;
        let src = rng.below(donor.len() as u64) as usize;
        let len = (1 + rng.below(48) as usize)
            .min(frame.len() - dst)
            .min(donor.len() - src);
        frame[dst..dst + len].copy_from_slice(&donor[src..src + len]);
        tally.observe(&pkt, &Bytes::from(frame), true);
    }
    assert!(tally.rejected_icrc > 0, "no splice reached the ICRC stage");
    assert!(
        tally.ok_identical + tally.ok_unprotected > 0,
        "no splice survived (identical donors / unprotected regions)"
    );
}

/// Zero-fill runs (a failing SerDes reads idle symbols) and pure
/// garbage frames: never panic, never silently mis-parse.
#[test]
fn zero_fill_and_garbage_never_panic() {
    let mut rng = SimRng::seed(0x0BAD_F00D);
    let mut tally = Tally::default();
    for _ in 0..2_000 {
        let pkt = rand_packet(&mut rng);
        let mut frame = pkt.encode();
        let at = rng.below(frame.len() as u64) as usize;
        let len = (1 + rng.below(32) as usize).min(frame.len() - at);
        frame[at..at + len].fill(0);
        tally.observe(&pkt, &Bytes::from(frame), true);
    }
    for _ in 0..2_000 {
        let mut junk = vec![0u8; rng.below(2048) as usize];
        rng.fill_bytes(&mut junk);
        // Garbage has no originating template; only the no-panic and
        // canonical-reparse halves of the contract apply.
        if let Ok(parsed) = Packet::parse(&Bytes::from(junk)) {
            let reparse = Packet::parse(&Bytes::from(parsed.encode()))
                .expect("accepted garbage must re-parse canonically");
            assert_eq!(reparse, parsed);
        }
    }
    assert!(tally.rejected_icrc > 0, "no zero-fill hit the ICRC stage");
}

/// The corpus is seed-stable: the same seeds produce the same tallies,
/// so a CI failure is reproducible locally by construction.
#[test]
fn corpus_is_deterministic() {
    let run = || {
        let mut rng = SimRng::seed(0xD373_2206);
        let mut tally = Tally::default();
        for _ in 0..500 {
            let pkt = rand_packet(&mut rng);
            let mut frame = pkt.encode();
            let i = rng.below(frame.len() as u64) as usize;
            frame[i] ^= 1 << rng.below(8);
            tally.observe(&pkt, &Bytes::from(frame), !unprotected(i));
        }
        (
            tally.ok_identical,
            tally.ok_unprotected,
            tally.rejected_icrc,
            tally.rejected_other,
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce the same tallies");
}
