//! Randomized tests of the wire codecs, driven by the deterministic
//! [`SimRng`] (fixed seeds, so every run explores the same cases).

use bytes::Bytes;
use strom_sim::SimRng;

use strom_wire::bth::{Aeth, AethSyndrome, Bth, Reth};
use strom_wire::icrc;
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;
use strom_wire::segment::{segment_message, SegmentKind};
use strom_wire::{ipv4, max_payload};

fn rand_packet(rng: &mut SimRng) -> Packet {
    let op = Opcode::ALL[rng.below(Opcode::ALL.len() as u64) as usize];
    let qpn = rng.below(1 << 24) as u32;
    let psn = rng.below(1 << 24) as u32;
    let payload = if op.has_payload() {
        let mut buf = vec![0u8; rng.below(256) as usize];
        rng.fill_bytes(&mut buf);
        Bytes::from(buf)
    } else {
        Bytes::new()
    };
    let reth = op.has_reth().then(|| Reth {
        vaddr: rng.next_u64(),
        rkey: rng.next_u64() as u32,
        dma_len: rng.below(4097) as u32,
    });
    let aeth = op.has_aeth().then_some(Aeth {
        syndrome: AethSyndrome::Ack,
        msn: psn & 0xff_ffff,
    });
    Packet::new(1, 2, op, qpn, psn, reth, aeth, payload)
}

/// Encoding then parsing any packet is the identity.
#[test]
fn packet_round_trip() {
    let mut rng = SimRng::seed(0x77_17);
    for _ in 0..300 {
        let pkt = rand_packet(&mut rng);
        let parsed = Packet::parse(&Bytes::from(pkt.encode())).expect("own encoding parses");
        assert_eq!(parsed, pkt);
    }
}

/// Any single-bit flip anywhere in the frame is rejected somewhere in
/// the pipeline (ICRC, IP checksum, or a header check) — or, if it
/// lands in the Ethernet MACs (unprotected in our byte encoding, FCS
/// is accounted in timing only), parsing still never panics.
#[test]
fn bit_flips_never_panic_and_rarely_pass() {
    let mut rng = SimRng::seed(0xf11b);
    for _ in 0..1000 {
        let pkt = rand_packet(&mut rng);
        let mut frame = pkt.encode();
        let i = rng.below(frame.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        frame[i] ^= 1 << bit;
        // Genuinely unprotected bytes (as in real RoCE v2): the Ethernet
        // MACs (their FCS is modeled in timing only), the UDP source port
        // (a *variable* field the ICRC masks out), and the UDP checksum
        // (zero by RoCE convention, not validated).
        let unprotected = i < 12 || (34..36).contains(&i) || (40..42).contains(&i);
        if Packet::parse(&Bytes::from(frame)).is_ok() {
            assert!(unprotected, "flip at byte {i} passed");
        }
    }
}

/// Truncated frames never panic and never parse.
#[test]
fn truncation_is_rejected() {
    let mut rng = SimRng::seed(0x7277);
    for _ in 0..300 {
        let pkt = rand_packet(&mut rng);
        let frame = Bytes::from(pkt.encode());
        let keep = rng.below(frame.len() as u64) as usize;
        assert!(Packet::parse(&frame.slice(..keep)).is_err());
    }
}

/// The slice-by-16 ICRC equals the byte-at-a-time reference on random
/// lengths, contents, and alignments — including empty, 1-byte, and
/// larger-than-MTU inputs, and unaligned starting offsets (the sliced loop
/// reads multi-byte chunks, so every offset modulo the block must agree).
#[test]
fn icrc_slice16_matches_reference() {
    let mut rng = SimRng::seed(0xc32c);
    let mut buf = vec![0u8; 16384];
    rng.fill_bytes(&mut buf);
    for len in [0usize, 1, 7, 8, 9, 4096, 9001, 16384] {
        assert_eq!(
            icrc::icrc(&buf[..len]),
            icrc::icrc_reference(&buf[..len]),
            "fixed len = {len}"
        );
    }
    for _ in 0..500 {
        let start = rng.below(64) as usize;
        let len = rng.below((buf.len() - start) as u64 + 1) as usize;
        let data = &buf[start..start + len];
        assert_eq!(
            icrc::icrc(data),
            icrc::icrc_reference(data),
            "start = {start}, len = {len}"
        );
    }
}

/// Segmentation tiles the message exactly, respects the budget, and
/// classifies First/Middle/Last/Only correctly.
#[test]
fn segmentation_invariants() {
    let mut rng = SimRng::seed(0x5e6);
    for _ in 0..300 {
        let total = rng.below(100_000) as usize;
        let budget = rng.range(1, 4096) as usize;
        let segs = segment_message(total, budget);
        // Tiling.
        let mut offset = 0;
        for s in &segs {
            assert_eq!(s.offset, offset);
            assert!(s.len <= budget);
            offset += s.len;
        }
        assert_eq!(offset, total);
        // Classification.
        if segs.len() == 1 {
            assert_eq!(segs[0].kind, SegmentKind::Only);
        } else {
            assert_eq!(segs[0].kind, SegmentKind::First);
            assert_eq!(segs[segs.len() - 1].kind, SegmentKind::Last);
            for s in &segs[1..segs.len() - 1] {
                assert_eq!(s.kind, SegmentKind::Middle);
            }
        }
        // Reassembly is the identity on data.
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let mut rebuilt = Vec::new();
        for s in &segs {
            rebuilt.extend_from_slice(&data[s.offset..s.offset + s.len]);
        }
        assert_eq!(rebuilt, data);
    }
}

/// The internet checksum of a header with its checksum field filled
/// in is always zero, and flipping any byte breaks it.
#[test]
fn ipv4_checksum_detects_corruption() {
    let mut rng = SimRng::seed(0x1b4);
    for _ in 0..300 {
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        rng.fill_bytes(&mut src);
        rng.fill_bytes(&mut dst);
        let len = rng.below(1400) as usize;
        let ident = rng.next_u64() as u16;
        let h = ipv4::Ipv4Header::for_udp(ipv4::Ipv4Addr(src), ipv4::Ipv4Addr(dst), len, ident);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(ipv4::checksum(&buf), 0);
        let i = rng.below(buf.len() as u64) as usize;
        buf[i] ^= 0xff;
        assert_ne!(ipv4::checksum(&buf), 0, "flip at {i} undetected");
    }
}

/// BTH wire round trip for arbitrary field values.
#[test]
fn bth_round_trip() {
    let mut rng = SimRng::seed(0xb7);
    for _ in 0..300 {
        let op = Opcode::ALL[rng.below(Opcode::ALL.len() as u64) as usize];
        let bth = Bth::new(
            op,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.chance(0.5),
        );
        let mut buf = Vec::new();
        bth.encode(&mut buf);
        let (parsed, rest) = Bth::parse(&buf).expect("parses");
        assert_eq!(parsed, bth);
        assert!(rest.is_empty());
    }
}

/// Payload budgets shrink monotonically with header additions and the
/// max_payload fits the MTU.
#[test]
fn payload_budget_fits_mtu() {
    let mut rng = SimRng::seed(0x307);
    for _ in 0..300 {
        let mtu = rng.range(100, 9000) as usize;
        let p = max_payload(mtu);
        assert!(p < mtu);
        // A full packet at this budget encodes within MTU + Ethernet.
        if p > 0 {
            let pkt = Packet::new(
                1,
                2,
                Opcode::WriteOnly,
                1,
                0,
                Some(Reth {
                    vaddr: 0,
                    rkey: 0,
                    dma_len: p as u32,
                }),
                None,
                Bytes::from(vec![0u8; p]),
            );
            assert!(pkt.ip_len() <= mtu);
        }
    }
}
