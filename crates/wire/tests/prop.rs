//! Property-based tests of the wire codecs.

use bytes::Bytes;
use proptest::prelude::*;

use strom_wire::bth::{Aeth, AethSyndrome, Bth, Reth};
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;
use strom_wire::segment::{segment_message, SegmentKind};
use strom_wire::{ipv4, max_payload};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_opcode(),
        0u32..=0xff_ffff,
        0u32..=0xff_ffff,
        any::<u64>(),
        any::<u32>(),
        0u32..=4096,
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(op, qpn, psn, vaddr, rkey, dma_len, payload)| {
            let payload = if op.has_payload() {
                Bytes::from(payload)
            } else {
                Bytes::new()
            };
            let reth = op.has_reth().then_some(Reth {
                vaddr,
                rkey,
                dma_len,
            });
            let aeth = op.has_aeth().then_some(Aeth {
                syndrome: AethSyndrome::Ack,
                msn: psn & 0xff_ffff,
            });
            Packet::new(1, 2, op, qpn, psn, reth, aeth, payload)
        })
}

proptest! {
    /// Encoding then parsing any packet is the identity.
    #[test]
    fn packet_round_trip(pkt in arb_packet()) {
        let parsed = Packet::parse(&pkt.encode()).expect("own encoding parses");
        prop_assert_eq!(parsed, pkt);
    }

    /// Any single-bit flip anywhere in the frame is rejected somewhere in
    /// the pipeline (ICRC, IP checksum, or a header check) — or, if it
    /// lands in the Ethernet MACs (unprotected in our byte encoding, FCS
    /// is accounted in timing only), parsing still never panics.
    #[test]
    fn bit_flips_never_panic_and_rarely_pass(
        pkt in arb_packet(),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut frame = pkt.encode();
        let i = byte_idx.index(frame.len());
        frame[i] ^= 1 << bit;
        // Genuinely unprotected bytes (as in real RoCE v2): the Ethernet
        // MACs (their FCS is modeled in timing only), the UDP source port
        // (a *variable* field the ICRC masks out), and the UDP checksum
        // (zero by RoCE convention, not validated).
        let unprotected =
            i < 12 || (34..36).contains(&i) || (40..42).contains(&i);
        if Packet::parse(&frame).is_ok() {
            prop_assert!(unprotected, "flip at byte {i} passed");
        }
    }

    /// Truncated frames never panic and never parse.
    #[test]
    fn truncation_is_rejected(pkt in arb_packet(), cut in any::<prop::sample::Index>()) {
        let frame = pkt.encode();
        let keep = cut.index(frame.len());
        prop_assert!(Packet::parse(&frame[..keep]).is_err());
    }

    /// Segmentation tiles the message exactly, respects the budget, and
    /// classifies First/Middle/Last/Only correctly.
    #[test]
    fn segmentation_invariants(total in 0usize..100_000, budget in 1usize..4096) {
        let segs = segment_message(total, budget);
        // Tiling.
        let mut offset = 0;
        for s in &segs {
            prop_assert_eq!(s.offset, offset);
            prop_assert!(s.len <= budget);
            offset += s.len;
        }
        prop_assert_eq!(offset, total);
        // Classification.
        if segs.len() == 1 {
            prop_assert_eq!(segs[0].kind, SegmentKind::Only);
        } else {
            prop_assert_eq!(segs[0].kind, SegmentKind::First);
            prop_assert_eq!(segs[segs.len() - 1].kind, SegmentKind::Last);
            for s in &segs[1..segs.len() - 1] {
                prop_assert_eq!(s.kind, SegmentKind::Middle);
            }
        }
        // Reassembly is the identity on data.
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let mut rebuilt = Vec::new();
        for s in &segs {
            rebuilt.extend_from_slice(&data[s.offset..s.offset + s.len]);
        }
        prop_assert_eq!(rebuilt, data);
    }

    /// The internet checksum of a header with its checksum field filled
    /// in is always zero, and flipping any byte breaks it.
    #[test]
    fn ipv4_checksum_detects_corruption(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        len in 0usize..1400,
        ident in any::<u16>(),
        flip in any::<prop::sample::Index>(),
    ) {
        let h = ipv4::Ipv4Header::for_udp(ipv4::Ipv4Addr(src), ipv4::Ipv4Addr(dst), len, ident);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        prop_assert_eq!(ipv4::checksum(&buf), 0);
        let i = flip.index(buf.len());
        buf[i] ^= 0xff;
        prop_assert_ne!(ipv4::checksum(&buf), 0, "flip at {} undetected", i);
    }

    /// BTH wire round trip for arbitrary field values.
    #[test]
    fn bth_round_trip(op in arb_opcode(), qpn in any::<u32>(), psn in any::<u32>(), ack in any::<bool>()) {
        let bth = Bth::new(op, qpn, psn, ack);
        let mut buf = Vec::new();
        bth.encode(&mut buf);
        let (parsed, rest) = Bth::parse(&buf).expect("parses");
        prop_assert_eq!(parsed, bth);
        prop_assert!(rest.is_empty());
    }

    /// Payload budgets shrink monotonically with header additions and the
    /// max_payload fits the MTU.
    #[test]
    fn payload_budget_fits_mtu(mtu in 100usize..9000) {
        let p = max_payload(mtu);
        prop_assert!(p < mtu);
        // A full packet at this budget encodes within MTU + Ethernet.
        if p > 0 {
            let pkt = Packet::new(
                1, 2, Opcode::WriteOnly, 1, 0,
                Some(Reth { vaddr: 0, rkey: 0, dma_len: p as u32 }),
                None,
                Bytes::from(vec![0u8; p]),
            );
            prop_assert!(pkt.ip_len() <= mtu);
        }
    }
}
