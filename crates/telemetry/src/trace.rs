//! The structured trace subsystem: typed events in a bounded ring.
//!
//! Instrumentation sites hold a [`TraceSink`] and call
//! [`TraceSink::emit`]; a disabled sink (the default) reduces that call
//! to one branch on an `Option`, so tracing can stay compiled into the
//! datapath. An enabled sink stamps each event with the simulated time
//! most recently published by the event queue ([`TraceSink::set_now`])
//! and appends it to a fixed-capacity ring that drops its oldest record
//! when full — a run can trace forever in bounded memory.
//!
//! Every emitted event, retained or overwritten, is folded into a
//! running FNV-1a [`TraceSink::fingerprint`], so two runs can be compared
//! for bit-identical event streams without retaining either.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Time;

/// Why a frame was dropped on the receive path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The injected link fault model dropped the frame outright.
    Loss,
    /// A checksum (ICRC or IPv4 header) caught in-flight corruption.
    Corruption,
    /// The frame failed structural parsing.
    Malformed,
    /// The switch's bounded egress queue was full (tail-drop); `node` in
    /// the event is the destination whose port overflowed.
    TailDrop,
}

/// Coarse queue-pair state for transition events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Operational.
    Ready,
    /// Terminal error (retry budget exhausted).
    Error,
}

/// One typed datapath event.
///
/// Fields are plain integers (no wire-crate types) so every layer of the
/// stack can emit without new dependencies; `node` is the observing NIC
/// where the emitting layer knows it, and `u8::MAX` where it does not
/// (the protocol and memory crates are per-node by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet entered the transmit path.
    PacketTx {
        /// Sending node.
        node: u8,
        /// Raw BTH op-code.
        opcode: u8,
        /// Destination queue pair.
        qpn: u32,
        /// Packet sequence number.
        psn: u32,
        /// Bytes the frame occupies on the wire.
        wire_bytes: u32,
    },
    /// A packet parsed successfully on the receive path.
    PacketRx {
        /// Receiving node.
        node: u8,
        /// Raw BTH op-code.
        opcode: u8,
        /// Destination queue pair.
        qpn: u32,
        /// Packet sequence number.
        psn: u32,
        /// RoCE payload length.
        payload_len: u32,
    },
    /// A frame was dropped before dispatch.
    PacketDrop {
        /// The node that failed to receive it.
        node: u8,
        /// Why.
        reason: DropReason,
    },
    /// A queue pair changed state.
    QpTransition {
        /// The queue pair.
        qpn: u32,
        /// State before.
        from: QpState,
        /// State after.
        to: QpState,
    },
    /// The requester re-sent outstanding packets (NAK or timeout).
    Retransmit {
        /// The queue pair.
        qpn: u32,
        /// Packets re-queued for transmission.
        packets: u32,
    },
    /// A retransmission-timer expiration re-armed with a backed-off
    /// timeout.
    Backoff {
        /// The queue pair.
        qpn: u32,
        /// Consecutive expirations without forward progress.
        attempts: u32,
        /// The backed-off timeout now in force.
        timeout: Time,
    },
    /// The DMA engine fetched bytes from host memory.
    DmaRead {
        /// The node whose memory was read.
        node: u8,
        /// Virtual start address.
        vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// The DMA engine scheduled a store to host memory.
    DmaWrite {
        /// The node whose memory is written.
        node: u8,
        /// Virtual start address.
        vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// The TLB translated a command, splitting at page boundaries.
    TlbLookup {
        /// Virtual start address.
        vaddr: u64,
        /// Command length in bytes.
        len: u32,
        /// Physical segments produced.
        segments: u32,
    },
    /// A kernel invocation entered the fabric.
    KernelEnter {
        /// The invoking node.
        node: u8,
        /// RPC op-code.
        op: u64,
    },
    /// A kernel signalled completion.
    KernelExit {
        /// The node it ran on.
        node: u8,
        /// RPC op-code.
        op: u64,
    },
}

/// A trace event plus its emission order and simulated timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in the emission stream (0-based, never reused).
    pub seq: u64,
    /// Simulated time at emission, in picoseconds.
    pub at: Time,
    /// The event.
    pub event: TraceEvent,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl TraceEvent {
    /// Folds the event into an FNV-1a accumulator via a stable manual
    /// encoding (a tag word plus each field widened to `u64`), so
    /// fingerprints are comparable across runs and platforms.
    fn fold(&self, h: u64) -> u64 {
        match *self {
            TraceEvent::PacketTx {
                node,
                opcode,
                qpn,
                psn,
                wire_bytes,
            } => [
                1,
                u64::from(node),
                u64::from(opcode),
                u64::from(qpn),
                u64::from(psn),
                u64::from(wire_bytes),
            ]
            .iter()
            .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::PacketRx {
                node,
                opcode,
                qpn,
                psn,
                payload_len,
            } => [
                2,
                u64::from(node),
                u64::from(opcode),
                u64::from(qpn),
                u64::from(psn),
                u64::from(payload_len),
            ]
            .iter()
            .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::PacketDrop { node, reason } => [3, u64::from(node), reason as u64]
                .iter()
                .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::QpTransition { qpn, from, to } => {
                [4, u64::from(qpn), from as u64, to as u64]
                    .iter()
                    .fold(h, |h, &v| fnv(h, v))
            }
            TraceEvent::Retransmit { qpn, packets } => [5, u64::from(qpn), u64::from(packets)]
                .iter()
                .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::Backoff {
                qpn,
                attempts,
                timeout,
            } => [6, u64::from(qpn), u64::from(attempts), timeout]
                .iter()
                .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::DmaRead { node, vaddr, len } => [7, u64::from(node), vaddr, u64::from(len)]
                .iter()
                .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::DmaWrite { node, vaddr, len } => {
                [8, u64::from(node), vaddr, u64::from(len)]
                    .iter()
                    .fold(h, |h, &v| fnv(h, v))
            }
            TraceEvent::TlbLookup {
                vaddr,
                len,
                segments,
            } => [9, vaddr, u64::from(len), u64::from(segments)]
                .iter()
                .fold(h, |h, &v| fnv(h, v)),
            TraceEvent::KernelEnter { node, op } => {
                [10, u64::from(node), op].iter().fold(h, |h, &v| fnv(h, v))
            }
            TraceEvent::KernelExit { node, op } => {
                [11, u64::from(node), op].iter().fold(h, |h, &v| fnv(h, v))
            }
        }
    }
}

/// The mutable core of an enabled sink.
#[derive(Debug)]
struct SinkState {
    ring: Vec<TraceRecord>,
    capacity: usize,
    /// Index in `ring` the next record overwrites once full.
    head: usize,
    emitted: u64,
    fingerprint: u64,
}

impl SinkState {
    fn push(&mut self, at: Time, event: TraceEvent) {
        let rec = TraceRecord {
            seq: self.emitted,
            at,
            event,
        };
        self.emitted += 1;
        self.fingerprint = event.fold(fnv(fnv(self.fingerprint, rec.seq), rec.at));
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained records in emission order (oldest first).
    fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }
}

#[derive(Debug)]
struct Inner {
    /// Simulated "now" published by the event queue; emissions read it so
    /// lower layers never need to know the time themselves.
    now: AtomicU64,
    state: Mutex<SinkState>,
}

/// A cloneable handle to a trace ring, or to nothing.
///
/// The default sink is disabled: [`TraceSink::emit`] and
/// [`TraceSink::set_now`] cost one branch each, which `wire_micro`
/// measures and `BENCH_wire.json` records. Clones of an enabled sink
/// share the same ring, which is how one testbed-wide trace collects
/// events from the event queue, both protocol engines, and both TLBs.
///
/// # Examples
///
/// ```
/// use strom_telemetry::{TraceEvent, TraceSink};
/// let sink = TraceSink::enabled(8);
/// sink.set_now(1_000);
/// sink.emit(TraceEvent::Retransmit { qpn: 1, packets: 3 });
/// let records = sink.records();
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].at, 1_000);
/// assert!(TraceSink::default().records().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<Inner>>);

impl TraceSink {
    /// A sink that records into a ring of `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceSink(Some(Arc::new(Inner {
            now: AtomicU64::new(0),
            state: Mutex::new(SinkState {
                ring: Vec::new(),
                capacity,
                head: 0,
                emitted: 0,
                fingerprint: FNV_OFFSET,
            }),
        })))
    }

    /// Whether emissions are recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Publishes the current simulated time (the event queue's clock
    /// hook); subsequent emissions are stamped with it.
    #[inline]
    pub fn set_now(&self, t: Time) {
        if let Some(inner) = &self.0 {
            inner.now.store(t, Ordering::Relaxed);
        }
    }

    /// The most recently published simulated time.
    pub fn now(&self) -> Time {
        self.0
            .as_ref()
            .map(|i| i.now.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records an event (a no-op costing one branch when disabled).
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(inner) = &self.0 {
            let at = inner.now.load(Ordering::Relaxed);
            inner.state.lock().expect("trace lock").push(at, event);
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.0 {
            Some(inner) => inner.state.lock().expect("trace lock").records(),
            None => Vec::new(),
        }
    }

    /// Total events emitted, including any the ring has overwritten.
    pub fn emitted(&self) -> u64 {
        self.0
            .as_ref()
            .map(|i| i.state.lock().expect("trace lock").emitted)
            .unwrap_or(0)
    }

    /// Events the bounded ring overwrote (emitted − retained).
    pub fn overwritten(&self) -> u64 {
        match &self.0 {
            Some(inner) => {
                let s = inner.state.lock().expect("trace lock");
                s.emitted - s.ring.len() as u64
            }
            None => 0,
        }
    }

    /// FNV-1a fingerprint of the full emission stream (sequence numbers,
    /// timestamps, and every event field). Two same-seed runs must agree.
    pub fn fingerprint(&self) -> u64 {
        self.0
            .as_ref()
            .map(|i| i.state.lock().expect("trace lock").fingerprint)
            .unwrap_or(FNV_OFFSET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> TraceEvent {
        TraceEvent::Retransmit { qpn: n, packets: 1 }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::default();
        sink.set_now(5);
        sink.emit(ev(1));
        assert!(!sink.is_enabled());
        assert_eq!(sink.emitted(), 0);
        assert!(sink.records().is_empty());
    }

    #[test]
    fn events_are_stamped_with_published_time() {
        let sink = TraceSink::enabled(4);
        sink.set_now(100);
        sink.emit(ev(1));
        sink.set_now(250);
        sink.emit(ev(2));
        let r = sink.records();
        assert_eq!((r[0].at, r[1].at), (100, 250));
        assert_eq!((r[0].seq, r[1].seq), (0, 1));
    }

    #[test]
    fn ring_drops_oldest_and_counts_overwrites() {
        let sink = TraceSink::enabled(3);
        for i in 0..5 {
            sink.emit(ev(i));
        }
        let r = sink.records();
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.iter().map(|x| x.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest records dropped first"
        );
        assert_eq!(sink.emitted(), 5);
        assert_eq!(sink.overwritten(), 2);
    }

    #[test]
    fn clones_share_the_ring() {
        let sink = TraceSink::enabled(8);
        let clone = sink.clone();
        clone.emit(ev(7));
        assert_eq!(sink.emitted(), 1);
    }

    #[test]
    fn fingerprint_covers_overwritten_events() {
        let a = TraceSink::enabled(2);
        let b = TraceSink::enabled(2);
        for i in 0..10 {
            a.emit(ev(i));
            b.emit(ev(i));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = TraceSink::enabled(2);
        for i in 0..10 {
            c.emit(ev(i + 1));
        }
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_timestamps() {
        let a = TraceSink::enabled(4);
        a.set_now(1);
        a.emit(ev(0));
        let b = TraceSink::enabled(4);
        b.set_now(2);
        b.emit(ev(0));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
