//! Named counters, gauges, and log-linear HDR-style histograms.
//!
//! The histogram buckets values by power-of-two octave subdivided into
//! [`SUB_BUCKETS`] linear sub-buckets, the classic HDR layout: ~6%
//! relative error, a few kilobytes of memory, O(1) recording, and
//! quantiles computed from bucket counts alone — no samples are stored,
//! so a million-operation soak costs the same memory as ten operations.
//! Buckets are plain integers, so two deterministic runs produce
//! bit-identical bucket arrays (asserted by the chaos-soak determinism
//! tests) and histograms merge exactly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Log2 of the linear sub-buckets per octave.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two octave (relative error ≤ 1/16).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover the full `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// A shared monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared last-value-wins gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-linear histogram over `u64` values (latencies in picoseconds,
/// sizes in bytes, …).
///
/// # Examples
///
/// ```
/// use strom_telemetry::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.50).unwrap();
/// assert!((470..=530).contains(&p50), "p50 = {p50}");
/// assert_eq!(h.quantile(1.0), Some(h.max()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB_BUCKETS;
    (((shift + 1) << SUB_BITS) + sub as u32) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS as usize {
        return (index as u64, index as u64);
    }
    let shift = (index as u32 >> SUB_BITS) - 1;
    let sub = index as u64 & (SUB_BUCKETS - 1);
    let lo = (SUB_BUCKETS + sub) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the q-th ranked sample, clamped to the exact
    /// observed `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i).1.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Adds every recorded value of `other` into `self` (bucket-exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).0, c))
            .collect()
    }
}

/// Jain's fairness index over per-flow allocations: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly equal shares; `k/n` means `k` flows split the
/// resource while `n−k` starve. Returns 1.0 for an empty or all-zero
/// input (nothing is being shared unfairly).
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len() as f64;
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq_sum)
}

/// A shared handle to one registered histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.lock().expect("histogram lock").record(v);
    }

    /// A snapshot of the current state.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram lock").clone()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// A registry of named metrics shared by every component of one testbed.
///
/// Cloning the registry (or any handle it returns) shares state, so the
/// testbed hands out handles at construction time and the hot path never
/// touches the name maps again.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry(Arc<Mutex<RegistryInner>>);

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` for every histogram.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.0
            .lock()
            .expect("registry lock")
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0
            .lock()
            .expect("registry lock")
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.0
            .lock()
            .expect("registry lock")
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Copies out every metric, sorted by name (deterministic).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.0.lock().expect("registry lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_spans_equal_to_starved() {
        assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        // One of four flows hogging everything: index = 1/4.
        assert!((jain_index(&[12.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Degenerate inputs are "fair" by convention.
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        // Mild skew sits strictly between the extremes.
        let j = jain_index(&[4.0, 5.0, 6.0]);
        assert!(j > 0.9 && j < 1.0, "got {j}");
    }

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        // Every value maps to a bucket whose bounds contain it, and
        // bucket lower bounds are non-decreasing in index.
        let mut last_hi = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if i > 0 {
                assert_eq!(lo, last_hi.wrapping_add(1), "gap before bucket {i}");
            }
            last_hi = hi;
        }
        for v in [0u64, 1, 15, 16, 17, 255, 1 << 20, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 30, 987_654_321] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(
                (hi - lo) as f64 / v as f64 <= 1.0 / SUB_BUCKETS as f64,
                "bucket [{lo}, {hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).unwrap() as f64;
            assert!(
                (got - want).abs() / want <= 0.07,
                "q{q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            all.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 1);
            all.record(v * 13 + 1);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_handles_share_state() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("x");
        reg.counter("x").add(5);
        c.inc();
        assert_eq!(reg.counter("x").get(), 6);
        reg.histogram("h").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("x".to_string(), 6)]);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::default();
        reg.counter("zeta");
        reg.counter("alpha");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
