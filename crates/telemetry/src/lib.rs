//! Observability for the StRoM simulation stack.
//!
//! Every other crate in the workspace sits *below* the experiments and
//! above the raw byte level, so this crate deliberately depends on
//! nothing: it defines the vocabulary (trace events, counters,
//! histograms, the status-register counter block) and the rest of the
//! stack threads handles to it through the datapath.
//!
//! - [`TraceSink`] — a cloneable handle to a bounded ring of typed
//!   [`TraceEvent`]s stamped with simulated time. A disabled sink (the
//!   default) costs a single branch per emission site, so instrumentation
//!   stays in the hot path permanently.
//! - [`MetricsRegistry`] — named counters, gauges, and log-linear
//!   HDR-style [`Histogram`]s that answer p50/p90/p99/p999 without
//!   storing samples.
//! - [`WireCounters`] — the per-node datapath counter block shared
//!   between the NIC's receive/transmit path and the Controller's status
//!   registers, so a counter cannot silently drift out of `status()`.
//! - [`TelemetryReport`] — machine-readable JSON export of all of the
//!   above, written next to the text tables by the bench binaries.
//!
//! Determinism: nothing here draws randomness or reads wall-clock time.
//! Two same-seed simulation runs emit byte-identical trace streams and
//! bit-identical histogram buckets, which `tests/chaos_soak.rs` checks.

pub mod counters;
pub mod metrics;
pub mod report;
pub mod trace;

pub use counters::{PdesCounters, WireCounters};
pub use metrics::{
    jain_index, Counter, Gauge, Histogram, HistogramHandle, MetricsRegistry, MetricsSnapshot,
};
pub use report::{TelemetryReport, TraceStats};
pub use trace::{DropReason, QpState, TraceEvent, TraceRecord, TraceSink};

/// Simulated time in picoseconds — the same unit as `strom_sim::Time`,
/// re-declared here so the telemetry vocabulary depends on nothing.
pub type Time = u64;
