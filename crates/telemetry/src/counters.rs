//! The shared per-node datapath counter block.
//!
//! Before this crate existed the testbed kept eight ad-hoc `u64` fields
//! per node and hand-mirrored them into the Controller's status
//! registers, so adding a counter meant touching two structs and one
//! copy site — and forgetting any of the three silently dropped the
//! counter from `status()`. Both sides now hold the same
//! [`WireCounters`] block: the datapath increments it in place and the
//! status registers embed it verbatim.

/// Datapath counters one NIC maintains, exposed verbatim through the
/// Controller's status registers (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCounters {
    /// Commands accepted from the host.
    pub commands: u64,
    /// Frames received (pre-parse).
    pub frames_rx: u64,
    /// Frames that failed structural parsing (malformed headers).
    pub frames_parse_dropped: u64,
    /// Frames dropped because a checksum caught in-flight corruption
    /// (ICRC over BTH+payload, or the IPv4 header checksum).
    pub frames_crc_dropped: u64,
    /// Frames the injected link fault model dropped outright.
    pub frames_lost: u64,
    /// Frames delivered out of order by the fault model's jitter.
    pub frames_reordered: u64,
    /// Frames delivered twice by the fault model.
    pub frames_duplicated: u64,
    /// Payload bytes written to host memory by WRITEs.
    pub payload_bytes_rx: u64,
    /// Congestion notification packets transmitted (responder saw a
    /// CE-marked frame and echoed it to the sender).
    pub cnps_tx: u64,
    /// Congestion notification packets received (DCQCN rate cuts applied
    /// on this node's requester side).
    pub cnps_rx: u64,
}

impl WireCounters {
    /// Frames dropped before protocol dispatch for any reason.
    pub fn frames_dropped_total(&self) -> u64 {
        self.frames_parse_dropped + self.frames_crc_dropped + self.frames_lost
    }

    /// `(name, value)` pairs in a fixed order, for report export.
    pub fn entries(&self) -> [(&'static str, u64); 10] {
        [
            ("commands", self.commands),
            ("frames_rx", self.frames_rx),
            ("frames_parse_dropped", self.frames_parse_dropped),
            ("frames_crc_dropped", self.frames_crc_dropped),
            ("frames_lost", self.frames_lost),
            ("frames_reordered", self.frames_reordered),
            ("frames_duplicated", self.frames_duplicated),
            ("payload_bytes_rx", self.payload_bytes_rx),
            ("cnps_tx", self.cnps_tx),
            ("cnps_rx", self.cnps_rx),
        ]
    }
}

/// Per-partition counters for a PDES cluster run.
///
/// Each partition of the parallel engine accumulates its own block with
/// no sharing; at the end of a run the per-partition blocks are merged
/// into a cluster total with [`PdesCounters::merge`]. Merging is
/// commutative, so the total is identical for any worker count — the
/// counter analog of the dispatch-fingerprint XOR.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PdesCounters {
    /// Events this partition dispatched.
    pub dispatched: u64,
    /// Frames this partition received from the fabric.
    pub frames_in: u64,
    /// Frames this partition sent into the fabric.
    pub frames_out: u64,
    /// Request/response exchanges completed (requester side).
    pub responses: u64,
    /// Payload bytes carried by sent frames.
    pub bytes_tx: u64,
    /// Frames tail-dropped at a switch egress queue.
    pub drops: u64,
}

impl PdesCounters {
    /// Accumulates `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &PdesCounters) {
        self.dispatched += other.dispatched;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.responses += other.responses;
        self.bytes_tx += other.bytes_tx;
        self.drops += other.drops;
    }

    /// `(name, value)` pairs in a fixed order, for report export.
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("dispatched", self.dispatched),
            ("frames_in", self.frames_in),
            ("frames_out", self.frames_out),
            ("responses", self.responses),
            ("bytes_tx", self.bytes_tx),
            ("drops", self.drops),
        ]
    }

    /// FNV-1a over the counter block, for cross-engine equivalence
    /// checks.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = 0xcbf2_9ce4_8422_2325u64;
        for (_, v) in self.entries() {
            fp = (fp ^ v).wrapping_mul(0x100_0000_01b3);
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdes_counters_merge_is_fieldwise_and_commutative() {
        let a = PdesCounters {
            dispatched: 3,
            frames_in: 1,
            frames_out: 2,
            responses: 1,
            bytes_tx: 512,
            drops: 0,
        };
        let b = PdesCounters {
            dispatched: 5,
            drops: 2,
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.dispatched, 8);
        assert_eq!(ab.bytes_tx, 512);
        assert_eq!(ab.drops, 2);
        assert_ne!(ab.fingerprint(), PdesCounters::default().fingerprint());
    }

    #[test]
    fn totals_and_entries_agree_with_fields() {
        let c = WireCounters {
            frames_parse_dropped: 1,
            frames_crc_dropped: 2,
            frames_lost: 4,
            ..Default::default()
        };
        assert_eq!(c.frames_dropped_total(), 7);
        let entries = c.entries();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[3], ("frames_crc_dropped", 2));
        assert_eq!(entries[8], ("cnps_tx", 0));
    }
}
