//! Machine-readable JSON export of a run's telemetry.
//!
//! The container this workspace builds in has no crates.io access, so the
//! JSON is hand-rolled: integers, doubles, escaped strings, and objects
//! with keys in insertion order (callers insert sorted names, so output
//! is deterministic). The schema is versioned via the top-level
//! `"schema"` field and validated by the CI telemetry smoke step.

use crate::metrics::{Histogram, MetricsRegistry};
use crate::trace::TraceSink;

/// Summary of a trace sink's state for export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events emitted.
    pub emitted: u64,
    /// Events still retained in the ring.
    pub retained: u64,
    /// Events the bounded ring overwrote.
    pub overwritten: u64,
    /// FNV-1a fingerprint of the full emission stream.
    pub fingerprint: u64,
}

/// A run's exported telemetry: counters, gauges, histograms with
/// percentiles, and optional trace statistics.
///
/// # Examples
///
/// ```
/// use strom_telemetry::{MetricsRegistry, TelemetryReport};
/// let reg = MetricsRegistry::default();
/// reg.counter("ops").add(3);
/// reg.histogram("lat_ps").record(1500);
/// let json = TelemetryReport::new("example").with_registry(&reg).to_json();
/// assert!(json.contains("\"schema\": \"strom-telemetry-v1\""));
/// assert!(json.contains("\"ops\": 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    source: String,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
    trace: Option<TraceStats>,
}

/// Appends `s` as a JSON string literal.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_histogram(out: &mut String, h: &Histogram) {
    let q = |p: f64| h.quantile(p).unwrap_or(0);
    out.push_str(&format!(
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"sum\": {}, \"mean\": {:.3}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
        h.count(),
        h.min(),
        h.max(),
        h.sum(),
        h.mean(),
        q(0.50),
        q(0.90),
        q(0.99),
        q(0.999),
    ));
    for (i, (lo, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[{lo}, {count}]"));
    }
    out.push_str("]}");
}

impl TelemetryReport {
    /// An empty report labelled with its producing context.
    pub fn new(source: &str) -> Self {
        Self {
            source: source.to_string(),
            ..Default::default()
        }
    }

    /// Copies every metric out of `registry` (builder style).
    pub fn with_registry(mut self, registry: &MetricsRegistry) -> Self {
        let snap = registry.snapshot();
        self.counters.extend(snap.counters);
        self.gauges.extend(snap.gauges);
        self.histograms.extend(snap.histograms);
        self
    }

    /// Adds one named counter value.
    pub fn with_counter(mut self, name: &str, value: u64) -> Self {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Adds one named histogram.
    pub fn with_histogram(mut self, name: &str, h: Histogram) -> Self {
        self.histograms.push((name.to_string(), h));
        self
    }

    /// Records the trace sink's summary statistics.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(TraceStats {
            emitted: sink.emitted(),
            retained: sink.records().len() as u64,
            overwritten: sink.overwritten(),
            fingerprint: sink.fingerprint(),
        });
        self
    }

    /// Serializes the report as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"strom-telemetry-v1\",\n  \"source\": ");
        push_json_string(&mut out, &self.source);
        for (section, entries) in [("counters", &self.counters), ("gauges", &self.gauges)] {
            out.push_str(&format!(",\n  \"{section}\": {{"));
            for (i, (name, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                push_json_string(&mut out, name);
                out.push_str(&format!(": {value}"));
            }
            if !entries.is_empty() {
                out.push_str("\n  ");
            }
            out.push('}');
        }
        out.push_str(",\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_histogram(&mut out, h);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');
        if let Some(t) = &self.trace {
            out.push_str(&format!(
                ",\n  \"trace\": {{\"emitted\": {}, \"retained\": {}, \"overwritten\": {}, \
                 \"fingerprint\": \"{:#018x}\"}}",
                t.emitted, t.retained, t.overwritten, t.fingerprint
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceSink};

    #[test]
    fn json_contains_all_sections() {
        let reg = MetricsRegistry::default();
        reg.counter("sim.events").add(42);
        reg.gauge("depth").set(7);
        reg.histogram("lat").record(1000);
        let sink = TraceSink::enabled(4);
        sink.emit(TraceEvent::Retransmit { qpn: 1, packets: 2 });
        let json = TelemetryReport::new("unit \"test\"")
            .with_registry(&reg)
            .with_trace(&sink)
            .to_json();
        assert!(json.contains("\"schema\": \"strom-telemetry-v1\""));
        assert!(json.contains("\"source\": \"unit \\\"test\\\"\""));
        assert!(json.contains("\"sim.events\": 42"));
        assert!(json.contains("\"depth\": 7"));
        assert!(json.contains("\"p999\": "));
        assert!(json.contains("\"emitted\": 1"));
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let json = TelemetryReport::new("empty").to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(!json.contains("\"trace\""));
    }

    #[test]
    fn string_escaping_covers_control_characters() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
