//! Randomized tests of the memory substrate: TLB command splitting and
//! the virtual/physical consistency of host memory. Driven by the
//! deterministic [`SimRng`] with fixed seeds.

use strom_mem::{HostMemory, Tlb, HUGE_PAGE_SIZE};
use strom_sim::SimRng;

fn pinned(pages: u64) -> (HostMemory, Tlb, u64) {
    let mut mem = HostMemory::new();
    let (base, phys) = mem.pin(pages * HUGE_PAGE_SIZE).unwrap();
    let mut tlb = Tlb::new();
    tlb.insert_region(base, &phys).unwrap();
    (mem, tlb, base)
}

/// TLB command splitting covers exactly the requested range, in order,
/// with no segment crossing a 2 MB physical boundary, and each segment's
/// physical address matches the per-address translation.
#[test]
fn tlb_split_invariants() {
    let mut rng = SimRng::seed(0x71b);
    for _ in 0..200 {
        let offset = rng.below(4 * HUGE_PAGE_SIZE);
        let len = rng.below(6_000_000) as u32;
        let (_, tlb, base) = pinned(8);
        let vaddr = base + offset;
        let segs = tlb.translate_command(vaddr, len).expect("in range");
        let total: u64 = segs.iter().map(|s| u64::from(s.len)).sum();
        assert_eq!(total, u64::from(len));
        let mut cursor = vaddr;
        for s in &segs {
            assert!(s.len > 0);
            assert_eq!(s.paddr, tlb.translate(cursor).unwrap());
            assert!(
                s.paddr % HUGE_PAGE_SIZE + u64::from(s.len) <= HUGE_PAGE_SIZE,
                "segment crosses a physical page"
            );
            cursor += u64::from(s.len);
        }
    }
}

/// Whatever the CPU writes virtually, the DMA engine reads physically
/// through the TLB — byte for byte, across page boundaries.
#[test]
fn cpu_writes_visible_to_dma() {
    let mut rng = SimRng::seed(0xd3a);
    for _ in 0..100 {
        let offset = rng.below(2 * HUGE_PAGE_SIZE);
        let mut data = vec![0u8; rng.range(1, 5000) as usize];
        rng.fill_bytes(&mut data);
        let (mut mem, tlb, base) = pinned(4);
        let vaddr = base + offset;
        mem.write(vaddr, &data);
        // DMA view: translate + physical reads.
        let segs = tlb.translate_command(vaddr, data.len() as u32).unwrap();
        let mut dma = Vec::new();
        for s in segs {
            let mut buf = vec![0u8; s.len as usize];
            mem.phys_read(s.paddr, &mut buf);
            dma.extend_from_slice(&buf);
        }
        assert_eq!(dma, data);
    }
}

/// And the converse: DMA writes are visible to the CPU.
#[test]
fn dma_writes_visible_to_cpu() {
    let mut rng = SimRng::seed(0xdc9);
    for _ in 0..100 {
        let offset = rng.below(2 * HUGE_PAGE_SIZE);
        let mut data = vec![0u8; rng.range(1, 5000) as usize];
        rng.fill_bytes(&mut data);
        let (mut mem, tlb, base) = pinned(4);
        let vaddr = base + offset;
        let segs = tlb.translate_command(vaddr, data.len() as u32).unwrap();
        let mut off = 0usize;
        for s in segs {
            mem.phys_write(s.paddr, &data[off..off + s.len as usize]);
            off += s.len as usize;
        }
        assert_eq!(mem.read(vaddr, data.len()), data);
    }
}

/// Distinct pinned regions never alias: writes to one never appear in
/// another.
#[test]
fn regions_do_not_alias() {
    let mut rng = SimRng::seed(0xa11a5);
    for _ in 0..50 {
        let len_a = rng.range(1, 2 * HUGE_PAGE_SIZE);
        let len_b = rng.range(1, 2 * HUGE_PAGE_SIZE);
        let byte = rng.next_u64() as u8;
        let mut mem = HostMemory::new();
        let (a, _) = mem.pin(len_a).unwrap();
        let (b, _) = mem.pin(len_b).unwrap();
        mem.write(a, &vec![byte; len_a as usize]);
        // Region B still reads zero.
        assert!(mem.read(b, len_b as usize).iter().all(|&x| x == 0));
        mem.write(b, &vec![byte.wrapping_add(1); len_b as usize]);
        assert!(mem.read(a, len_a as usize).iter().all(|&x| x == byte));
    }
}

/// Overlapping writes leave the last value (write-after-write order).
#[test]
fn write_after_write() {
    let mut rng = SimRng::seed(0x3a3);
    for _ in 0..200 {
        let off1 = rng.below(1000);
        let off2 = rng.below(1000);
        let len = rng.range(1, 1000) as usize;
        let (mut mem, _, base) = pinned(1);
        mem.write(base + off1, &vec![0x11; len]);
        mem.write(base + off2, &vec![0x22; len]);
        let readback = mem.read(base + off2, len);
        assert!(readback.iter().all(|&b| b == 0x22));
    }
}
