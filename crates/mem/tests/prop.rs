//! Property-based tests of the memory substrate: TLB command splitting
//! and the virtual/physical consistency of host memory.

use proptest::prelude::*;

use strom_mem::{HostMemory, Tlb, HUGE_PAGE_SIZE};

fn pinned(pages: u64) -> (HostMemory, Tlb, u64) {
    let mut mem = HostMemory::new();
    let (base, phys) = mem.pin(pages * HUGE_PAGE_SIZE).unwrap();
    let mut tlb = Tlb::new();
    tlb.insert_region(base, &phys).unwrap();
    (mem, tlb, base)
}

proptest! {
    /// TLB command splitting covers exactly the requested range, in
    /// order, with no segment crossing a 2 MB physical boundary, and each
    /// segment's physical address matches the per-address translation.
    #[test]
    fn tlb_split_invariants(
        offset in 0u64..(4 * HUGE_PAGE_SIZE),
        len in 0u32..6_000_000,
    ) {
        let (_, tlb, base) = pinned(8);
        let vaddr = base + offset;
        let segs = tlb.translate_command(vaddr, len).expect("in range");
        let total: u64 = segs.iter().map(|s| u64::from(s.len)).sum();
        prop_assert_eq!(total, u64::from(len));
        let mut cursor = vaddr;
        for s in &segs {
            prop_assert!(s.len > 0);
            prop_assert_eq!(s.paddr, tlb.translate(cursor).unwrap());
            prop_assert!(
                s.paddr % HUGE_PAGE_SIZE + u64::from(s.len) <= HUGE_PAGE_SIZE,
                "segment crosses a physical page"
            );
            cursor += u64::from(s.len);
        }
    }

    /// Whatever the CPU writes virtually, the DMA engine reads physically
    /// through the TLB — byte for byte, across page boundaries.
    #[test]
    fn cpu_writes_visible_to_dma(
        offset in 0u64..(2 * HUGE_PAGE_SIZE),
        data in prop::collection::vec(any::<u8>(), 1..5000),
    ) {
        let (mut mem, tlb, base) = pinned(4);
        let vaddr = base + offset;
        mem.write(vaddr, &data);
        // DMA view: translate + physical reads.
        let segs = tlb.translate_command(vaddr, data.len() as u32).unwrap();
        let mut dma = Vec::new();
        for s in segs {
            let mut buf = vec![0u8; s.len as usize];
            mem.phys_read(s.paddr, &mut buf);
            dma.extend_from_slice(&buf);
        }
        prop_assert_eq!(dma, data);
    }

    /// And the converse: DMA writes are visible to the CPU.
    #[test]
    fn dma_writes_visible_to_cpu(
        offset in 0u64..(2 * HUGE_PAGE_SIZE),
        data in prop::collection::vec(any::<u8>(), 1..5000),
    ) {
        let (mut mem, tlb, base) = pinned(4);
        let vaddr = base + offset;
        let segs = tlb.translate_command(vaddr, data.len() as u32).unwrap();
        let mut off = 0usize;
        for s in segs {
            mem.phys_write(s.paddr, &data[off..off + s.len as usize]);
            off += s.len as usize;
        }
        prop_assert_eq!(mem.read(vaddr, data.len()), data);
    }

    /// Distinct pinned regions never alias: writes to one never appear in
    /// another.
    #[test]
    fn regions_do_not_alias(
        len_a in 1u64..(2 * HUGE_PAGE_SIZE),
        len_b in 1u64..(2 * HUGE_PAGE_SIZE),
        byte in any::<u8>(),
    ) {
        let mut mem = HostMemory::new();
        let (a, _) = mem.pin(len_a).unwrap();
        let (b, _) = mem.pin(len_b).unwrap();
        mem.write(a, &vec![byte; len_a as usize]);
        // Region B still reads zero.
        prop_assert!(mem.read(b, len_b as usize).iter().all(|&x| x == 0));
        mem.write(b, &vec![byte.wrapping_add(1); len_b as usize]);
        prop_assert!(mem.read(a, len_a as usize).iter().all(|&x| x == byte));
    }

    /// Overlapping writes leave the last value (write-after-write order).
    #[test]
    fn write_after_write(
        off1 in 0u64..1000,
        off2 in 0u64..1000,
        len in 1usize..1000,
    ) {
        let (mut mem, _, base) = pinned(1);
        mem.write(base + off1, &vec![0x11; len]);
        mem.write(base + off2, &vec![0x22; len]);
        let readback = mem.read(base + off2, len);
        prop_assert!(readback.iter().all(|&b| b == 0x22));
    }
}
