//! DMA command descriptors.
//!
//! A StRoM kernel issues local DMA commands over a 12 B bus (Figure 4:
//! "a 12 B bus to issue local DMA commands"), each consisting of "a
//! virtual address and length" (§5.2). The same descriptor shape is used
//! by the RoCE stack's direct data path.

/// Transfer direction, from the host's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Host memory → NIC (card reads host memory).
    HostToCard,
    /// NIC → host memory (card writes host memory).
    CardToHost,
}

/// A DMA command: virtual address + length + direction.
///
/// The 12 B wire encoding packs a 48-bit virtual address, a 23-bit length
/// and a direction bit (matching the `memCmd` HLS struct of Listing 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCmd {
    /// Virtual address in pinned host memory.
    pub vaddr: u64,
    /// Transfer length in bytes.
    pub len: u32,
    /// Transfer direction.
    pub direction: DmaDirection,
}

impl DmaCmd {
    /// A host-memory read (card fetches data).
    pub fn read(vaddr: u64, len: u32) -> Self {
        DmaCmd {
            vaddr,
            len,
            direction: DmaDirection::HostToCard,
        }
    }

    /// A host-memory write (card stores data).
    pub fn write(vaddr: u64, len: u32) -> Self {
        DmaCmd {
            vaddr,
            len,
            direction: DmaDirection::CardToHost,
        }
    }

    /// Encodes into the 12-byte command bus format.
    pub fn encode(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..8].copy_from_slice(&(self.vaddr & ((1 << 48) - 1)).to_le_bytes());
        let dir_bit = match self.direction {
            DmaDirection::HostToCard => 0u32,
            DmaDirection::CardToHost => 1 << 31,
        };
        out[8..12].copy_from_slice(&((self.len & 0x7fff_ffff) | dir_bit).to_le_bytes());
        out
    }

    /// Decodes from the 12-byte command bus format.
    pub fn decode(buf: &[u8; 12]) -> Self {
        let vaddr = u64::from_le_bytes(buf[0..8].try_into().expect("sized slice"));
        let word = u32::from_le_bytes(buf[8..12].try_into().expect("sized slice"));
        DmaCmd {
            vaddr,
            len: word & 0x7fff_ffff,
            direction: if word & (1 << 31) != 0 {
                DmaDirection::CardToHost
            } else {
                DmaDirection::HostToCard
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for cmd in [
            DmaCmd::read(0x1234_5678_9abc, 64),
            DmaCmd::write(0, 0x7fff_ffff),
        ] {
            assert_eq!(DmaCmd::decode(&cmd.encode()), cmd);
        }
    }

    #[test]
    fn constructors_set_direction() {
        assert_eq!(DmaCmd::read(0, 1).direction, DmaDirection::HostToCard);
        assert_eq!(DmaCmd::write(0, 1).direction, DmaDirection::CardToHost);
    }

    #[test]
    fn vaddr_truncates_to_48_bits() {
        let cmd = DmaCmd::read(0xffff_0000_0000_0001, 8);
        let decoded = DmaCmd::decode(&cmd.encode());
        assert_eq!(decoded.vaddr, 0xffff_0000_0000_0001 & ((1 << 48) - 1));
    }
}
