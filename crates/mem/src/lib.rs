//! Host memory, TLB, and PCIe/DMA models for StRoM.
//!
//! The paper's NIC accesses host memory over PCIe through a DMA engine and
//! an on-NIC TLB holding physical addresses of pinned 2 MB huge pages
//! (§4.2/§4.3). This crate provides the byte-accurate substrate:
//!
//! - [`HostMemory`]: the machine's DRAM as lazily allocated 2 MB physical
//!   frames, plus a single-process virtual address space whose pinned
//!   regions are **virtually contiguous but physically scattered** — the
//!   exact situation that forces the TLB to split page-crossing commands.
//! - [`Tlb`]: the on-NIC translation table (up to 16,384 entries → 32 GB),
//!   populated once by the driver, with command splitting at 2 MB
//!   boundaries.
//! - [`PcieModel`]: latency/bandwidth constants of the PCIe link
//!   (Gen3 x8 for the 10 G board, x16 for the VCU118).
//! - [`DmaCmd`]: the 12 B command descriptor a StRoM kernel issues on its
//!   `dmaCmdOut` stream (Figure 4).

pub mod dma;
pub mod host;
pub mod pcie;
pub mod tlb;

pub use dma::{DmaCmd, DmaDirection};
pub use host::{HostMemory, PinError, HUGE_PAGE_SIZE};
pub use pcie::PcieModel;
pub use tlb::{PhysSegment, Tlb, TlbError, TLB_CAPACITY};
