//! The host DRAM and a single-process virtual address space.
//!
//! §4.3: "To enable direct access to the host memory from the FPGA, memory
//! has to be pinned in advance. To do so the application passes a memory
//! region to the driver which pins every page and also returns its
//! physical addresses." §4.2 adds: "Even though all the huge pages
//! combined build a single contiguous virtual address space, physically
//! they might not be contiguous."
//!
//! [`HostMemory`] reproduces both facts: `pin` allocates a virtually
//! contiguous region whose 2 MB physical frames are deliberately scattered
//! (deterministically), and returns the frame addresses the driver would
//! hand to the NIC's TLB. Physical frames are allocated lazily so large
//! experiments only pay for pages they touch.

use std::collections::HashMap;

/// Size of one huge page: 2 MB (§4.2).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// Virtual base address of the first pinned region; nonzero so that a
/// stray zero address faults loudly.
const VADDR_BASE: u64 = 0x0001_0000_0000;

/// Errors from pinning memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinError {
    /// Requested length is zero.
    EmptyRegion,
}

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinError::EmptyRegion => write!(f, "cannot pin an empty region"),
        }
    }
}

impl std::error::Error for PinError {}

/// The host DRAM plus the process's virtual→physical page mappings.
///
/// # Examples
///
/// ```
/// use strom_mem::HostMemory;
/// let mut mem = HostMemory::new();
/// let (vaddr, physical_pages) = mem.pin(1 << 20).unwrap();
/// assert!(!physical_pages.is_empty());
/// mem.write(vaddr, b"pinned bytes");
/// assert_eq!(mem.read(vaddr, 12), b"pinned bytes");
/// ```
#[derive(Debug, Default)]
pub struct HostMemory {
    /// Physical frames, keyed by frame number, allocated lazily.
    frames: HashMap<u64, Box<[u8]>>,
    /// Virtual page number → physical frame number for pinned pages.
    mappings: HashMap<u64, u64>,
    /// Next virtual address to hand out (bump allocator, page aligned).
    next_vaddr: u64,
    /// Next physical frame number to hand out.
    next_pfn: u64,
}

impl HostMemory {
    /// Creates an empty host memory.
    pub fn new() -> Self {
        Self {
            frames: HashMap::new(),
            mappings: HashMap::new(),
            next_vaddr: VADDR_BASE,
            next_pfn: 1,
        }
    }

    /// Pins a region of `len` bytes.
    ///
    /// Returns the virtual base address and the physical address of each
    /// 2 MB page, in virtual order — what the driver returns to populate
    /// the NIC TLB (§4.3). Physical frames are intentionally
    /// non-contiguous: consecutive virtual pages receive frame numbers
    /// with a stride, reproducing the fragmentation that makes TLB
    /// boundary-splitting necessary.
    pub fn pin(&mut self, len: u64) -> Result<(u64, Vec<u64>), PinError> {
        if len == 0 {
            return Err(PinError::EmptyRegion);
        }
        let pages = len.div_ceil(HUGE_PAGE_SIZE);
        let base = self.next_vaddr;
        self.next_vaddr += pages * HUGE_PAGE_SIZE;
        let mut phys = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            // Scatter: stride-3 frame numbers, so virtually adjacent pages
            // are physically 6 MB apart.
            let pfn = self.next_pfn + i * 3;
            let vpn = (base / HUGE_PAGE_SIZE) + i;
            self.mappings.insert(vpn, pfn);
            phys.push(pfn * HUGE_PAGE_SIZE);
        }
        self.next_pfn += pages * 3;
        Ok((base, phys))
    }

    /// Translates a virtual address to physical via the process page
    /// table. Returns `None` for unpinned addresses.
    pub fn virt_to_phys(&self, vaddr: u64) -> Option<u64> {
        let vpn = vaddr / HUGE_PAGE_SIZE;
        let offset = vaddr % HUGE_PAGE_SIZE;
        self.mappings
            .get(&vpn)
            .map(|pfn| pfn * HUGE_PAGE_SIZE + offset)
    }

    fn frame_mut(&mut self, pfn: u64) -> &mut [u8] {
        self.frames
            .entry(pfn)
            .or_insert_with(|| vec![0u8; HUGE_PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes from *physical* address `paddr` — the DMA
    /// engine's view of memory. The range must not cross a frame boundary
    /// (the TLB guarantees this by splitting commands).
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a 2 MB frame boundary; that would be a
    /// TLB bug, not a data condition.
    pub fn phys_read(&mut self, paddr: u64, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let pfn = paddr / HUGE_PAGE_SIZE;
        let offset = (paddr % HUGE_PAGE_SIZE) as usize;
        assert!(
            offset + buf.len() <= HUGE_PAGE_SIZE as usize,
            "physical access crosses a frame boundary (TLB must split)"
        );
        let frame = self.frame_mut(pfn);
        buf.copy_from_slice(&frame[offset..offset + buf.len()]);
    }

    /// Writes `data` at *physical* address `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a 2 MB frame boundary.
    pub fn phys_write(&mut self, paddr: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let pfn = paddr / HUGE_PAGE_SIZE;
        let offset = (paddr % HUGE_PAGE_SIZE) as usize;
        assert!(
            offset + data.len() <= HUGE_PAGE_SIZE as usize,
            "physical access crosses a frame boundary (TLB must split)"
        );
        let frame = self.frame_mut(pfn);
        frame[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads from a *virtual* address — the CPU's view. Spanning pages is
    /// fine here; the MMU handles it transparently for the CPU.
    ///
    /// # Panics
    ///
    /// Panics when touching unpinned memory — a segfault in the real
    /// system.
    pub fn read(&mut self, vaddr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut done = 0;
        while done < len {
            let cur = vaddr + done as u64;
            let paddr = self
                .virt_to_phys(cur)
                .unwrap_or_else(|| panic!("segfault: read of unpinned address {cur:#x}"));
            let in_page = (HUGE_PAGE_SIZE - cur % HUGE_PAGE_SIZE) as usize;
            let chunk = in_page.min(len - done);
            let (head, _) = out.split_at_mut(done + chunk);
            self.phys_read(paddr, &mut head[done..]);
            done += chunk;
        }
        out
    }

    /// Writes to a *virtual* address — the CPU's view.
    ///
    /// # Panics
    ///
    /// Panics when touching unpinned memory.
    pub fn write(&mut self, vaddr: u64, data: &[u8]) {
        let mut done = 0;
        while done < data.len() {
            let cur = vaddr + done as u64;
            let paddr = self
                .virt_to_phys(cur)
                .unwrap_or_else(|| panic!("segfault: write of unpinned address {cur:#x}"));
            let in_page = (HUGE_PAGE_SIZE - cur % HUGE_PAGE_SIZE) as usize;
            let chunk = in_page.min(data.len() - done);
            self.phys_write(paddr, &data[done..done + chunk]);
            done += chunk;
        }
    }

    /// Convenience: reads a little-endian `u64` at `vaddr`.
    pub fn read_u64(&mut self, vaddr: u64) -> u64 {
        u64::from_le_bytes(self.read(vaddr, 8).try_into().expect("sized read"))
    }

    /// Convenience: writes a little-endian `u64` at `vaddr`.
    pub fn write_u64(&mut self, vaddr: u64, value: u64) {
        self.write(vaddr, &value.to_le_bytes());
    }

    /// Number of physical frames actually materialized (diagnostics).
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_returns_page_aligned_scattered_frames() {
        let mut m = HostMemory::new();
        let (base, phys) = m.pin(5 * HUGE_PAGE_SIZE).unwrap();
        assert_eq!(base % HUGE_PAGE_SIZE, 0);
        assert_eq!(phys.len(), 5);
        for p in &phys {
            assert_eq!(p % HUGE_PAGE_SIZE, 0);
        }
        // Physically non-contiguous by construction.
        assert_ne!(phys[1], phys[0] + HUGE_PAGE_SIZE);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut m = HostMemory::new();
        let (a, pa) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let (b, pb) = m.pin(HUGE_PAGE_SIZE).unwrap();
        assert!(b >= a + HUGE_PAGE_SIZE);
        assert_ne!(pa[0], pb[0]);
    }

    #[test]
    fn virtual_rw_round_trip() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(1024).unwrap();
        m.write(base + 100, b"strom");
        assert_eq!(m.read(base + 100, 5), b"strom");
        m.write_u64(base, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(base), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn virtual_rw_spans_page_boundaries() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(2 * HUGE_PAGE_SIZE).unwrap();
        let boundary = base + HUGE_PAGE_SIZE - 3;
        m.write(boundary, b"abcdef");
        assert_eq!(m.read(boundary, 6), b"abcdef");
        // The two halves live in different, non-adjacent frames.
        let p1 = m.virt_to_phys(boundary).unwrap();
        let p2 = m.virt_to_phys(boundary + 3).unwrap();
        assert_ne!(p2, p1 + 3);
    }

    #[test]
    fn phys_access_matches_virtual_view() {
        let mut m = HostMemory::new();
        let (base, phys) = m.pin(HUGE_PAGE_SIZE).unwrap();
        m.write(base + 8, b"via cpu");
        let mut buf = [0u8; 7];
        m.phys_read(phys[0] + 8, &mut buf);
        assert_eq!(&buf, b"via cpu");
        m.phys_write(phys[0] + 100, b"via dma");
        assert_eq!(m.read(base + 100, 7), b"via dma");
    }

    #[test]
    #[should_panic(expected = "frame boundary")]
    fn phys_access_may_not_cross_frames() {
        let mut m = HostMemory::new();
        let (_, phys) = m.pin(2 * HUGE_PAGE_SIZE).unwrap();
        let mut buf = [0u8; 16];
        m.phys_read(phys[0] + HUGE_PAGE_SIZE - 8, &mut buf);
    }

    #[test]
    #[should_panic(expected = "segfault")]
    fn unpinned_access_faults() {
        let mut m = HostMemory::new();
        let _ = m.read(0x42, 1);
    }

    #[test]
    fn empty_pin_is_rejected() {
        let mut m = HostMemory::new();
        assert_eq!(m.pin(0), Err(PinError::EmptyRegion));
    }

    #[test]
    fn frames_materialize_lazily() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(100 * HUGE_PAGE_SIZE).unwrap();
        assert_eq!(m.resident_frames(), 0);
        m.write(base, b"x");
        assert_eq!(m.resident_frames(), 1);
    }

    #[test]
    fn fresh_memory_reads_zero() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(64).unwrap();
        assert_eq!(m.read(base, 64), vec![0u8; 64]);
    }
}
