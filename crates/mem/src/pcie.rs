//! PCIe timing model.
//!
//! Calibration comes from the paper:
//!
//! - A small read over PCIe "takes around 1.5 µs" round trip (§6.2,
//!   footnote 7) — versus ~80 ns for a CPU DRAM access.
//! - The 10 G board (Alpha Data, Gen3 x8) has a PCIe-to-network bandwidth
//!   ratio of "around 6:1", the VCU118 (Gen3 x16) "close to 1:1" (§7).
//! - Random access (the shuffle kernel's 128 B partition flushes) "reduces
//!   the effective PCIe bandwidth sufficiently such that it can no longer
//!   keep up with the network bandwidth" at 100 G, while sustaining line
//!   rate at 10 G (§7) — captured by a per-command overhead.
//! - At 100 G the message rate is "limited by the rate at which the
//!   application can issue these AVX2 stores and at which the I/O
//!   subsystem can serve them to the NIC over PCIe" (§7.1) — captured by
//!   the command-issue interval.

use strom_sim::time::{TimeDelta, NANOS};
use strom_sim::Bandwidth;

#[cfg(test)]
use strom_sim::time::MICROS;

/// Timing constants of one PCIe attachment.
#[derive(Debug, Clone, Copy)]
pub struct PcieModel {
    /// Fixed round-trip latency of a read request before data streams
    /// back (non-posted completion).
    pub read_rtt_base: TimeDelta,
    /// One-way latency of a posted write before it is visible to a CPU
    /// poller.
    pub write_post_latency: TimeDelta,
    /// Sustained data bandwidth of the link.
    pub bandwidth: Bandwidth,
    /// Fixed cost per DMA command (descriptor processing, TLP overhead);
    /// dominates for small random accesses (e.g. the shuffle kernel's
    /// 128 B partition flushes, §7).
    pub cmd_overhead: TimeDelta,
    /// Per-command cost for *stream-oriented* transfers using the DMA
    /// engine's Descriptor Bypass (§4.3: "we enable the Descriptor Bypass
    /// on the DMA IP core which benefits especially stream-oriented
    /// operations that can operate at a high bandwidth while incurring
    /// minimal latency") — sequential TX fetches and RX stores.
    pub bypass_overhead: TimeDelta,
    /// Latency of a host MMIO doorbell write reaching the Controller.
    pub mmio_latency: TimeDelta,
    /// Minimum spacing between successive host command issues (one AVX2
    /// store each, §7.1).
    pub cmd_issue_interval: TimeDelta,
}

impl PcieModel {
    /// PCIe Gen3 x8 — the Alpha Data 7V3 board of the 10 G prototype.
    ///
    /// ~6.6 GB/s effective ≈ 53 Gbit/s: the paper's "around 6:1" ratio to
    /// the 10 G network.
    pub fn gen3_x8() -> Self {
        PcieModel {
            read_rtt_base: 1450 * NANOS,
            write_post_latency: 400 * NANOS,
            bandwidth: Bandwidth::gbyte_per_sec(6.6),
            cmd_overhead: 80 * NANOS,
            bypass_overhead: 25 * NANOS,
            mmio_latency: 300 * NANOS,
            // An older host CPU: ~70 ns between command stores — far above
            // what 10 G needs, so the NIC pipeline remains the limit.
            cmd_issue_interval: 70 * NANOS,
        }
    }

    /// PCIe Gen3 x16 — the VCU118 board of the 100 G version.
    ///
    /// ~13 GB/s ≈ 104 Gbit/s: the paper's "close to 1:1" ratio to the
    /// 100 G network.
    pub fn gen3_x16() -> Self {
        PcieModel {
            read_rtt_base: 1100 * NANOS,
            write_post_latency: 350 * NANOS,
            bandwidth: Bandwidth::gbyte_per_sec(13.0),
            cmd_overhead: 80 * NANOS,
            bypass_overhead: 20 * NANOS,
            mmio_latency: 250 * NANOS,
            // ~26 ns/AVX2-store ≈ 38 M msg/s — the Fig 12c ceiling.
            cmd_issue_interval: 26 * NANOS,
        }
    }

    /// Time from issuing a DMA *read* command until the last byte has
    /// arrived on the card.
    pub fn read_time(&self, len: u32) -> TimeDelta {
        self.read_rtt_base + self.cmd_overhead + self.bandwidth.transfer_time_ps(u64::from(len))
    }

    /// Time from issuing a DMA *write* command until the data is visible
    /// in host memory (posted write + serialization).
    pub fn write_time(&self, len: u32) -> TimeDelta {
        self.write_post_latency
            + self.cmd_overhead
            + self.bandwidth.transfer_time_ps(u64::from(len))
    }

    /// The link-occupancy cost of a command: what back-to-back commands
    /// serialize on (overhead + transfer), excluding the one-time latency.
    pub fn occupancy(&self, len: u32) -> TimeDelta {
        self.cmd_overhead + self.bandwidth.transfer_time_ps(u64::from(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_read_is_about_1_5_us() {
        // The paper's headline PCIe constant (§6.2): a pointer-chase step.
        let t = PcieModel::gen3_x8().read_time(64);
        let us = t as f64 / MICROS as f64;
        assert!((1.4..1.65).contains(&us), "read RTT = {us} us");
    }

    #[test]
    fn write_is_cheaper_than_read() {
        let m = PcieModel::gen3_x8();
        assert!(m.write_time(64) < m.read_time(64));
    }

    #[test]
    fn x16_has_roughly_double_bandwidth() {
        let x8 = PcieModel::gen3_x8().bandwidth.as_gbit_per_sec();
        let x16 = PcieModel::gen3_x16().bandwidth.as_gbit_per_sec();
        assert!((1.8..2.2).contains(&(x16 / x8)));
    }

    #[test]
    fn bandwidth_ratios_match_the_paper() {
        // ~6:1 at 10 G, ~1:1 at 100 G (§7).
        let r10 = PcieModel::gen3_x8().bandwidth.as_gbit_per_sec() / 10.0;
        let r100 = PcieModel::gen3_x16().bandwidth.as_gbit_per_sec() / 100.0;
        assert!((5.0..6.5).contains(&r10), "10G ratio = {r10}");
        assert!((0.9..1.2).contains(&r100), "100G ratio = {r100}");
    }

    #[test]
    fn random_128b_writes_sustain_10g_but_not_100g() {
        // The shuffle kernel flushes 128 B partition buffers (§6.4):
        // sequential occupancy must beat 10 Gbit/s arrival on x8 but fall
        // short of 100 Gbit/s arrival on x16.
        let occ8 = PcieModel::gen3_x8().occupancy(128);
        let arrival_10g = Bandwidth::gbit_per_sec(10.0).transfer_time_ps(128);
        assert!(occ8 <= arrival_10g, "{occ8} vs {arrival_10g}");
        let occ16 = PcieModel::gen3_x16().occupancy(128);
        let arrival_100g = Bandwidth::gbit_per_sec(100.0).transfer_time_ps(128);
        assert!(occ16 > arrival_100g, "{occ16} vs {arrival_100g}");
    }

    #[test]
    fn issue_interval_caps_message_rate_near_40m() {
        let m = PcieModel::gen3_x16();
        let per_sec = 1e12 / m.cmd_issue_interval as f64;
        assert!((30e6..45e6).contains(&per_sec), "rate = {per_sec}");
    }

    #[test]
    fn large_transfers_are_bandwidth_bound() {
        let m = PcieModel::gen3_x8();
        let t1 = m.read_time(1 << 20);
        let t2 = m.read_time(2 << 20);
        // Doubling the size roughly doubles the transfer part.
        let transfer1 = t1 - m.read_rtt_base - m.cmd_overhead;
        let transfer2 = t2 - m.read_rtt_base - m.cmd_overhead;
        assert!((1.99..2.01).contains(&(transfer2 as f64 / transfer1 as f64)));
    }
}
