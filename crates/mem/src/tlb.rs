//! The on-NIC Translation Lookaside Buffer.
//!
//! §4.2: "Each entry in the TLB stores one 48 bit physical address
//! corresponding to a 2 MB huge page … can hold up to 16,384 entries. This
//! allows the FPGA to directly address up to 32 GB of host memory … The
//! TLB module is populated once and does not support page misses … the TLB
//! has to check if a read or write operation is crossing a 2 MB page
//! boundary. If this is the case the TLB resolves those accesses by
//! splitting the command into multiple commands, none of them crossing
//! page boundaries."

use strom_telemetry::{TraceEvent, TraceSink};

use crate::host::HUGE_PAGE_SIZE;

/// Maximum number of TLB entries (16,384 × 2 MB = 32 GB).
pub const TLB_CAPACITY: usize = 16_384;

/// Mask for the 48-bit physical addresses the TLB stores.
const PHYS_MASK: u64 = (1 << 48) - 1;

/// One physical segment of a translated command; never crosses a page
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysSegment {
    /// Physical start address.
    pub paddr: u64,
    /// Segment length in bytes.
    pub len: u32,
}

/// Translation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbError {
    /// The virtual page has no TLB entry. The TLB "does not support page
    /// misses" — this is a host programming error.
    Miss {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// The TLB is full (more than [`TLB_CAPACITY`] entries).
    Full,
}

impl std::fmt::Display for TlbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlbError::Miss { vaddr } => write!(f, "TLB miss at {vaddr:#x} (page not pinned)"),
            TlbError::Full => write!(f, "TLB capacity ({TLB_CAPACITY} entries) exceeded"),
        }
    }
}

impl std::error::Error for TlbError {}

/// The TLB: virtual page number → 48-bit physical page address.
///
/// # Examples
///
/// ```
/// use strom_mem::{HostMemory, Tlb, HUGE_PAGE_SIZE};
/// let mut mem = HostMemory::new();
/// let (vaddr, pages) = mem.pin(2 * HUGE_PAGE_SIZE).unwrap();
/// let mut tlb = Tlb::new();
/// tlb.insert_region(vaddr, &pages).unwrap();
/// // A command crossing the 2 MB boundary is split into two segments.
/// let segs = tlb.translate_command(vaddr + HUGE_PAGE_SIZE - 64, 128).unwrap();
/// assert_eq!(segs.len(), 2);
/// assert_eq!(segs[0].len + segs[1].len, 128);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tlb {
    entries: std::collections::HashMap<u64, u64>,
    trace: TraceSink,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a trace sink; successful command translations are emitted
    /// to it with their segment counts.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs the mapping for the page containing `vaddr` (the driver
    /// populates the TLB once at pin time, §4.3).
    pub fn insert(&mut self, vaddr: u64, paddr: u64) -> Result<(), TlbError> {
        let vpn = vaddr / HUGE_PAGE_SIZE;
        if self.entries.len() >= TLB_CAPACITY && !self.entries.contains_key(&vpn) {
            return Err(TlbError::Full);
        }
        self.entries
            .insert(vpn, paddr & PHYS_MASK & !(HUGE_PAGE_SIZE - 1));
        Ok(())
    }

    /// Installs mappings for a whole pinned region, given the per-page
    /// physical addresses the driver returned.
    pub fn insert_region(&mut self, base_vaddr: u64, phys_pages: &[u64]) -> Result<(), TlbError> {
        for (i, &paddr) in phys_pages.iter().enumerate() {
            self.insert(base_vaddr + i as u64 * HUGE_PAGE_SIZE, paddr)?;
        }
        Ok(())
    }

    /// Translates a single address.
    pub fn translate(&self, vaddr: u64) -> Result<u64, TlbError> {
        let vpn = vaddr / HUGE_PAGE_SIZE;
        let offset = vaddr % HUGE_PAGE_SIZE;
        self.entries
            .get(&vpn)
            .map(|p| p + offset)
            .ok_or(TlbError::Miss { vaddr })
    }

    /// Translates a command of `len` bytes at `vaddr`, splitting it into
    /// physical segments at every 2 MB boundary (§4.2).
    pub fn translate_command(&self, vaddr: u64, len: u32) -> Result<Vec<PhysSegment>, TlbError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(1 + (len as u64 / HUGE_PAGE_SIZE) as usize);
        let mut cur = vaddr;
        let mut remaining = u64::from(len);
        while remaining > 0 {
            let paddr = self.translate(cur)?;
            let in_page = HUGE_PAGE_SIZE - cur % HUGE_PAGE_SIZE;
            let seg_len = in_page.min(remaining);
            out.push(PhysSegment {
                paddr,
                len: seg_len as u32,
            });
            cur += seg_len;
            remaining -= seg_len;
        }
        self.trace.emit(TraceEvent::TlbLookup {
            vaddr,
            len,
            segments: out.len() as u32,
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostMemory;

    fn tlb_for(pages: u64) -> (Tlb, u64, Vec<u64>) {
        let mut host = HostMemory::new();
        let (base, phys) = host.pin(pages * HUGE_PAGE_SIZE).unwrap();
        let mut tlb = Tlb::new();
        tlb.insert_region(base, &phys).unwrap();
        (tlb, base, phys)
    }

    #[test]
    fn translate_within_page() {
        let (tlb, base, phys) = tlb_for(1);
        assert_eq!(tlb.translate(base + 4096).unwrap(), phys[0] + 4096);
    }

    #[test]
    fn miss_on_unmapped_page() {
        let (tlb, base, _) = tlb_for(1);
        let beyond = base + HUGE_PAGE_SIZE;
        assert_eq!(tlb.translate(beyond), Err(TlbError::Miss { vaddr: beyond }));
    }

    #[test]
    fn command_within_one_page_is_one_segment() {
        let (tlb, base, phys) = tlb_for(2);
        let segs = tlb.translate_command(base + 100, 1000).unwrap();
        assert_eq!(
            segs,
            vec![PhysSegment {
                paddr: phys[0] + 100,
                len: 1000
            }]
        );
    }

    #[test]
    fn page_crossing_command_is_split() {
        let (tlb, base, phys) = tlb_for(2);
        // 4 KB command starting 1 KB before the boundary.
        let start = base + HUGE_PAGE_SIZE - 1024;
        let segs = tlb.translate_command(start, 4096).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].paddr, phys[0] + HUGE_PAGE_SIZE - 1024);
        assert_eq!(segs[0].len, 1024);
        assert_eq!(segs[1].paddr, phys[1]);
        assert_eq!(segs[1].len, 4096 - 1024);
    }

    #[test]
    fn segments_tile_the_command_exactly() {
        let (tlb, base, _) = tlb_for(4);
        // A command spanning three pages.
        let start = base + HUGE_PAGE_SIZE / 2;
        let len = (2 * HUGE_PAGE_SIZE + 12345) as u32;
        let segs = tlb.translate_command(start, len).unwrap();
        let total: u64 = segs.iter().map(|s| u64::from(s.len)).sum();
        assert_eq!(total, u64::from(len));
        for s in &segs {
            // No segment crosses a 2 MB physical boundary.
            assert!(s.paddr % HUGE_PAGE_SIZE + u64::from(s.len) <= HUGE_PAGE_SIZE);
        }
    }

    #[test]
    fn zero_length_command_yields_no_segments() {
        let (tlb, base, _) = tlb_for(1);
        assert!(tlb.translate_command(base, 0).unwrap().is_empty());
    }

    #[test]
    fn split_segments_follow_scattered_frames() {
        let (tlb, base, phys) = tlb_for(2);
        let segs = tlb
            .translate_command(base + HUGE_PAGE_SIZE - 8, 16)
            .unwrap();
        // Scattered allocation: segment 2 is not physically adjacent.
        assert_ne!(segs[1].paddr, segs[0].paddr + 8);
        assert_eq!(segs[1].paddr, phys[1]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut tlb = Tlb::new();
        for i in 0..TLB_CAPACITY as u64 {
            tlb.insert(i * HUGE_PAGE_SIZE, i * HUGE_PAGE_SIZE).unwrap();
        }
        assert_eq!(tlb.len(), TLB_CAPACITY);
        let err = tlb.insert(TLB_CAPACITY as u64 * HUGE_PAGE_SIZE, 0);
        assert_eq!(err, Err(TlbError::Full));
        // Updating an existing entry is fine at capacity.
        assert!(tlb.insert(0, HUGE_PAGE_SIZE).is_ok());
    }

    #[test]
    fn physical_addresses_are_48_bit_page_aligned() {
        let mut tlb = Tlb::new();
        tlb.insert(0, 0xffff_ffff_ffff_f123).unwrap();
        let p = tlb.translate(0).unwrap();
        assert_eq!(p % HUGE_PAGE_SIZE, 0);
        assert!(p < (1 << 48));
    }
}
