//! Randomized tests of the kernels against reference interpreters,
//! driven by the deterministic [`SimRng`] with fixed seeds.

use bytes::Bytes;
use strom_sim::SimRng;

use strom_kernels::crc64::{crc64, crc64_reference, Crc64};
use strom_kernels::framework::{Kernel, KernelAction, KernelEvent};
use strom_kernels::hll::HyperLogLog;
use strom_kernels::layouts::{build_linked_list, value_pattern};
use strom_kernels::shuffle::{encode_histogram, reference_partition, ShuffleKernel, ShuffleParams};
use strom_kernels::traversal::{Predicate, TraversalKernel, TraversalParams};
use strom_mem::{HostMemory, HUGE_PAGE_SIZE};

/// Drives a kernel against host memory until it stops issuing DMA reads.
fn drive(
    kernel: &mut dyn Kernel,
    mem: &mut HostMemory,
    first: Vec<KernelAction>,
) -> Vec<KernelAction> {
    let mut actions = first;
    loop {
        match actions.first() {
            Some(KernelAction::DmaRead { tag, vaddr, len }) => {
                let data = Bytes::from(mem.read(*vaddr, *len as usize));
                actions = kernel.on_event(KernelEvent::DmaData { tag: *tag, data });
            }
            _ => return actions,
        }
    }
}

/// Reference interpreter for the traversal kernel over a linked list.
fn reference_list_lookup(keys: &[u64], probe: u64, predicate: Predicate) -> Option<usize> {
    keys.iter().position(|&k| predicate.matches(k, probe))
}

/// The traversal kernel agrees with a reference interpreter on random
/// linked lists, probes, and predicates.
#[test]
fn traversal_matches_reference() {
    let mut rng = SimRng::seed(0x7a7);
    for _ in 0..100 {
        let mut key_set = std::collections::HashSet::new();
        for _ in 0..rng.range(1, 24) {
            key_set.insert(rng.range(1, 1_000_000));
        }
        let keys: Vec<u64> = key_set.into_iter().collect();
        let probe = rng.range(1, 1_000_000);
        let predicate = Predicate::from_u8(rng.below(4) as u8).unwrap();
        let mut mem = HostMemory::new();
        let (base, _) = mem.pin(HUGE_PAGE_SIZE).unwrap();
        let list = build_linked_list(&mut mem, base, &keys, 32);

        let mut params = TraversalParams::for_linked_list(list.head, probe, 32, 0x9000);
        params.predicate = predicate;
        let mut kernel = TraversalKernel::new();
        let first = kernel.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: params.encode(),
        });
        let actions = drive(&mut kernel, &mut mem, first);
        let expected = reference_list_lookup(&keys, probe, predicate);
        match (&actions[0], expected) {
            (KernelAction::RoceSend { data, .. }, Some(idx)) => {
                assert_eq!(&data[..], &value_pattern(keys[idx], 32)[..]);
                assert_eq!(kernel.last_hops() as usize, idx + 1);
            }
            (KernelAction::RoceSend { data, .. }, None) => {
                let word = u64::from_le_bytes(data[..8].try_into().unwrap());
                assert!(
                    strom_kernels::framework::decode_error(word).is_some(),
                    "miss must produce an error sentinel"
                );
            }
            (other, _) => panic!("unexpected action {other:?}"),
        }
    }
}

/// Shuffle kernel output equals the reference partitioner for any input
/// and any packetization.
#[test]
fn shuffle_matches_reference() {
    let mut rng = SimRng::seed(0x5f1e);
    for _ in 0..50 {
        let values: Vec<u64> = (0..rng.below(500)).map(|_| rng.next_u64()).collect();
        let num_partitions = 1u32 << rng.below(8);
        let chunk = rng.range(1, 700) as usize;
        let mut kernel = ShuffleKernel::new();
        // Configure through the real histogram path.
        let bases: Vec<(u64, u32)> = (0..u64::from(num_partitions))
            .map(|i| (i << 20, 1 << 20))
            .collect();
        let histogram = encode_histogram(&bases);
        let a = kernel.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: ShuffleParams {
                histogram_addr: 0,
                num_partitions,
            }
            .encode(),
        });
        assert!(matches!(a[0], KernelAction::DmaRead { .. }));
        kernel.on_event(KernelEvent::DmaData {
            tag: 1,
            data: Bytes::from(histogram),
        });

        // Feed the tuple bytes in arbitrary-size chunks.
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut fed = 0usize;
        if data.is_empty() {
            let actions = kernel.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::new(),
                last: true,
            });
            for act in actions {
                if let KernelAction::DmaWrite { vaddr, data } = act {
                    writes.push((vaddr, data.to_vec()));
                }
            }
        }
        for piece in data.chunks(chunk) {
            fed += piece.len();
            let actions = kernel.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(piece),
                last: fed == data.len(),
            });
            for act in actions {
                if let KernelAction::DmaWrite { vaddr, data } = act {
                    writes.push((vaddr, data.to_vec()));
                }
            }
        }

        // Reconstruct partitions from the write stream.
        let mut got: Vec<Vec<u64>> = vec![Vec::new(); num_partitions as usize];
        let mut per_part: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); num_partitions as usize];
        for (addr, bytes) in writes {
            per_part[(addr >> 20) as usize].push((addr, bytes));
        }
        for (pid, mut ws) in per_part.into_iter().enumerate() {
            ws.sort_by_key(|(a, _)| *a);
            let mut cursor = (pid as u64) << 20;
            for (addr, bytes) in ws {
                assert_eq!(addr, cursor, "writes must be contiguous");
                cursor += bytes.len() as u64;
                for c in bytes.chunks_exact(8) {
                    got[pid].push(u64::from_le_bytes(c.try_into().unwrap()));
                }
            }
        }
        assert_eq!(got, reference_partition(&values, num_partitions as usize));
        assert_eq!(kernel.values(), values.len() as u64);
        assert_eq!(kernel.overflowed(), 0);
    }
}

/// HLL estimates stay within 6 standard errors for arbitrary streams (a
/// generous bound so the test is not flaky, still catching gross
/// estimator bugs).
#[test]
fn hll_error_bound() {
    let mut rng = SimRng::seed(0x811);
    for _ in 0..20 {
        let seed = rng.next_u64();
        let n = rng.range(100, 50_000);
        let mut h = HyperLogLog::new(12);
        let mut x = seed | 1;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..n {
            // A weak LCG stream with deliberate duplicates.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> 16 & 0xffff_ffff;
            distinct.insert(v);
            h.add_u64(v);
        }
        let truth = distinct.len() as f64;
        let err = (h.estimate() - truth).abs() / truth;
        assert!(
            err < 6.0 * h.standard_error(),
            "relative error {err} vs bound {}",
            6.0 * h.standard_error()
        );
    }
}

/// HLL merge commutes and equals the union.
#[test]
fn hll_merge_commutes() {
    let mut rng = SimRng::seed(0x3e9);
    for _ in 0..20 {
        let xs: Vec<u64> = (0..rng.below(2000)).map(|_| rng.next_u64()).collect();
        let ys: Vec<u64> = (0..rng.below(2000)).map(|_| rng.next_u64()).collect();
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut union = HyperLogLog::new(10);
        for &x in &xs {
            a.add_u64(x);
            union.add_u64(x);
        }
        for &y in &ys {
            b.add_u64(y);
            union.add_u64(y);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.estimate(), ba.estimate());
        assert_eq!(ab.estimate(), union.estimate());
    }
}

/// Streaming CRC64 equals one-shot for any chunking.
#[test]
fn crc64_chunking_invariance() {
    let mut rng = SimRng::seed(0xc6c);
    for _ in 0..100 {
        let mut data = vec![0u8; rng.below(4096) as usize];
        rng.fill_bytes(&mut data);
        let chunk = rng.range(1, 512) as usize;
        let mut c = Crc64::new();
        for piece in data.chunks(chunk) {
            c.update(piece);
        }
        assert_eq!(c.finish(), crc64(&data));
    }
}

/// The slice-by-16 CRC64 equals the byte-at-a-time reference on random
/// lengths, contents, and alignments — including empty, 1-byte, and
/// larger-than-MTU inputs, and unaligned starting offsets.
#[test]
fn crc64_slice16_matches_reference() {
    let mut rng = SimRng::seed(0xc64c);
    let mut buf = vec![0u8; 16384];
    rng.fill_bytes(&mut buf);
    for len in [0usize, 1, 7, 8, 9, 4096, 9001, 16384] {
        assert_eq!(
            crc64(&buf[..len]),
            crc64_reference(&buf[..len]),
            "fixed len = {len}"
        );
    }
    for _ in 0..500 {
        let start = rng.below(64) as usize;
        let len = rng.below((buf.len() - start) as u64 + 1) as usize;
        let data = &buf[start..start + len];
        assert_eq!(
            crc64(data),
            crc64_reference(data),
            "start = {start}, len = {len}"
        );
    }
}

/// Streaming `Crc64::update` equals the byte-at-a-time reference at
/// arbitrary split points, including splits inside a block.
#[test]
fn crc64_streaming_splits_match_reference() {
    let mut rng = SimRng::seed(0xc645);
    for _ in 0..200 {
        let mut data = vec![0u8; rng.range(2, 4096) as usize];
        rng.fill_bytes(&mut data);
        let split = rng.below(data.len() as u64 + 1) as usize;
        let mut c = Crc64::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        assert_eq!(c.finish(), crc64_reference(&data), "split = {split}");
    }
}

/// CRC64 detects any single-byte corruption.
#[test]
fn crc64_detects_single_byte_changes() {
    let mut rng = SimRng::seed(0xc6d);
    for _ in 0..200 {
        let mut data = vec![0u8; rng.range(1, 2048) as usize];
        rng.fill_bytes(&mut data);
        let i = rng.below(data.len() as u64) as usize;
        let delta = rng.range(1, 256) as u8;
        let mut corrupted = data.clone();
        corrupted[i] = corrupted[i].wrapping_add(delta);
        assert_ne!(crc64(&corrupted), crc64(&data));
    }
}
